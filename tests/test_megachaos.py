"""Grid-scale chaos: fault domains, failover ladder, admission.

Covers the robustness PR end to end —

* :func:`~repro.faults.plan.grid_fault_plan`: a pure function of its
  inputs, site-tagged events, ``for_site`` partitioning, record
  round-trips, and parameter validation;
* attach-time :class:`~repro.faults.injector.FaultInjector` target
  validation (unknown targets raise immediately, naming the target);
* the ``site-blackout`` / ``gateway-hang`` semantics on a federated
  site;
* chaos inside the sharded scenarios: a remote site crashing
  mid-spill leaks nothing at grid scope, a healed WAN partition lets
  a timed-out spill re-bid successfully, and the 1-vs-N-shard
  fingerprint contract holds with faults *and* admission enabled;
* :class:`~repro.federation.admission.AdmissionController` unit
  behavior plus the fairness property (the crowd sheds first, the
  interactive tier never does);
* speculative-pool preemption under pressure;
* a small end-to-end :func:`~repro.experiments.megachaos.run_megachaos`:
  monotone availability ladder, exact arrival accounting, zero leaks,
  and bit-identical replay from the recorded plan.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import ReproError, ShopError
from repro.faults.audit import LEAK_DIMENSIONS, leak_report
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    GATEWAY_HANG,
    HOST_CRASH,
    SITE_BLACKOUT,
    WAN_DEGRADE,
    WAN_PARTITION,
    FaultEvent,
    FaultPlan,
    grid_fault_plan,
)
from repro.faults.recovery import RecoveryPolicy
from repro.federation.admission import AdmissionController
from repro.federation.site import build_federated_grid
from repro.sim.cluster import build_testbed
from repro.sim.shard import ShardedTestbed
from repro.workloads.megaload import merge_site_summaries


def _merged(run):
    partition = dict(enumerate(run.partition))
    return merge_site_summaries(
        run.site_results, group_of=lambda site: partition[site]
    )


# ---------------------------------------------------------------------------
# Grid fault plans
# ---------------------------------------------------------------------------


class TestGridFaultPlan:
    def test_pure_function_of_inputs(self):
        kw = dict(
            plants_per_site=4,
            crash_plants_per_site=2,
            blackout_sites=(1,),
            blackout_at=60.0,
            blackout_s=30.0,
            gateway_hang_sites=(2,),
            wan_links=(("spill0", 0),),
            wan_at=80.0,
        )
        a = grid_fault_plan(7, 3, 400.0, **kw)
        b = grid_fault_plan(7, 3, 400.0, **kw)
        assert a.signature() == b.signature()
        assert a.signature() != grid_fault_plan(8, 3, 400.0, **kw).signature()

    def test_events_are_site_tagged_and_partition_cleanly(self):
        plan = grid_fault_plan(
            11,
            3,
            300.0,
            crash_plants_per_site=1,
            mtbf_s=60.0,  # short enough that renewal kinds appear
            blackout_sites=(0,),
            blackout_at=50.0,
            gateway_hang_sites=(1,),
            wan_links=(("spill2", 2),),
            wan_at=70.0,
        )
        assert all(e.site is not None for e in plan.events)
        total = sum(
            len(plan.for_site(k).events) for k in range(3)
        )
        assert total == len(plan.events)
        kinds = {e.kind for e in plan.events}
        assert SITE_BLACKOUT in kinds and GATEWAY_HANG in kinds
        assert WAN_PARTITION in kinds and HOST_CRASH in kinds
        # Site-scoped targets carry their site's name.
        for e in plan.events:
            if e.kind == SITE_BLACKOUT:
                assert e.target == f"site{e.site}"
            if e.kind == HOST_CRASH:
                assert e.target.startswith(f"site{e.site}-plant")

    def test_for_site_keeps_untagged_events_everywhere(self):
        plan = FaultPlan(
            [FaultEvent(at=1.0, kind=HOST_CRASH, target="plant0", duration=5.0)]
        )
        assert len(plan.for_site(0).events) == 1
        assert len(plan.for_site(7).events) == 1

    def test_records_round_trip_site_tags(self):
        plan = grid_fault_plan(
            5, 2, 200.0, blackout_sites=(1,), blackout_at=20.0
        )
        back = FaultPlan.from_records(
            json.loads(json.dumps(plan.to_records()))
        )
        assert back.signature() == plan.signature()
        assert [e.site for e in back.events] == [
            e.site for e in plan.events
        ]

    def test_wan_degrade_needs_severity(self):
        with pytest.raises(ValueError, match="severity"):
            FaultEvent(
                at=1.0,
                kind=WAN_DEGRADE,
                target="spill0",
                duration=5.0,
                severity=0.0,
            )

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            grid_fault_plan(1, 2, 100.0, blackout_sites=(5,))
        with pytest.raises(ValueError):
            grid_fault_plan(
                1, 2, 100.0, plants_per_site=2, crash_plants_per_site=3
            )
        with pytest.raises(ValueError):
            grid_fault_plan(1, 2, 100.0, wan_links=(("spill9", 9),))


# ---------------------------------------------------------------------------
# Attach-time target validation
# ---------------------------------------------------------------------------


class TestInjectorValidation:
    def test_unknown_crash_target_raises_naming_it(self):
        bed = build_testbed(seed=3, n_plants=2)
        plan = FaultPlan(
            [
                FaultEvent(
                    at=1.0, kind=HOST_CRASH,
                    target="plant99", duration=5.0,
                )
            ]
        )
        with pytest.raises(ReproError, match="plant99"):
            FaultInjector(bed, plan)

    def test_wan_fault_needs_a_matching_link(self):
        bed = build_testbed(seed=3, n_plants=1)
        plan = FaultPlan(
            [
                FaultEvent(
                    at=1.0, kind=WAN_PARTITION,
                    target="spill7", duration=5.0,
                )
            ]
        )
        with pytest.raises(ReproError, match="spill7"):
            FaultInjector(bed, plan)

    def test_site_faults_need_a_gateway(self):
        bed = build_testbed(seed=3, n_plants=1)
        plan = FaultPlan(
            [
                FaultEvent(
                    at=1.0, kind=SITE_BLACKOUT,
                    target="site0", duration=5.0,
                )
            ]
        )
        with pytest.raises(ReproError, match="site0"):
            FaultInjector(bed, plan)

    def test_valid_plan_attaches(self):
        bed = build_testbed(seed=3, n_plants=2)
        plan = FaultPlan(
            [
                FaultEvent(
                    at=1.0, kind=HOST_CRASH,
                    target="plant1", duration=5.0,
                )
            ]
        )
        assert FaultInjector(bed, plan).start() == 1


# ---------------------------------------------------------------------------
# Site blackout / gateway hang semantics on a federated site
# ---------------------------------------------------------------------------


def _drive(env, gen):
    proc = env.process(gen)
    env.run()
    return proc.value


class TestSiteBlackout:
    def _grid_with_blackout(self, at=10.0, duration=20.0):
        grid = build_federated_grid(2, seed=4, n_plants=2, rack_size=2)
        site = grid.sites[1]
        plan = FaultPlan(
            [
                FaultEvent(
                    at=at, kind=SITE_BLACKOUT,
                    target="site1", duration=duration,
                )
            ]
        )
        injector = FaultInjector(
            site.bed, plan, gateway=site.gateway, site=1
        )
        injector.start()
        return grid, site, injector

    def test_blackout_downs_everything_then_heals(self):
        grid, site, injector = self._grid_with_blackout()
        env = site.bed.env

        def probe():
            yield env.timeout(15.0)  # mid-blackout
            assert all(p.down for p in site.bed.plants)
            assert site.bed.nfs.outage_mode is not None
            assert site.gateway.down_until == pytest.approx(30.0)
            none_bid = yield from site.gateway.estimate(
                _req()
            )
            assert none_bid is None
            with pytest.raises(ShopError, match="dark"):
                yield from site.gateway.create(_req())
            yield env.timeout(20.0)  # past recovery
            assert not any(p.down for p in site.bed.plants)
            assert site.bed.nfs.outage_mode is None
            ad = yield from site.gateway.create(_req())
            assert str(ad["vmid"]).startswith("site1-")

        _drive(env, probe())
        assert injector.skipped == 0

    def test_gateway_hang_stalls_inbound_creates(self):
        grid = build_federated_grid(2, seed=4, n_plants=2, rack_size=2)
        site = grid.sites[0]
        plan = FaultPlan(
            [
                FaultEvent(
                    at=5.0, kind=GATEWAY_HANG,
                    target="site0-gateway", duration=30.0,
                )
            ]
        )
        FaultInjector(
            site.bed, plan, gateway=site.gateway, site=0
        ).start()
        env = site.bed.env

        def probe():
            yield env.timeout(10.0)  # mid-hang
            t0 = env.now
            ad = yield from site.gateway.create(_req())
            # The create stalled until the hang window passed.
            assert env.now >= 35.0 > t0
            assert ad["vmid"]

        _drive(env, probe())


def _req():
    from repro.workloads.requests import experiment_request

    return experiment_request(32)


# ---------------------------------------------------------------------------
# Chaos inside the sharded scenarios
# ---------------------------------------------------------------------------


class TestShardedChaos:
    def test_remote_crash_mid_spill_leaks_nothing_at_grid_scope(self):
        """Site 1 goes dark while site 0's spills are in flight: the
        dropped spills time out at the source and the six leak
        dimensions stay zero everywhere after drain."""
        plan = grid_fault_plan(
            2004, 2, 200.0,
            blackout_sites=(1,), blackout_at=20.0, blackout_s=40.0,
        )
        prm = {
            "requests": 40,
            "cross_fraction": 0.4,
            "spill_deadline_s": 60.0,
            "fault_plan": plan.to_records(),
        }
        run = ShardedTestbed(
            seed=2004, sites=2, shards=2, scenario="megaload"
        ).run(params=prm, deadline_s=300.0)
        stats = run.combined_stats()
        assert stats["faults_applied"] >= 1
        assert stats["spills_dropped"] + stats["spill_timeout"] >= 1
        for dim in LEAK_DIMENSIONS:
            assert stats[f"leak_{dim}"] == 0, dim

    def test_wan_partition_heals_and_retry_rebids_successfully(self):
        """A spill that dies against a partitioned WAN link re-bids
        after the partition heals and lands."""
        # The cut (t=5..155) outlasts the 60s ack deadline, so first
        # attempts die against it; the third round lands post-heal.
        plan = grid_fault_plan(
            2004, 2, 300.0,
            wan_links=(("spill0", 0),), wan_at=5.0, wan_s=150.0,
        )
        prm = {
            "requests": 40,
            "cross_fraction": 0.4,
            "spill_deadline_s": 60.0,
            "fault_plan": plan.to_records(),
            "spill_attempts": 3,
            "spill_backoff_s": 30.0,
        }
        run = ShardedTestbed(
            seed=2004, sites=2, shards=2, scenario="megaload"
        ).run(params=prm, deadline_s=300.0)
        stats = run.combined_stats()
        assert stats["faults_applied"] >= 1
        assert stats["spill_timeout"] >= 1  # died against the cut
        assert stats["spill_retries"] >= 1  # re-bid after the heal
        assert stats["spilled_ok"] >= 1  # and landed
        for dim in LEAK_DIMENSIONS:
            assert stats[f"leak_{dim}"] == 0, dim

    def test_fingerprints_shard_invariant_with_faults_and_admission(self):
        plan = grid_fault_plan(
            2004, 2, 200.0,
            blackout_sites=(1,), blackout_at=30.0, blackout_s=30.0,
        )
        prm = {
            "requests": 24,
            "fault_plan": plan.to_records(),
            "spill_attempts": 2,
            "spill_backoff_s": 10.0,
            "local_fallback": True,
            "reroute_on_blackout": True,
            "shed_depth": 16,
            "preempt_depth": 12,
            "priorities": {"batch": 1, "crowd": 2},
            "spill_deadline_s": 120.0,
        }
        fps, sigs = {}, {}
        for shards in (1, 2):
            run = ShardedTestbed(
                seed=2004, sites=2, shards=shards, scenario="megaload"
            ).run(
                params=prm, collect="fingerprint", deadline_s=300.0
            )
            fps[shards] = run.fingerprint()
            sigs[shards] = _merged(run).state_signature()
        assert fps[1] == fps[2]
        assert sigs[1] == sigs[2]


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


class TestAdmissionController:
    def test_disabled_admits_everything(self):
        adm = AdmissionController()
        assert not adm.enabled
        assert all(adm.admit("anyone", t) for t in range(100))
        assert adm.total_shed == 0

    def test_depth_ceiling_is_tiered(self):
        adm = AdmissionController(
            shed_depth=12, priorities={"bulk": 2}
        )
        assert adm.depth_limit("vip") == 12
        assert adm.depth_limit("bulk") == 4
        for _ in range(4):
            adm.begin()
        assert not adm.admit("bulk", 0.0)  # at its tier ceiling
        assert adm.admit("vip", 0.0)  # tier 0 still fine
        assert adm.shed_by_tenant == {"bulk": 1}

    def test_rate_shedding_protects_tier_zero(self):
        adm = AdmissionController(
            shed_rate_per_s=1.0,
            rate_window_s=10.0,
            priorities={"bulk": 1},
        )
        for i in range(11):
            adm.admit("bulk", i * 0.5)  # 2/s offered, window fills
        assert not adm.admit("bulk", 5.5)
        assert adm.admit("vip", 5.6)  # tier 0 never rate-shed

    def test_preempt_is_one_shot_per_episode(self):
        adm = AdmissionController(preempt_depth=2)
        adm.begin()
        assert not adm.maybe_preempt()
        adm.begin()
        assert adm.maybe_preempt()
        assert not adm.maybe_preempt()  # same episode
        adm.done()  # depth 1 < 2: re-arms
        adm.begin()
        assert adm.maybe_preempt()
        assert adm.preempt_signals == 2

    def test_unbalanced_done_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController().done()

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(shed_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(shed_rate_per_s=-1.0)
        with pytest.raises(ValueError):
            AdmissionController(preempt_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(priorities={"x": -1})


class TestAdmissionFairness:
    def test_crowd_sheds_first_interactive_never_starves(self):
        """Under pressure the crowd tier sheds and the interactive
        tier does not — and admission never costs interactive
        completions relative to the unthrottled run."""
        base = {
            "requests": 80,
            "memory_mb": 64,
            "interactive_fraction": 0.4,
            "batch_fraction": 0.3,
            "flash_at_s": 20.0,  # crowd bursts into the busy window
            "spill_deadline_s": 120.0,
            "spill_attempts": 2,
            "spill_backoff_s": 10.0,
            "local_fallback": True,
        }
        # Tier-0's ceiling (90) exceeds a site's whole arrival count
        # (80), so interactive can never shed; the crowd's ceiling is
        # 90 // 3 = 30, well within reach of the burst.
        throttled = dict(
            base,
            shed_depth=90,
            priorities={"interactive": 0, "batch": 1, "crowd": 2},
        )
        runs = {}
        for name, prm in (("open", base), ("throttled", throttled)):
            run = ShardedTestbed(
                seed=2004, sites=2, shards=2, scenario="megaload"
            ).run(params=prm, deadline_s=300.0)
            runs[name] = _merged(run)
        shed = runs["throttled"].counters
        assert shed["crowd"]["shed"] > 0
        assert shed["interactive"]["shed"] == 0
        assert (
            runs["throttled"].counters["interactive"]["ok"]
            >= runs["open"].counters["interactive"]["ok"]
        )
        # Shedding is accounting, not failure: every crowd arrival is
        # either served, failed, or shed.
        crowd = shed["crowd"]
        open_crowd = runs["open"].counters["crowd"]
        assert (
            crowd["ok"] + crowd["failed"] + crowd["shed"]
            == open_crowd["ok"] + open_crowd["failed"]
        )


class TestPreemption:
    def test_pool_drain_reclaims_idle_clones(self):
        from repro.provisioning import ProvisioningConfig
        from repro.workloads.requests import experiment_request

        bed = build_testbed(
            seed=5,
            n_plants=1,
            provisioning=ProvisioningConfig(speculative_pools=True),
        )
        assert bed.pools

        def warm_then_drain():
            for _ in range(4):
                ad = yield from bed.shop.create(experiment_request(32))
                yield from bed.shop.destroy(str(ad["vmid"]))
                yield bed.env.timeout(30.0)
            pooled = sum(p.pooled_vms for p in bed.pools)
            drained = 0
            for pool in bed.pools:
                count = yield from pool.drain()
                drained += count
            return pooled, drained

        proc = bed.env.process(warm_then_drain())
        bed.env.run()
        pooled, drained = proc.value
        assert pooled > 0 and drained == pooled
        assert sum(p.pooled_vms for p in bed.pools) == 0

    def test_scenario_preemption_under_pressure(self):
        prm = {
            "requests": 60,
            "memory_mb": 64,
            "speculative_pools": True,
            "shed_depth": 48,
            "preempt_depth": 6,
            "priorities": {"crowd": 2},
        }
        run = ShardedTestbed(
            seed=2004, sites=2, shards=1, scenario="megaload"
        ).run(params=prm, deadline_s=300.0)
        stats = run.combined_stats()
        assert stats["preempt_signals"] >= 1
        # Drained or not, pooled slots never leak at drain.
        assert stats["leak_pool_slots"] == 0


# ---------------------------------------------------------------------------
# End-to-end megachaos (small)
# ---------------------------------------------------------------------------


class TestRunMegachaos:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.megachaos import run_megachaos

        return run_megachaos(
            sites=2,
            shards=2,
            requests_per_site=40,
            blackout_at=30.0,
            blackout_s=30.0,
            shed_depth=48,
            preempt_depth=32,
            det_shard_counts=(1, 2),
            determinism_requests=20,
            deadline_s=300.0,
        )

    def test_every_rung_accounts_every_arrival(self, result):
        assert [p.rung for p in result.points] == [
            "none", "faults", "failover", "admission",
        ]
        for p in result.points:
            assert p.accounted, p.rung
            assert p.arrivals == 80

    def test_faults_fire_and_ladder_is_monotone(self, result):
        assert result.point("none").faults_applied == 0
        assert result.point("faults").faults_applied >= 1
        assert result.ladder_monotone

    def test_zero_leaks_everywhere(self, result):
        assert not result.leaked
        for p in result.points:
            assert set(p.leaks) == set(LEAK_DIMENSIONS)

    def test_determinism_across_shard_counts(self, result):
        assert result.deterministic
        assert set(result.fingerprints) == {1, 2}

    def test_replay_is_bit_identical(self, result):
        from repro.experiments.megachaos import run_megachaos

        rec = result.to_records()
        again = run_megachaos(
            sites=2,
            shards=2,
            requests_per_site=40,
            blackout_at=30.0,
            blackout_s=30.0,
            shed_depth=48,
            preempt_depth=32,
            det_shard_counts=(1, 2),
            determinism_requests=20,
            deadline_s=300.0,
            plan_records=rec["plan"]["records"],
        )
        assert json.dumps(rec, sort_keys=True) == json.dumps(
            again.to_records(), sort_keys=True
        )

    def test_report_has_no_wall_clock_fields(self, result):
        payload = json.dumps(result.to_records())
        assert "wall" not in payload and "rss" not in payload

    def test_leak_report_shape(self):
        bed = build_testbed(seed=3, n_plants=1)
        report = leak_report(bed)
        assert set(report) == set(LEAK_DIMENSIONS)
        assert all(v == 0 for v in report.values())
