"""Tests for the VM information system, monitor and guest mechanics."""

import pytest

from repro.core.actions import Action, ActionResult, ActionStatus
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest, HardwareSpec, SoftwareSpec
from repro.plant.guest import (
    OUTPUT_MARKER,
    build_iso,
    fabricate_outputs,
    parse_outputs,
    render_script,
)
from repro.plant.infosys import VMInformationSystem
from repro.plant.monitor import VMMonitor
from repro.plant.production import VirtualMachine, VMStatus
from repro.plant.warehouse import GoldenImage
from repro.sim.kernel import Environment


def make_vm(vmid="vm1", mem=32):
    image = GoldenImage(
        image_id="img", vm_type="vmware", os="os",
        hardware=HardwareSpec(memory_mb=mem),
    )
    request = CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(os="os"),
    )
    return VirtualMachine(
        vmid=vmid, image=image, request=request, vm_type="vmware"
    )


class TestInfosys:
    def test_store_get_remove(self):
        info = VMInformationSystem()
        vm = make_vm()
        info.store(vm)
        assert info.get("vm1") is vm
        assert len(info) == 1
        assert info.remove("vm1") is vm
        with pytest.raises(PlantError):
            info.get("vm1")

    def test_duplicate_store_rejected(self):
        info = VMInformationSystem()
        info.store(make_vm())
        with pytest.raises(PlantError):
            info.store(make_vm())

    def test_query_full_is_a_copy(self):
        info = VMInformationSystem()
        vm = make_vm()
        vm.classad["a"] = 1
        info.store(vm)
        ad = info.query("vm1")
        ad["a"] = 99
        assert vm.classad["a"] == 1

    def test_query_projection_includes_undefined(self):
        info = VMInformationSystem()
        info.store(make_vm())
        ad = info.query("vm1", attributes=("ghost",))
        assert ad.get("ghost") is None

    def test_update_merges(self):
        info = VMInformationSystem()
        info.store(make_vm())
        info.update("vm1", {"status": "running", "uptime": 5.0})
        assert info.query("vm1")["uptime"] == 5.0

    def test_total_guest_memory(self):
        info = VMInformationSystem()
        info.store(make_vm("a", mem=64))
        info.store(make_vm("b", mem=256))
        assert info.total_guest_memory_mb() == 320

    def test_active_in_registration_order(self):
        info = VMInformationSystem()
        for name in ("z", "a", "m"):
            info.store(make_vm(name))
        assert [vm.vmid for vm in info.active()] == ["z", "a", "m"]


class TestMonitor:
    def test_periodic_sweeps_update_classads(self):
        env = Environment()
        info = VMInformationSystem()
        vm = make_vm()
        vm.status = VMStatus.RUNNING
        vm.classad["created_at"] = 0.0
        info.store(vm)
        monitor = VMMonitor(env, info, period=10.0)
        monitor.start()
        env.run(until=35)
        assert monitor.sweeps == 3
        assert vm.classad["uptime"] == pytest.approx(30.0)
        assert vm.classad["status"] == "running"

    def test_stop_halts_sweeping(self):
        env = Environment()
        info = VMInformationSystem()
        monitor = VMMonitor(env, info, period=5.0)
        monitor.start()
        env.run(until=12)
        monitor.stop()
        env.run(until=50)
        assert monitor.sweeps == 2

    def test_start_idempotent(self):
        env = Environment()
        monitor = VMMonitor(env, VMInformationSystem(), period=5.0)
        p1 = monitor.start()
        p2 = monitor.start()
        assert p1 is p2

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            VMMonitor(Environment(), VMInformationSystem(), period=0)

    def test_counts_actions_completed(self):
        env = Environment()
        info = VMInformationSystem()
        vm = make_vm()
        vm.record(ActionResult("a", ActionStatus.OK))
        info.store(vm)
        monitor = VMMonitor(env, info)
        monitor.sweep()
        assert vm.classad["actions_completed"] == 1


class TestGuestMechanics:
    def test_render_script_exports_context(self):
        action = Action("cfg", command="echo hi")
        script = render_script(action, {"vmid": "vm1", "ip": "10.0.0.2"})
        assert "export VMPLANT_VMID=vm1" in script
        assert "export VMPLANT_IP=10.0.0.2" in script
        assert "echo hi" in script
        assert script.startswith("#!/bin/sh")

    def test_render_script_quotes_values(self):
        action = Action("cfg", command=":")
        script = render_script(action, {"name": "a b; rm -rf /"})
        assert "'a b; rm -rf /'" in script

    def test_render_script_emits_context_outputs(self):
        action = Action("cfg", command=":", outputs=("ip",))
        script = render_script(action, {"ip": "10.0.0.2"})
        assert f"{OUTPUT_MARKER} ip=" in script

    def test_build_iso_contains_script(self):
        action = Action("setup-user", command="useradd x")
        iso = build_iso(action, {})
        files = iso.file_dict()
        assert "scripts/setup-user.sh" in files
        assert "useradd x" in files["scripts/setup-user.sh"]
        assert iso.size_mb > 0.3

    def test_parse_outputs_honours_declared_only(self):
        action = Action("a", outputs=("ip", "port"))
        stdout = "\n".join(
            [
                "noise",
                f"{OUTPUT_MARKER} ip=10.0.0.2",
                f"{OUTPUT_MARKER} secret=shh",
                f"{OUTPUT_MARKER} port = 5901",
                f"{OUTPUT_MARKER} malformed-line",
            ]
        )
        outputs = parse_outputs(stdout, action)
        assert outputs == {"ip": "10.0.0.2", "port": "5901"}

    def test_fabricate_outputs_prefers_context(self):
        action = Action("a", outputs=("ip", "token"))
        outputs = fabricate_outputs(action, {"ip": "1.2.3.4",
                                             "vmid": "vm9"})
        assert outputs == {"ip": "1.2.3.4", "token": "token-vm9"}
