"""Tests for cross-plant VM migration (Section 6 future work)."""

import pytest

from repro.core.errors import PlantError, VNetError
from repro.plant.migration import MigrationManager
from repro.plant.production import VMStatus
from repro.sim.cluster import build_testbed
from repro.vnet.hostonly import HostOnlyNetworkPool
from repro.workloads.requests import experiment_request

from tests.helpers import drive


def make_site(**kwargs):
    bed = build_testbed(seed=21, n_plants=2, **kwargs)
    manager = MigrationManager(bed.env, link=bed.internode)
    return bed, manager


def create_on(bed, plant, vmid="mig-vm", mem=32):
    request = experiment_request(mem)
    return bed.run(plant.create(request, vmid))


class TestMigrateSim:
    def test_vm_moves_between_plants(self):
        bed, manager = make_site()
        src, dst = bed.plants
        create_on(bed, src)
        ad = bed.run(manager.migrate(src, dst, "mig-vm"))
        assert ad["plant"] == "plant1"
        assert ad["migrated_from"] == "plant0"
        assert src.active_vm_count() == 0
        assert dst.active_vm_count() == 1
        assert dst.infosys.get("mig-vm").status is VMStatus.RUNNING

    def test_host_memory_accounting_moves(self):
        bed, manager = make_site()
        src, dst = bed.plants
        create_on(bed, src, mem=64)
        assert bed.hosts[0].committed_guest_mb == 64
        bed.run(manager.migrate(src, dst, "mig-vm"))
        assert bed.hosts[0].committed_guest_mb == 0
        assert bed.hosts[1].committed_guest_mb == 64

    def test_migration_takes_time_and_is_recorded(self):
        bed, manager = make_site()
        src, dst = bed.plants
        create_on(bed, src, mem=256)
        before = bed.env.now
        bed.run(manager.migrate(src, dst, "mig-vm"))
        elapsed = bed.env.now - before
        assert elapsed > 2.0
        record = manager.records[0]
        assert record.payload_mb > 256
        assert record.total_time == pytest.approx(elapsed)
        assert (
            record.suspend_time + record.transfer_time
            + record.resume_time
        ) <= record.total_time + 1e-9

    def test_bigger_memory_migrates_slower(self):
        times = {}
        for mem in (32, 256):
            bed, manager = make_site()
            src, dst = bed.plants
            create_on(bed, src, mem=mem)
            start = bed.env.now
            bed.run(manager.migrate(src, dst, "mig-vm"))
            times[mem] = bed.env.now - start
        assert times[256] > times[32]

    def test_network_reattached_on_target(self):
        bed, manager = make_site()
        src, dst = bed.plants
        ad_before = create_on(bed, src)
        ad = bed.run(manager.migrate(src, dst, "mig-vm"))
        assert str(ad["network_id"]).startswith("plant1/")
        assert ad["network_id"] != ad_before["network_id"]
        dst.network_pool.check_isolation()

    def test_shop_rerouted(self):
        bed, manager = make_site()
        ad = bed.run(bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        src = bed.registry.bind(str(ad["plant"]))
        dst = next(p for p in bed.plants if p is not src)
        bed.run(manager.migrate(src, dst, vmid, shop=bed.shop))
        queried = bed.run(bed.shop.query(vmid))
        assert queried["plant"] == dst.name
        bed.run(bed.shop.destroy(vmid))
        assert dst.active_vm_count() == 0

    def test_same_plant_rejected(self):
        bed, manager = make_site()
        src = bed.plants[0]
        create_on(bed, src)
        with pytest.raises(PlantError, match="same"):
            bed.run(manager.migrate(src, src, "mig-vm"))

    def test_unknown_vm_rejected(self):
        bed, manager = make_site()
        with pytest.raises(PlantError):
            bed.run(manager.migrate(bed.plants[0], bed.plants[1], "ghost"))

    def test_target_network_shortage_aborts_cleanly(self):
        bed, manager = make_site()
        src, dst = bed.plants
        # Exhaust the target's host-only networks with other domains.
        dst.network_pool = HostOnlyNetworkPool("plant1", count=1)
        dst.network_pool.attach("other.domain", "squatter")
        create_on(bed, src)
        with pytest.raises(VNetError):
            bed.run(manager.migrate(src, dst, "mig-vm"))
        # The VM is still running, untouched, at the source.
        vm = src.infosys.get("mig-vm")
        assert vm.status is VMStatus.RUNNING
        assert bed.hosts[0].committed_guest_mb == 32

    def test_target_capacity_aborts_cleanly(self):
        bed, manager = make_site(max_vms_per_plant=1)
        src, dst = bed.plants
        create_on(bed, src, "vm-a")
        create_on(bed, dst, "vm-b")
        with pytest.raises(PlantError, match="capacity"):
            bed.run(manager.migrate(src, dst, "vm-a"))
        assert src.infosys.get("vm-a").status is VMStatus.RUNNING

    def test_migrating_vm_cannot_migrate_again_concurrently(self):
        bed, manager = make_site()
        src, dst = bed.plants
        create_on(bed, src)

        def both():
            first = bed.env.process(
                manager.migrate(src, dst, "mig-vm")
            )
            yield bed.env.timeout(0.5)  # mid-migration
            with pytest.raises(PlantError, match="migrating"):
                src.begin_migration("mig-vm")
            yield first

        bed.run(both())

    def test_concurrent_migrations_share_internode_link(self):
        bed, manager = make_site()
        src, dst = bed.plants
        create_on(bed, src, "vm-a", mem=256)
        create_on(bed, src, "vm-b", mem=256)

        def serial_time():
            b2, m2 = make_site()
            s2, d2 = b2.plants
            create_on(b2, s2, "vm-a", mem=256)
            start = b2.env.now
            b2.run(m2.migrate(s2, d2, "vm-a"))
            return b2.env.now - start

        solo = serial_time()

        def both():
            p1 = bed.env.process(manager.migrate(src, dst, "vm-a"))
            p2 = bed.env.process(manager.migrate(src, dst, "vm-b"))
            start = bed.env.now
            yield bed.env.all_of([p1, p2])
            return bed.env.now - start

        concurrent = bed.run(both())
        # Two 256 MB payloads on one link: slower than one migration,
        # faster than two back to back.
        assert concurrent > solo
        assert dst.active_vm_count() == 2


class TestMigrateLocal:
    def test_local_directory_moves(self, tmp_path):
        from repro.core.dag import ConfigDAG
        from repro.core.spec import (
            CreateRequest,
            HardwareSpec,
            NetworkSpec,
            SoftwareSpec,
        )
        from repro.local import LocalImageStore, LocalProductionLine
        from repro.plant.vmplant import VMPlant
        from repro.plant.warehouse import GoldenImage
        from repro.sim.kernel import Environment
        from repro.workloads.requests import install_os_action

        env = Environment()
        store = LocalImageStore(tmp_path / "warehouse")
        store.add(
            GoldenImage(
                image_id="img", vm_type="vmware", os="o",
                hardware=HardwareSpec(memory_mb=32),
                performed=(install_os_action("o"),),
                disk_state_mb=8, disk_files=2, memory_state_mb=32,
            )
        )
        warehouse = store.to_warehouse()
        line_a = LocalProductionLine(env, store, tmp_path / "runA")
        line_b = LocalProductionLine(env, store, tmp_path / "runB")
        plant_a = VMPlant(env, "A", warehouse, {"vmware": line_a})
        plant_b = VMPlant(env, "B", warehouse, {"vmware": line_b})
        request = CreateRequest(
            hardware=HardwareSpec(memory_mb=32),
            software=SoftwareSpec(
                os="o",
                dag=ConfigDAG.from_sequence([install_os_action("o")]),
            ),
            network=NetworkSpec(domain="d"),
            vm_type="vmware",
        )
        drive(env, plant_a.create(request, "vm1"))
        assert (tmp_path / "runA" / "vm1").exists()

        manager = MigrationManager(env)
        ad = drive(env, manager.migrate(plant_a, plant_b, "vm1"))
        assert ad["plant"] == "B"
        assert not (tmp_path / "runA" / "vm1").exists()
        target = tmp_path / "runB" / "vm1"
        assert target.exists()
        assert (target / "status").read_text() == "running\n"
        # Disk symlinks survive the move.
        assert (target / "disk" / "chunk-00.vmdk").is_symlink()
        drive(env, plant_b.destroy("vm1"))
        assert not target.exists()


class TestDrain:
    def test_drain_evacuates_and_balances(self):
        bed = build_testbed(seed=22, n_plants=3)
        manager = MigrationManager(bed.env, link=bed.internode)
        src = bed.plants[0]

        def load():
            for i in range(6):
                yield from src.create(experiment_request(32), f"vm{i}")

        bed.run(load())
        migrated = bed.run(
            manager.drain(src, bed.plants[1:], shop=None)
        )
        assert len(migrated) == 6
        assert src.active_vm_count() == 0
        counts = [p.active_vm_count() for p in bed.plants[1:]]
        assert sorted(counts) == [3, 3]  # bidding balances the drain

    def test_drain_reroutes_shop(self):
        bed = build_testbed(seed=22, n_plants=2)
        manager = MigrationManager(bed.env, link=bed.internode)
        ad = bed.run(bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        src = bed.registry.bind(str(ad["plant"]))
        target = next(p for p in bed.plants if p is not src)
        bed.run(manager.drain(src, [target], shop=bed.shop))
        queried = bed.run(bed.shop.query(vmid))
        assert queried["plant"] == target.name

    def test_drain_rejects_bad_targets(self):
        bed = build_testbed(seed=22, n_plants=2)
        manager = MigrationManager(bed.env)
        with pytest.raises(PlantError):
            bed.run(manager.drain(bed.plants[0], []))
        with pytest.raises(PlantError):
            bed.run(manager.drain(bed.plants[0], [bed.plants[0]]))

    def test_drain_fails_when_no_capacity(self):
        bed = build_testbed(seed=22, n_plants=2, max_vms_per_plant=1)
        manager = MigrationManager(bed.env, link=bed.internode)
        src, dst = bed.plants
        bed.run(src.create(experiment_request(32), "vm-a"))
        bed.run(dst.create(experiment_request(32), "vm-b"))
        with pytest.raises(PlantError, match="no target"):
            bed.run(manager.drain(src, [dst]))
