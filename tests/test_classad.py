"""Unit tests for the classad store and expression language."""

import pytest

from repro.core.classad import (
    UNDEFINED,
    ClassAd,
    Expression,
    Undefined,
    evaluate,
)
from repro.core.errors import ClassAdError


class TestLiteralsAndArithmetic:
    def test_integers_and_floats(self):
        assert evaluate("42") == 42
        assert evaluate("3.5") == 3.5
        assert evaluate("1e3") == 1000.0

    def test_strings(self):
        assert evaluate('"hello"') == "hello"
        assert evaluate('"a\\"b"') == 'a"b'

    def test_booleans_and_undefined(self):
        assert evaluate("true") is True
        assert evaluate("FALSE") is False
        assert isinstance(evaluate("undefined"), Undefined)

    def test_arithmetic_precedence(self):
        assert evaluate("2+3*4") == 14
        assert evaluate("(2+3)*4") == 20
        assert evaluate("10-2-3") == 5
        assert evaluate("7%3") == 1

    def test_division_semantics(self):
        assert evaluate("10/2") == 5
        assert evaluate("7/2") == 3.5

    def test_division_by_zero_raises(self):
        with pytest.raises(ClassAdError):
            evaluate("1/0")
        with pytest.raises(ClassAdError):
            evaluate("1%0")

    def test_unary_minus_and_not(self):
        assert evaluate("-5") == -5
        assert evaluate("--5") == 5
        assert evaluate("!true") is False
        assert evaluate("!!false") is False

    def test_string_concatenation(self):
        assert evaluate('"foo" + "bar"') == "foobar"

    def test_type_errors(self):
        with pytest.raises(ClassAdError):
            evaluate('1 + "a"')
        with pytest.raises(ClassAdError):
            evaluate("!3")
        with pytest.raises(ClassAdError):
            evaluate("-\"x\"")


class TestComparisonsAndLogic:
    def test_numeric_comparison(self):
        assert evaluate("1 < 2") is True
        assert evaluate("2 <= 2") is True
        assert evaluate("3 > 4") is False
        assert evaluate("5 != 6") is True

    def test_string_comparison_case_insensitive(self):
        assert evaluate('"ABC" == "abc"') is True
        assert evaluate('"a" < "B"') is True

    def test_cross_type_equality(self):
        assert evaluate('1 == "1"') is False
        assert evaluate('1 != "1"') is True

    def test_cross_type_ordering_raises(self):
        with pytest.raises(ClassAdError):
            evaluate('1 < "2"')

    def test_three_valued_and(self):
        assert evaluate("undefined && false") is False
        assert isinstance(evaluate("undefined && true"), Undefined)
        assert evaluate("true && true") is True

    def test_three_valued_or(self):
        assert evaluate("undefined || true") is True
        assert isinstance(evaluate("undefined || false"), Undefined)
        assert evaluate("false || false") is False

    def test_undefined_propagates_through_comparison(self):
        assert isinstance(evaluate("undefined == 1"), Undefined)
        assert isinstance(evaluate("undefined + 1"), Undefined)

    def test_meta_equality_pierces_undefined(self):
        assert evaluate("undefined =?= undefined") is True
        assert evaluate("undefined =?= 1") is False
        assert evaluate("1 =?= 1.0") is False  # type-exact
        assert evaluate("1 =!= 2") is True

    def test_ternary(self):
        assert evaluate("1 < 2 ? 10 : 20") == 10
        assert evaluate("1 > 2 ? 10 : 20") == 20
        assert isinstance(evaluate("undefined ? 1 : 2"), Undefined)

    def test_short_circuit_avoids_errors(self):
        # Right side would raise; short circuit must prevent it.
        assert evaluate("false && (1/0 == 1)") is False
        assert evaluate("true || (1/0 == 1)") is True


class TestReferences:
    def test_bare_reference(self):
        ad = ClassAd({"memory": 64})
        assert evaluate("memory * 2", ad) == 128

    def test_my_and_other_scopes(self):
        mine = ClassAd({"memory": 64})
        theirs = ClassAd({"memory": 32})
        assert evaluate("my.memory > other.memory", mine, theirs) is True
        assert evaluate("self.memory", mine) == 64
        assert evaluate("target.memory", mine, theirs) == 32

    def test_missing_attribute_is_undefined(self):
        ad = ClassAd()
        assert isinstance(evaluate("nope", ad), Undefined)

    def test_bare_name_falls_through_to_other(self):
        mine = ClassAd()
        theirs = ClassAd({"shared": 9})
        assert evaluate("shared", mine, theirs) == 9

    def test_expression_valued_attribute(self):
        ad = ClassAd({"base": 10})
        ad.set_expression("derived", "base * 3")
        assert ad.eval("derived") == 30

    def test_unknown_scope_rejected(self):
        with pytest.raises(ClassAdError):
            evaluate("bogus.attr", ClassAd())


class TestParserErrors:
    @pytest.mark.parametrize(
        "text",
        ["", "1 +", "(1", "1 ? 2", "a.", "@", '"unterminated', "1 2"],
    )
    def test_malformed_expressions(self, text):
        with pytest.raises(ClassAdError):
            evaluate(text)


class TestClassAd:
    def test_case_insensitive_keys(self):
        ad = ClassAd({"Memory": 64})
        assert ad["memory"] == 64
        assert "MEMORY" in ad
        del ad["mEmOrY"]
        assert "memory" not in ad

    def test_getitem_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            ClassAd()["ghost"]

    def test_lookup_and_get(self):
        ad = ClassAd({"a": 1})
        assert ad.lookup("missing") is UNDEFINED
        assert ad.get("missing", "dflt") == "dflt"
        assert ad.get("a") == 1

    def test_unsupported_value_rejected(self):
        with pytest.raises(ClassAdError):
            ClassAd({"bad": object()})
        with pytest.raises(ClassAdError):
            ClassAd({"bad": [object()]})

    def test_lists_supported(self):
        ad = ClassAd({"tags": ["x", "y"]})
        assert ad["tags"] == ["x", "y"]

    def test_update_and_copy_independent(self):
        ad = ClassAd({"a": 1})
        dup = ad.copy()
        dup["a"] = 2
        assert ad["a"] == 1
        ad.update({"b": 3})
        assert "b" not in dup

    def test_items_preserve_insertion_order(self):
        ad = ClassAd()
        ad["z"] = 1
        ad["a"] = 2
        assert [k for k, _ in ad.items()] == ["z", "a"]


class TestMatching:
    def test_requirements_match(self):
        job = ClassAd({"memory_needed": 64})
        job.set_expression(
            "requirements", "other.memory >= my.memory_needed"
        )
        assert job.matches(ClassAd({"memory": 128}))
        assert not job.matches(ClassAd({"memory": 32}))

    def test_missing_requirements_accepts_all(self):
        assert ClassAd().matches(ClassAd())

    def test_undefined_requirements_rejects(self):
        job = ClassAd()
        job.set_expression("requirements", "other.ghost > 5")
        assert not job.matches(ClassAd())

    def test_symmetric_match(self):
        a = ClassAd({"kind": "shop"})
        a.set_expression("requirements", 'other.kind == "plant"')
        b = ClassAd({"kind": "plant"})
        b.set_expression("requirements", 'other.kind == "shop"')
        assert a.symmetric_match(b)
        assert not a.symmetric_match(a)


class TestSerialization:
    def test_roundtrip_scalars(self):
        ad = ClassAd(
            {"i": 3, "f": 2.5, "s": "text", "b": True, "u": UNDEFINED}
        )
        back = ClassAd.from_string(ad.to_string())
        assert back == ad

    def test_roundtrip_expression(self):
        ad = ClassAd({"mem": 32})
        ad.set_expression("requirements", "other.mem == my.mem")
        back = ClassAd.from_string(ad.to_string())
        assert back.matches(ClassAd({"mem": 32}))
        assert not back.matches(ClassAd({"mem": 64}))

    def test_roundtrip_list(self):
        ad = ClassAd({"tags": ["a", "b"]})
        back = ClassAd.from_string(ad.to_string())
        assert back["tags"] == ["a", "b"]

    def test_roundtrip_escaped_string(self):
        ad = ClassAd({"path": 'C:\\dir\\"quoted"'})
        back = ClassAd.from_string(ad.to_string())
        assert back["path"] == ad["path"]

    def test_unbracketed_text_rejected(self):
        with pytest.raises(ClassAdError):
            ClassAd.from_string("a = 1")

    def test_expression_object_reusable(self):
        expr = Expression("x + 1")
        assert expr.evaluate(ClassAd({"x": 1})) == 2
        assert expr.evaluate(ClassAd({"x": 10})) == 11


class TestFunctions:
    def test_numeric_functions(self):
        assert evaluate("floor(3.7)") == 3
        assert evaluate("ceiling(3.2)") == 4
        assert evaluate("round(2.5)") == 3
        assert evaluate("min(3, 7)") == 3
        assert evaluate("max(1, 9, 5)") == 9

    def test_string_functions(self):
        assert evaluate('strcat("vm-", 42)') == "vm-42"
        assert evaluate('toUpper("ab")') == "AB"
        assert evaluate('toLower("AB")') == "ab"
        assert evaluate('size("hello")') == 5

    def test_member_case_insensitive_strings(self):
        ad = ClassAd({"oses": ["RH8", "mandrake"]})
        assert evaluate('member("rh8", oses)', ad) is True
        assert evaluate('member("xp", oses)', ad) is False

    def test_member_in_requirements(self):
        """Functions compose with matchmaking."""
        req = ClassAd()
        req.set_expression(
            "requirements", 'member("vmware", other.vm_types)'
        )
        plant = ClassAd({"vm_types": ["uml", "vmware"]})
        assert req.matches(plant)
        assert not req.matches(ClassAd({"vm_types": ["uml"]}))

    def test_undefined_propagates_through_calls(self):
        from repro.core.classad import Undefined

        assert isinstance(evaluate("floor(undefined)"), Undefined)

    def test_unknown_function_rejected(self):
        with pytest.raises(ClassAdError):
            evaluate("teleport(1)")

    def test_bad_arity_rejected(self):
        with pytest.raises(ClassAdError):
            evaluate("floor(1, 2)")

    def test_type_errors(self):
        with pytest.raises(ClassAdError):
            evaluate('floor("x")')
        with pytest.raises(ClassAdError):
            evaluate("size(3)")
        with pytest.raises(ClassAdError):
            evaluate('member("a", "not-a-list")')
