"""Parallel fan-out and result-cache correctness.

The performance layer's contract is strict: fanning the suite out
across worker processes, or loading it back from the on-disk cache,
must be *bit-identical* to fresh sequential execution — same samples,
same clone records, same histograms.  These tests pin that contract,
plus the runner pass-through/`failures` satellites.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.histograms import FIG4_BIN_CENTERS, histogram
from repro.experiments.cache import ResultCache, param_token
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.parallel import (
    Job,
    parallel_map,
    run_jobs,
    run_seed_sweep,
)
from repro.experiments.runner import (
    PAPER_RUNS,
    run_creation_experiment,
    run_creation_suite,
)
from repro.plant.production import CloneMode

SMALL_RUNS = {32: (5, 0.2), 64: (4, 0.0)}


def run_fingerprint(run) -> str:
    """NaN-safe bit-exact fingerprint of one ExperimentRun."""
    samples = [
        (s.index, s.memory_mb, s.ok, repr(s.latency), s.vmid, s.plant, s.error)
        for s in run.samples
    ]
    clones = [
        (
            r.vmid,
            repr(r.started_at),
            repr(r.copy_time),
            repr(r.resume_time),
            repr(r.total_time),
            repr(r.pressure),
            r.host_vms_before,
        )
        for r in run.clone_records()
    ]
    return repr((run.memory_mb, run.vm_type, samples, clones))


def suite_fingerprint(suite) -> str:
    return repr({m: run_fingerprint(suite[m]) for m in sorted(suite)})


class TestParallelFanout:
    def test_small_suite_parallel_bit_identical(self):
        seq = run_creation_suite(seed=9, runs=SMALL_RUNS)
        par = run_creation_suite(
            seed=9, runs=SMALL_RUNS, parallel=True, max_workers=2
        )
        assert suite_fingerprint(seq) == suite_fingerprint(par)

    def test_full_paper_suite_parallel_bit_identical(self):
        """Acceptance: seed-2004 PAPER_RUNS, sequential == parallel."""
        seq = run_creation_suite(seed=2004)
        par = run_creation_suite(seed=2004, parallel=True)
        assert suite_fingerprint(seq) == suite_fingerprint(par)
        assert run_figure4(suite=seq).render() == run_figure4(
            suite=par
        ).render()
        assert run_figure5(suite=seq).render() == run_figure5(
            suite=par
        ).render()
        assert list(seq) == list(PAPER_RUNS) == list(par)

    def test_parallel_results_are_detached(self):
        par = run_creation_suite(
            seed=9, runs={32: (3, 0.0)}, parallel=True
        )
        run = par[32]
        assert run.testbed is None
        assert run.frozen_clone_records is not None
        pickle.dumps(run)  # must round-trip

    def test_run_jobs_rejects_duplicate_keys(self):
        jobs = [
            Job(key="a", fn=len, kwargs={"obj": ()}),
            Job(key="a", fn=len, kwargs={"obj": ()}),
        ]
        with pytest.raises(ValueError):
            run_jobs(jobs)

    def test_run_jobs_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            run_jobs([], mode="threads")

    def test_merge_is_submission_ordered(self):
        jobs = [
            Job(key=k, fn=run_creation_experiment,
                kwargs={"memory_mb": 32, "count": 1, "seed": k})
            for k in (7, 3, 5)
        ]
        out = run_jobs(jobs, mode="process", max_workers=2)
        assert list(out) == [7, 3, 5]

    def test_parallel_map_preserves_order(self):
        results = parallel_map(
            run_creation_experiment,
            [
                {"memory_mb": 32, "count": 1, "seed": 1},
                {"memory_mb": 64, "count": 1, "seed": 2},
            ],
            mode="serial",
        )
        assert [r.memory_mb for r in results] == [32, 64]

    def test_seed_sweep_is_keyed_by_seed(self):
        out = run_seed_sweep(
            run_creation_experiment,
            seeds=(11, 12),
            mode="serial",
            memory_mb=32,
            count=2,
        )
        assert list(out) == [11, 12]
        a = [s.latency for s in out[11].successes]
        b = [s.latency for s in out[12].successes]
        assert a != b


class TestResultCache:
    def test_cached_suite_identical_to_fresh(self, tmp_path):
        """Satellite: cached load reproduces Figs 4/5 bit-for-bit."""
        cache = ResultCache(root=tmp_path)
        fresh = run_creation_suite(seed=9, runs=SMALL_RUNS, cache=cache)
        assert cache.misses == len(SMALL_RUNS) and cache.hits == 0
        cached = run_creation_suite(seed=9, runs=SMALL_RUNS, cache=cache)
        assert cache.hits == len(SMALL_RUNS)
        assert suite_fingerprint(fresh) == suite_fingerprint(cached)
        for m in SMALL_RUNS:
            fresh_hist = histogram(
                fresh[m].creation_latencies, FIG4_BIN_CENTERS
            )
            cached_hist = histogram(
                cached[m].creation_latencies, FIG4_BIN_CENTERS
            )
            assert fresh_hist == cached_hist
        assert run_figure4(suite=fresh).render() == run_figure4(
            suite=cached
        ).render()
        assert run_figure5(suite=fresh).render() == run_figure5(
            suite=cached
        ).render()

    def test_stale_source_digest_forces_recompute(self, tmp_path):
        warm = ResultCache(root=tmp_path, digest="digest-A")
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=warm)
        hit = ResultCache(root=tmp_path, digest="digest-A")
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=hit)
        assert hit.hits == 1 and hit.misses == 0
        stale = ResultCache(root=tmp_path, digest="digest-B")
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=stale)
        assert stale.hits == 0 and stale.misses == 1

    def test_params_partition_the_keyspace(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=cache)
        other = run_creation_suite(
            seed=10, runs={32: (2, 0.0)}, cache=cache
        )
        assert cache.hits == 0 and cache.misses == 2
        assert other[32].samples  # actually simulated, not a stale hit

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=cache)
        (entry,) = list(cache.entries())
        entry.write_bytes(b"truncated garbage")
        again = ResultCache(root=tmp_path)
        suite = run_creation_suite(
            seed=9, runs={32: (2, 0.0)}, cache=again
        )
        assert again.misses == 1 and suite[32].samples

    def test_put_leaves_no_temp_files(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=cache)
        assert not list(tmp_path.glob("*.tmp"))
        assert len(list(cache.entries())) == 1

    def test_env_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        cache = ResultCache(root=tmp_path)
        assert not cache.enabled
        run_creation_suite(seed=9, runs={32: (2, 0.0)}, cache=cache)
        assert not list(cache.entries())

    def test_clear_removes_entries(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        run_creation_suite(seed=9, runs=SMALL_RUNS, cache=cache)
        assert cache.clear() == len(SMALL_RUNS)
        assert not list(cache.entries())

    def test_param_token_is_order_insensitive_for_dicts(self):
        assert param_token({"a": 1, "b": 2.0}) == param_token(
            {"b": 2.0, "a": 1}
        )
        assert param_token(CloneMode.LINK) != param_token(CloneMode.COPY)


class TestRunnerSatellites:
    def test_failures_property_partitions_samples(self):
        run = run_creation_experiment(32, 12, seed=3, failure_prob=0.4)
        assert run.failures, "expected injected failures at p=0.4"
        assert len(run.failures) + len(run.successes) == len(run.samples)
        assert all(not s.ok and s.error for s in run.failures)

    def test_suite_passes_through_clone_mode_and_n_plants(self):
        suite = run_creation_suite(
            seed=9,
            runs={256: (3, 0.0)},
            n_plants=2,
            clone_mode=CloneMode.COPY,
        )
        run = suite[256]
        records = run.clone_records()
        assert records and all(r.clone_mode == "copy" for r in records)
        assert {s.plant for s in run.successes} <= {"plant0", "plant1"}

    def test_suite_passes_through_vm_type(self):
        suite = run_creation_suite(
            seed=9, runs={32: (2, 0.0)}, vm_type="uml", n_plants=2
        )
        assert suite[32].vm_type == "uml"
        assert all(
            r.vm_type == "uml" for r in suite[32].clone_records()
        )
