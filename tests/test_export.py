"""Tests for the CSV/JSON export helpers."""

import csv
import io
import json

from repro.analysis.export import (
    clone_records_to_rows,
    histograms_to_rows,
    rows_to_csv,
    series_to_rows,
    summaries_to_json,
)
from repro.analysis.histograms import histogram
from repro.analysis.stats import summarize
from repro.sim.hypervisor import CloneRecord


class TestExport:
    def test_rows_to_csv_roundtrip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        text = rows_to_csv(rows, ["a", "b"])
        back = list(csv.DictReader(io.StringIO(text)))
        assert back == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_missing_fields_blank(self):
        text = rows_to_csv([{"a": 1}], ["a", "b"])
        back = list(csv.DictReader(io.StringIO(text)))
        assert back[0]["b"] == ""

    def test_histograms_to_rows(self):
        series = {"32 MB": histogram([10, 20, 20], [5, 15, 25])}
        rows = histograms_to_rows(series)
        assert len(rows) == 3
        assert rows[1]["count"] == 1  # the 10 in the 15-bin? no: 10→15bin
        total = sum(r["count"] for r in rows)
        assert total == 3
        assert all(r["series"] == "32 MB" for r in rows)

    def test_series_to_rows(self):
        rows = series_to_rows({"s": [(1, 2.0), (2, 4.0)]})
        assert rows == [
            {"series": "s", "sequence": 1, "value": 2.0},
            {"series": "s", "sequence": 2, "value": 4.0},
        ]

    def test_clone_records_to_rows(self):
        record = CloneRecord(
            vmid="vm1", vm_type="vmware", memory_mb=32,
            clone_mode="link", started_at=0.0, copy_time=1.0,
            resume_time=2.0, total_time=3.5, pressure=1.0,
            host_vms_before=0,
        )
        rows = clone_records_to_rows([record])
        assert rows[0]["vmid"] == "vm1"
        assert rows[0]["total_time"] == 3.5

    def test_summaries_to_json(self):
        text = summaries_to_json({"x": summarize([1.0, 3.0])})
        data = json.loads(text)
        assert data["x"]["mean"] == 2.0
        assert data["x"]["count"] == 2

    def test_full_pipeline_from_experiment(self):
        from repro.experiments.runner import run_creation_experiment

        run = run_creation_experiment(32, 3, seed=51, n_plants=1)
        rows = clone_records_to_rows(run.clone_records())
        text = rows_to_csv(
            rows,
            ["vmid", "memory_mb", "total_time", "pressure"],
        )
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 3
        assert all(float(r["total_time"]) > 0 for r in parsed)
