"""Unit tests for the Action value object."""

import pytest

from repro.core.actions import (
    Action,
    ActionResult,
    ActionScope,
    ActionStatus,
    ErrorPolicy,
)


class TestAction:
    def test_defaults(self):
        action = Action("setup")
        assert action.scope is ActionScope.GUEST
        assert action.on_error is ErrorPolicy.FAIL
        assert action.retries == 0
        assert action.params == ()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Action("")

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            Action("x", retries=-1)

    def test_params_canonicalized(self):
        a = Action("x", params={"b": 2, "a": 1})
        b = Action("x", params={"a": 1, "b": 2})
        assert a == b
        assert a.params == (("a", "1"), ("b", "2"))

    def test_param_dict_view(self):
        action = Action("x", params={"user": "alice"})
        assert action.param_dict == {"user": "'alice'"}

    def test_signature_stable_across_param_order(self):
        a = Action("x", command="c", params={"p": 1, "q": 2})
        b = Action("x", command="c", params={"q": 2, "p": 1})
        assert a.signature == b.signature

    def test_signature_differs_on_content(self):
        base = Action("x", command="c")
        assert base.signature != Action("x", command="d").signature
        assert base.signature != Action(
            "x", command="c", scope=ActionScope.HOST
        ).signature
        assert base.signature != Action(
            "x", command="c", params={"k": 1}
        ).signature

    def test_signature_ignores_error_policy(self):
        # Error handling is orchestration, not machine state.
        a = Action("x", command="c", on_error=ErrorPolicy.FAIL)
        b = Action("x", command="c", on_error=ErrorPolicy.RETRY, retries=3)
        assert a.signature == b.signature

    def test_rendered_command_substitutes_strings(self):
        action = Action(
            "x", command="useradd {user}", params={"user": "alice"}
        )
        assert action.rendered_command() == "useradd alice"

    def test_rendered_command_substitutes_numbers(self):
        action = Action(
            "x", command="mem {mb}", params={"mb": 64}
        )
        assert action.rendered_command() == "mem 64"

    def test_rendered_command_unbound_param_raises(self):
        action = Action("x", command="use {missing}")
        with pytest.raises(ValueError, match="unbound"):
            action.rendered_command()

    def test_enum_coercion_from_strings(self):
        action = Action("x", scope="host", on_error="retry", retries=1)
        assert action.scope is ActionScope.HOST
        assert action.on_error is ErrorPolicy.RETRY

    def test_str_form(self):
        assert str(Action("setup", scope=ActionScope.HOST)) == "setup[host]"

    def test_hashable_and_frozen(self):
        action = Action("x")
        assert hash(action) == hash(Action("x"))
        with pytest.raises(Exception):
            action.name = "y"  # type: ignore[misc]


class TestActionResult:
    def test_ok_statuses(self):
        assert ActionResult("a", ActionStatus.OK).ok
        assert ActionResult("a", ActionStatus.CACHED).ok
        assert not ActionResult("a", ActionStatus.FAILED).ok
        assert not ActionResult("a", ActionStatus.SKIPPED).ok

    def test_output_dict(self):
        result = ActionResult(
            "a", ActionStatus.OK, outputs=(("ip", "10.0.0.1"),)
        )
        assert result.output_dict == {"ip": "10.0.0.1"}
