"""Tests for the real-filesystem production line and image store."""

import os

import pytest

from repro.core.actions import Action, ActionScope, ErrorPolicy
from repro.core.dag import ConfigDAG
from repro.core.errors import ConfigurationError, PlantError, WarehouseError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.local.image import LocalImageStore, materialize_image
from repro.local.localline import LocalProductionLine
from repro.plant.production import CloneMode
from repro.plant.vmplant import VMPlant
from repro.plant.warehouse import GoldenImage
from repro.sim.kernel import Environment
from repro.workloads.requests import install_os_action

from tests.helpers import drive

OS = "shellos"


def make_image(image_id="golden", mem=32, disk_files=4):
    return GoldenImage(
        image_id=image_id, vm_type="vmware", os=OS,
        hardware=HardwareSpec(memory_mb=mem),
        performed=(install_os_action(OS),),
        disk_state_mb=16.0, disk_files=disk_files,
        memory_state_mb=float(mem),
    )


@pytest.fixture
def rig(tmp_path):
    store = LocalImageStore(tmp_path / "warehouse")
    store.add(make_image())
    env = Environment()
    line = LocalProductionLine(env, store, tmp_path / "run")
    plant = VMPlant(env, "lp", store.to_warehouse(), {"vmware": line})
    return env, store, line, plant, tmp_path


def make_request(extra=()):
    dag = ConfigDAG.from_sequence([install_os_action(OS), *extra])
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=32),
        software=SoftwareSpec(os=OS, dag=dag),
        network=NetworkSpec(domain="d"),
        client_id="alice",
        vm_type="vmware",
    )


class TestImageStore:
    def test_materialize_layout(self, tmp_path):
        root = materialize_image(make_image(), tmp_path)
        assert (root / "descriptor.xml").exists()
        assert (root / "machine.cfg").exists()
        assert (root / "memory.vmss").exists()
        assert (root / "redo-base.log").exists()
        assert len(list((root / "disk").iterdir())) == 4

    def test_memoryless_image_has_no_vmss(self, tmp_path):
        image = GoldenImage(
            image_id="uml", vm_type="uml", os=OS,
            hardware=HardwareSpec(memory_mb=32), memory_state_mb=0.0,
        )
        root = materialize_image(image, tmp_path)
        assert not (root / "memory.vmss").exists()

    def test_double_materialize_rejected(self, tmp_path):
        materialize_image(make_image(), tmp_path)
        with pytest.raises(WarehouseError):
            materialize_image(make_image(), tmp_path)

    def test_descriptor_roundtrip_from_disk(self, tmp_path):
        store = LocalImageStore(tmp_path)
        image = make_image()
        store.add(image)
        assert store.load_descriptor("golden") == image

    def test_to_warehouse(self, tmp_path):
        store = LocalImageStore(tmp_path)
        store.add(make_image("a"))
        store.add(make_image("b"))
        warehouse = store.to_warehouse()
        assert len(warehouse) == 2

    def test_missing_image_path_raises(self, tmp_path):
        store = LocalImageStore(tmp_path)
        with pytest.raises(WarehouseError):
            store.path_of("ghost")

    def test_scale_controls_file_sizes(self, tmp_path):
        small = LocalImageStore(tmp_path / "s", scale=16)
        root = small.add(make_image())
        vmss = (root / "memory.vmss").stat().st_size
        assert vmss == 32 * 16


class TestLocalClone:
    def test_link_mode_symlinks_disk(self, rig):
        env, store, line, plant, tmp = rig
        drive(env, plant.create(make_request(), "vm1"))
        disk = tmp / "run" / "vm1" / "disk"
        chunks = sorted(disk.iterdir())
        assert len(chunks) == 4
        assert all(c.is_symlink() for c in chunks)
        # Memory state is a real copy, never a link.
        assert not (tmp / "run" / "vm1" / "memory.vmss").is_symlink()

    def test_copy_mode_copies_disk(self, rig):
        env, store, line, plant, tmp = rig
        drive(
            env,
            plant.create(make_request(), "vm1", clone_mode=CloneMode.COPY),
        )
        chunks = list((tmp / "run" / "vm1" / "disk").iterdir())
        assert all(not c.is_symlink() for c in chunks)
        golden = store.disk_chunks("golden")[0].stat().st_size
        assert chunks[0].stat().st_size == golden

    def test_duplicate_clone_dir_rejected(self, rig):
        env, store, line, plant, tmp = rig
        drive(env, plant.create(make_request(), "vm1"))
        # Cloning into an already-populated directory must fail loudly.
        vm = plant.infosys.get("vm1")
        with pytest.raises(PlantError, match="already exists"):
            drive(env, line.clone(vm))


class TestLocalExecution:
    def test_script_runs_and_outputs_parsed(self, rig):
        env, store, line, plant, tmp = rig
        action = Action(
            "emit",
            command="echo VMPLANT_OUTPUT token=abc123",
            outputs=("token",),
        )
        ad = drive(env, plant.create(make_request((action,)), "vm1"))
        assert ad["token"] == "abc123"

    def test_context_visible_as_env(self, rig):
        env, store, line, plant, tmp = rig
        action = Action(
            "whoami",
            command='echo VMPLANT_OUTPUT who=$VMPLANT_CLIENT',
            outputs=("who",),
        )
        ad = drive(env, plant.create(make_request((action,)), "vm1"))
        assert ad["who"] == "alice"

    def test_guest_cwd_is_guest_dir(self, rig):
        env, store, line, plant, tmp = rig
        action = Action("mark", command="touch marker.txt")
        drive(env, plant.create(make_request((action,)), "vm1"))
        assert (tmp / "run" / "vm1" / "guest" / "marker.txt").exists()

    def test_failing_script_fails_action(self, rig):
        env, store, line, plant, tmp = rig
        action = Action("explode", command="exit 3")
        with pytest.raises(ConfigurationError):
            drive(env, plant.create(make_request((action,)), "vm1"))

    def test_failing_script_with_ignore_policy(self, rig):
        env, store, line, plant, tmp = rig
        action = Action(
            "explode", command="exit 3", on_error=ErrorPolicy.IGNORE
        )
        ad = drive(env, plant.create(make_request((action,)), "vm1"))
        assert ad["status"] == "running"

    def test_retry_policy_reruns_script(self, rig):
        env, store, line, plant, tmp = rig
        # Succeeds only once the marker exists (second attempt).
        action = Action(
            "flaky",
            command=(
                "test -f tried.marker || { touch tried.marker; exit 1; }"
            ),
            on_error=ErrorPolicy.RETRY,
            retries=2,
        )
        ad = drive(env, plant.create(make_request((action,)), "vm1"))
        assert ad["status"] == "running"

    def test_host_action_journalled(self, rig):
        env, store, line, plant, tmp = rig
        action = Action(
            "attach-iso", scope=ActionScope.HOST, command="connect iso"
        )
        drive(env, plant.create(make_request((action,)), "vm1"))
        log = (tmp / "run" / "vm1" / "host-ops.log").read_text()
        assert "attach-iso" in log


class TestLocalCollect:
    def test_collect_removes_clone_dir(self, rig):
        env, store, line, plant, tmp = rig
        drive(env, plant.create(make_request(), "vm1"))
        clone_dir = tmp / "run" / "vm1"
        assert clone_dir.exists()
        drive(env, plant.destroy("vm1"))
        assert not clone_dir.exists()

    def test_collect_never_touches_warehouse(self, rig):
        env, store, line, plant, tmp = rig
        drive(env, plant.create(make_request(), "vm1"))
        drive(env, plant.destroy("vm1"))
        assert (tmp / "warehouse" / "golden" / "machine.cfg").exists()
        assert len(store.disk_chunks("golden")) == 4

    def test_golden_disk_unmodified_by_clone_lifecycle(self, rig):
        env, store, line, plant, tmp = rig
        before = [
            (c.name, c.stat().st_size) for c in store.disk_chunks("golden")
        ]
        action = Action("write", command="echo data > newfile")
        drive(env, plant.create(make_request((action,)), "vm1"))
        drive(env, plant.destroy("vm1"))
        after = [
            (c.name, c.stat().st_size) for c in store.disk_chunks("golden")
        ]
        assert before == after


class TestLocalTimeout:
    def test_hanging_script_times_out_as_failure(self, tmp_path):
        from repro.sim.kernel import Environment

        env = Environment()
        store = LocalImageStore(tmp_path / "wh")
        store.add(make_image())
        line = LocalProductionLine(
            env, store, tmp_path / "run", script_timeout_s=0.5
        )
        plant = VMPlant(env, "lp", store.to_warehouse(), {"vmware": line})
        hang = Action(
            "hang", command="sleep 30", on_error=ErrorPolicy.IGNORE
        )
        ad = drive(env, plant.create(make_request((hang,)), "vm1"))
        # Timed out, recorded as a failed (ignored) action.
        vm = plant.infosys.get("vm1")
        failed = next(r for r in vm.results if r.action == "hang")
        assert not failed.ok
        assert "timed out" in failed.message
        assert ad["status"] == "running"
