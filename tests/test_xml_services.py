"""End-to-end XML service dispatch at the plant (prototype wire form)."""

import pytest

from repro.core.classad import ClassAd
from repro.core.errors import PlantError
from repro.core.spec import DestroyRequest, QueryRequest
from repro.shop.protocol import service_request_to_xml
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request


@pytest.fixture
def site():
    bed = build_testbed(seed=61, n_plants=1)
    return bed, bed.plants[0]


class TestPlantXMLDispatch:
    def test_create_via_xml(self, site):
        bed, plant = site
        wire = service_request_to_xml(experiment_request(32))
        ad_text = bed.run(plant.handle_xml(wire, vmid="vm-x1"))
        ad = ClassAd.from_string(ad_text)
        assert ad["vmid"] == "vm-x1"
        assert ad["status"] == "running"

    def test_create_requires_vmid(self, site):
        bed, plant = site
        wire = service_request_to_xml(experiment_request(32))
        with pytest.raises(PlantError, match="vmid"):
            plant.handle_xml(wire)

    def test_estimate_via_xml(self, site):
        bed, plant = site
        wire = service_request_to_xml(
            experiment_request(32), service="estimate"
        )
        bid = plant.handle_xml(wire)
        assert isinstance(bid, float)

    def test_estimate_declines_via_xml(self, site):
        bed, plant = site
        wire = service_request_to_xml(
            experiment_request(4096), service="estimate"
        )
        assert plant.handle_xml(wire) is None

    def test_query_via_xml(self, site):
        bed, plant = site
        wire = service_request_to_xml(experiment_request(32))
        bed.run(plant.handle_xml(wire, vmid="vm-x1"))
        query_wire = service_request_to_xml(
            QueryRequest(vmid="vm-x1", attributes=("status", "ip"))
        )
        ad = ClassAd.from_string(plant.handle_xml(query_wire))
        assert ad["status"] == "running"
        assert len(ad) == 2

    def test_destroy_via_xml(self, site):
        bed, plant = site
        wire = service_request_to_xml(experiment_request(32))
        bed.run(plant.handle_xml(wire, vmid="vm-x1"))
        destroy_wire = service_request_to_xml(
            DestroyRequest(vmid="vm-x1")
        )
        ad = ClassAd.from_string(bed.run(plant.handle_xml(destroy_wire)))
        assert ad["status"] == "collected"
        assert plant.active_vm_count() == 0

    def test_destroy_commit_via_xml(self, site):
        bed, plant = site
        wire = service_request_to_xml(experiment_request(32))
        bed.run(plant.handle_xml(wire, vmid="vm-x1"))
        destroy_wire = service_request_to_xml(
            DestroyRequest(
                vmid="vm-x1", commit=True, publish_as="xml-published"
            )
        )
        bed.run(plant.handle_xml(destroy_wire))
        assert "xml-published" in plant.warehouse

    def test_full_lifecycle_classads_parse_back(self, site):
        """Every wire-form classad is machine-parseable."""
        bed, plant = site
        wire = service_request_to_xml(experiment_request(32))
        text = bed.run(plant.handle_xml(wire, vmid="vm-rt"))
        ad = ClassAd.from_string(text)
        # The classad survives a second round trip untouched.
        assert ClassAd.from_string(ad.to_string()) == ad
