"""Shared test fixtures: a deterministic instant production line.

``InstantLine`` implements the ProductionLine interface with constant,
configurable behaviour so PPP/plant/shop logic can be tested without
the simulated hypervisor's stochastic timing.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set

from repro.core.actions import Action, ActionResult, ActionStatus
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest
from repro.plant.guest import fabricate_outputs
from repro.plant.production import CloneMode, ProductionLine, VirtualMachine
from repro.sim.kernel import Environment


class InstantLine(ProductionLine):
    """Production line with fixed costs and scriptable failures."""

    vm_type = "vmware"

    def __init__(
        self,
        env: Environment,
        clone_time: float = 10.0,
        action_time: float = 2.0,
        fail_clones: int = 0,
        fail_actions: Optional[Set[str]] = None,
        fail_action_times: int = 10 ** 9,
        vm_type: str = "vmware",
    ):
        self.env = env
        self.clone_time = clone_time
        self.action_time = action_time
        self.fail_clones = fail_clones
        self.fail_actions = set(fail_actions or ())
        #: How many times a failing action fails before succeeding.
        self.fail_action_times = fail_action_times
        self.vm_type = vm_type
        self.cloned: List[str] = []
        self.collected: List[str] = []
        self.executed: List[str] = []
        self._action_failures: Dict[str, int] = {}

    def clone(
        self, vm: VirtualMachine, mode: CloneMode = CloneMode.LINK
    ) -> Generator:
        yield self.env.timeout(self.clone_time)
        if self.fail_clones > 0:
            self.fail_clones -= 1
            raise PlantError(f"injected clone failure for {vm.vmid}")
        self.cloned.append(vm.vmid)
        vm.backend = {"mode": mode}

    def execute_action(
        self,
        vm: VirtualMachine,
        action: Action,
        context: Dict[str, str],
    ) -> Generator:
        yield self.env.timeout(self.action_time)
        self.executed.append(action.name)
        if action.name in self.fail_actions:
            count = self._action_failures.get(action.name, 0) + 1
            self._action_failures[action.name] = count
            if count <= self.fail_action_times:
                return ActionResult(
                    action=action.name,
                    status=ActionStatus.FAILED,
                    message="injected action failure",
                )
        outputs = fabricate_outputs(action, context)
        return ActionResult(
            action=action.name,
            status=ActionStatus.OK,
            outputs=tuple(sorted(outputs.items())),
        )

    def collect(self, vm: VirtualMachine) -> Generator:
        yield self.env.timeout(0.0)
        self.collected.append(vm.vmid)

    def can_host(self, request: CreateRequest) -> bool:
        return True


def drive(env: Environment, generator):
    """Run one process to completion and return its value."""
    proc = env.process(generator)
    return env.run(until=proc)
