"""Unit tests for VMShop, bidding, brokers, registry and transport."""

import pytest

from repro.core.actions import Action
from repro.core.classad import ClassAd
from repro.core.dag import ConfigDAG
from repro.core.errors import ProtocolError, ShopError
from repro.core.spec import (
    CreateRequest,
    DestroyRequest,
    HardwareSpec,
    NetworkSpec,
    QueryRequest,
    SoftwareSpec,
)
from repro.plant.vmplant import VMPlant
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.shop.bidding import Bid, BidCollector
from repro.shop.broker import VMBroker
from repro.shop.protocol import (
    Transport,
    service_request_from_xml,
    service_request_to_xml,
)
from repro.shop.registry import ServiceRegistry
from repro.shop.vmshop import VMShop
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub

from tests.helpers import InstantLine, drive

OS = "testos"


def base_action():
    return Action("install-os", scope="host", command="install")


def make_image(mem=32):
    return GoldenImage(
        image_id=f"img{mem}", vm_type="vmware", os=OS,
        hardware=HardwareSpec(memory_mb=mem),
        performed=(base_action(),), memory_state_mb=float(mem),
    )


def make_request(mem=32, domain="d"):
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(
            os=OS, dag=ConfigDAG.from_sequence([base_action()])
        ),
        network=NetworkSpec(domain=domain),
        client_id="tester",
        vm_type="vmware",
    )


def make_site(env, n_plants=2, fail_clones_on=None, registry=None):
    warehouse = VMWarehouse([make_image()])
    shop = VMShop(env, rng=RngHub(5), registry=registry)
    plants = []
    for i in range(n_plants):
        line = InstantLine(
            env,
            clone_time=5 + i,  # plant0 is fastest
            fail_clones=(1 if fail_clones_on == i else 0),
        )
        plant = VMPlant(env, f"p{i}", warehouse, {"vmware": line})
        plants.append(plant)
        shop.register_plant(plant)
    return shop, plants


class TestTransport:
    def test_call_charges_latency(self):
        env = Environment()
        transport = Transport(env, latency_s=0.5, jitter_sigma=0.0)

        def proc(env):
            result = yield from transport.call(lambda: 42)
            return (result, env.now)

        value, elapsed = drive(env, proc(env))
        assert value == 42
        assert elapsed == pytest.approx(1.0)

    def test_call_drives_generator_handlers(self):
        env = Environment()
        transport = Transport(env, latency_s=0.0)

        def handler():
            yield env.timeout(3)
            return "done"

        def proc(env):
            result = yield from transport.call(handler)
            return (result, env.now)

        assert drive(env, proc(env)) == ("done", 3.0)

    def test_zero_latency_allowed(self):
        env = Environment()
        transport = Transport(env, latency_s=0.0)

        def proc(env):
            result = yield from transport.call(lambda: "x")
            return env.now

        assert drive(env, proc(env)) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Transport(Environment(), latency_s=-1)


class TestServiceXML:
    def test_query_roundtrip(self):
        request = QueryRequest(vmid="vm-7", attributes=("status", "ip"))
        service, back = service_request_from_xml(
            service_request_to_xml(request)
        )
        assert service == "query" and back == request

    def test_destroy_roundtrip(self):
        request = DestroyRequest(
            vmid="vm-7", commit=True, publish_as="newimg"
        )
        service, back = service_request_from_xml(
            service_request_to_xml(request)
        )
        assert service == "destroy" and back == request

    def test_create_roundtrip(self):
        request = make_request()
        service, back = service_request_from_xml(
            service_request_to_xml(request)
        )
        assert service == "create"
        assert back.hardware == request.hardware

    def test_estimate_wraps_create_body(self):
        text = service_request_to_xml(make_request(), service="estimate")
        service, back = service_request_from_xml(text)
        assert service == "estimate"
        assert back.hardware.memory_mb == 32

    def test_unknown_service_rejected(self):
        with pytest.raises(ProtocolError):
            service_request_from_xml(
                '<vmplant-request service="meow" vmid="x"/>'
            )

    def test_query_missing_vmid_rejected(self):
        with pytest.raises(ProtocolError):
            service_request_from_xml('<vmplant-request service="query"/>')


class TestBidding:
    def test_collect_gathers_all_bids(self):
        env = Environment()
        shop, plants = make_site(env, n_plants=3)
        collector = shop.collector

        def proc(env):
            bids = yield from collector.collect(
                shop.bidders, make_request()
            )
            return bids

        bids = drive(env, proc(env))
        assert len(bids) == 3
        assert {b.bidder_name for b in bids} == {"p0", "p1", "p2"}

    def test_select_minimum(self):
        env = Environment()
        collector = BidCollector(env, Transport(env), RngHub(1))
        bids = [
            Bid("a", 10.0, None),
            Bid("b", 3.0, None),
            Bid("c", 7.0, None),
        ]
        assert collector.select(bids).bidder_name == "b"

    def test_select_tie_is_deterministic_per_seed(self):
        env = Environment()
        bids = [Bid("a", 5.0, None), Bid("b", 5.0, None)]
        pick1 = BidCollector(env, Transport(env), RngHub(3)).select(bids)
        pick2 = BidCollector(env, Transport(env), RngHub(3)).select(bids)
        assert pick1.bidder_name == pick2.bidder_name

    def test_select_empty_raises(self):
        env = Environment()
        collector = BidCollector(env, Transport(env))
        with pytest.raises(ShopError):
            collector.select([])

    def test_rank_orders_by_cost(self):
        env = Environment()
        collector = BidCollector(env, Transport(env), RngHub(1))
        bids = [
            Bid("a", 10.0, None),
            Bid("b", 3.0, None),
            Bid("c", 7.0, None),
        ]
        assert [b.bidder_name for b in collector.rank(bids)] == [
            "b", "c", "a",
        ]

    def test_rank_matches_reference_orderings_seed_2004(self):
        """The single-pass rank is pinned to the naive reference.

        The grouped implementation must consume the ``bid-tie`` stream
        exactly like the former repeated select+remove loop, so both
        collectors (same seed) must produce identical orderings on a
        seed-2004 suite of random tie-heavy bid sets.
        """
        import random as _random

        env = Environment()
        grouped = BidCollector(env, Transport(env), RngHub(2004))
        reference = BidCollector(env, Transport(env), RngHub(2004))

        def reference_rank(collector, bids):
            remaining = list(bids)
            ordered = []
            while remaining:
                chosen = collector.select(remaining)
                ordered.append(chosen)
                remaining.remove(chosen)
            return ordered

        gen = _random.Random(2004)
        for _ in range(100):
            bids = [
                Bid(f"p{i}", float(gen.choice((1, 2, 3))), object())
                for i in range(gen.randrange(1, 12))
            ]
            assert [
                b.bidder_name for b in grouped.rank(bids)
            ] == [
                b.bidder_name for b in reference_rank(reference, bids)
            ]


class TestVMShop:
    def test_create_query_destroy_cycle(self):
        env = Environment()
        shop, plants = make_site(env)
        ad = drive(env, shop.create(make_request()))
        vmid = str(ad["vmid"])
        assert vmid.startswith("vmshop-vm-")
        queried = drive(env, shop.query(vmid))
        assert queried["status"] == "running"
        final = drive(env, shop.destroy(vmid))
        assert final["status"] == "collected"
        assert shop.active_vmids() == []

    def test_balanced_distribution_with_memory_cost(self):
        env = Environment()
        shop, plants = make_site(env, n_plants=2)
        for _ in range(4):
            drive(env, shop.create(make_request()))
        counts = [p.active_vm_count() for p in plants]
        assert counts == [2, 2]

    def test_no_bids_raises(self):
        env = Environment()
        shop = VMShop(env)
        with pytest.raises(ShopError, match="no plant bid"):
            drive(env, shop.create(make_request()))

    def test_unknown_vmid_raises(self):
        env = Environment()
        shop, _ = make_site(env)
        with pytest.raises(ShopError):
            drive(env, shop.query("ghost"))

    def test_plant_failure_surfaces_by_default(self):
        env = Environment()
        shop, plants = make_site(env, n_plants=1, fail_clones_on=0)
        from repro.core.errors import PlantError

        with pytest.raises(PlantError):
            drive(env, shop.create(make_request()))
        assert shop.creation_log[-1][2] is False

    def test_retry_other_plants_falls_through(self):
        env = Environment()
        warehouse = VMWarehouse([make_image()])
        shop = VMShop(env, rng=RngHub(5), retry_other_plants=True)
        # p0 bids lowest (fewest VMs... equal) but always fails clones.
        failing = VMPlant(
            env, "p0", warehouse,
            {"vmware": InstantLine(env, clone_time=1, fail_clones=99)},
        )
        working = VMPlant(
            env, "p1", warehouse, {"vmware": InstantLine(env)}
        )
        shop.register_plant(failing)
        shop.register_plant(working)
        ad = drive(env, shop.create(make_request()))
        assert ad["plant"] == "p1"

    def test_query_cache(self):
        env = Environment()
        shop, plants = make_site(env)
        ad = drive(env, shop.create(make_request()))
        vmid = str(ad["vmid"])
        calls_before = shop.transport.calls
        cached = drive(env, shop.query(vmid, use_cache=True))
        assert shop.transport.calls == calls_before  # served locally
        assert cached["vmid"] == vmid

    def test_query_accepts_generator_attributes(self):
        """A generator projection must not poison the classad cache.

        ``tuple(attributes)`` used to be evaluated twice; a generator
        argument was exhausted by the first call, so the post-call
        cache fill saw an empty projection and stored the *projected*
        ad as the VM's full classad.
        """
        env = Environment()
        shop, plants = make_site(env)
        ad = drive(env, shop.create(make_request()))
        vmid = str(ad["vmid"])
        shop._cache.clear()
        projected = drive(
            env,
            shop.query(vmid, (n for n in ("vmid", "status"))),
        )
        assert dict(projected.items()).keys() == {"vmid", "status"}
        # The projection must not have been cached as the full ad.
        cached = drive(env, shop.query(vmid, use_cache=True))
        assert "plant" in cached

    def test_recover_rebuilds_routing(self):
        env = Environment()
        shop, plants = make_site(env)
        ad = drive(env, shop.create(make_request()))
        vmid = str(ad["vmid"])
        # Simulate a shop restart: drop all soft state.
        shop._route.clear()
        shop._cache.clear()
        assert shop.recover() == 1
        queried = drive(env, shop.query(vmid))
        assert queried["vmid"] == vmid

    def test_xml_path_can_be_disabled(self):
        env = Environment()
        warehouse = VMWarehouse([make_image()])
        shop = VMShop(env, use_xml=False, rng=RngHub(5))
        shop.register_plant(
            VMPlant(env, "p0", warehouse, {"vmware": InstantLine(env)})
        )
        ad = drive(env, shop.create(make_request()))
        assert ad["plant"] == "p0"

    def test_estimate_exposes_bids(self):
        env = Environment()
        shop, _ = make_site(env, n_plants=3)
        bids = drive(env, shop.estimate(make_request()))
        assert len(bids) == 3


class TestRegistry:
    def test_publish_discover_bind(self):
        registry = ServiceRegistry()
        registry.publish("svc", "vmplant", binding="BINDING")
        assert registry.bind("svc") == "BINDING"
        assert len(registry.discover("vmplant")) == 1
        assert registry.discover("vmshop") == []

    def test_discover_with_requirements(self):
        registry = ServiceRegistry()
        registry.publish(
            "big", "vmplant", binding=1,
            description=ClassAd({"memory": 2048, "kind": "vmplant",
                                 "name": "big"}),
        )
        registry.publish(
            "small", "vmplant", binding=2,
            description=ClassAd({"memory": 512, "kind": "vmplant",
                                 "name": "small"}),
        )
        found = registry.discover(
            "vmplant", requirements="other.memory >= 1024"
        )
        assert [e.name for e in found] == ["big"]

    def test_unpublish(self):
        registry = ServiceRegistry()
        registry.publish("svc", "x", binding=None)
        registry.unpublish("svc")
        with pytest.raises(ShopError):
            registry.bind("svc")
        with pytest.raises(ShopError):
            registry.unpublish("svc")

    def test_shop_discovers_plants_from_registry(self):
        env = Environment()
        registry = ServiceRegistry()
        warehouse = VMWarehouse([make_image()])
        plant = VMPlant(
            env, "p0", warehouse, {"vmware": InstantLine(env)}
        )
        registry.publish("p0", "vmplant", plant)
        shop = VMShop(env, registry=registry)
        assert shop.discover_plants() == 1
        ad = drive(env, shop.create(make_request()))
        assert ad["plant"] == "p0"


class TestBroker:
    def make_broker_site(self, env):
        warehouse = VMWarehouse([make_image()])
        plants = [
            VMPlant(env, f"p{i}", warehouse, {"vmware": InstantLine(env)})
            for i in range(3)
        ]
        broker = VMBroker("rack0", plants[:2])
        broker.add_plant(plants[2])
        return broker, plants

    def test_estimate_is_best_of_fronted(self):
        env = Environment()
        broker, plants = self.make_broker_site(env)
        drive(env, plants[0].create(make_request(), "preload-1"))
        drive(env, plants[0].create(make_request(), "preload-2"))
        cost = broker.estimate(make_request())
        # Best plant is an empty one, not the preloaded p0.
        assert cost == plants[1].estimate(make_request())

    def test_create_routes_to_best_plant(self):
        env = Environment()
        broker, plants = self.make_broker_site(env)
        drive(env, plants[0].create(make_request(), "preload"))
        ad = drive(env, broker.create(make_request(), "vm-x"))
        assert ad["plant"] in ("p1", "p2")

    def test_broker_behind_shop(self):
        env = Environment()
        broker, plants = self.make_broker_site(env)
        shop = VMShop(env, rng=RngHub(5))
        shop.register_plant(broker)
        ad = drive(env, shop.create(make_request()))
        vmid = str(ad["vmid"])
        queried = drive(env, shop.query(vmid))
        assert queried["vmid"] == vmid
        drive(env, shop.destroy(vmid))

    def test_all_decline_raises(self):
        env = Environment()
        broker = VMBroker("empty", [])
        with pytest.raises(ShopError):
            drive(env, broker.create(make_request(), "vm-x"))

    def test_query_unknown_vm_raises(self):
        env = Environment()
        broker, _ = self.make_broker_site(env)
        with pytest.raises(ShopError):
            broker.query("ghost")
