"""Maintenance workflows: cordon + drain, nested brokers, scale."""

import pytest

from repro.core.errors import ShopError
from repro.plant.migration import MigrationManager
from repro.shop.broker import VMBroker
from repro.shop.vmshop import VMShop
from repro.sim.cluster import build_testbed
from repro.sim.rng import RngHub
from repro.workloads.requests import experiment_request, request_stream


class TestCordon:
    def test_cordoned_plant_declines_bids(self):
        bed = build_testbed(seed=91, n_plants=2)
        bed.plants[0].cordon()
        for _ in range(3):
            ad = bed.run(bed.shop.create(experiment_request(32)))
            assert ad["plant"] == "plant1"

    def test_all_cordoned_no_bids(self):
        bed = build_testbed(seed=91, n_plants=2)
        for plant in bed.plants:
            plant.cordon()
        with pytest.raises(ShopError, match="no plant bid"):
            bed.run(bed.shop.create(experiment_request(32)))

    def test_uncordon_resumes_bidding(self):
        bed = build_testbed(seed=91, n_plants=1)
        bed.plants[0].cordon()
        bed.plants[0].uncordon()
        ad = bed.run(bed.shop.create(experiment_request(32)))
        assert ad["plant"] == "plant0"

    def test_existing_vms_unaffected_by_cordon(self):
        bed = build_testbed(seed=91, n_plants=1)
        ad = bed.run(bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        bed.plants[0].cordon()
        queried = bed.run(bed.shop.query(vmid))
        assert queried["status"] == "running"
        bed.run(bed.shop.destroy(vmid))

    def test_full_maintenance_workflow(self):
        """Cordon → drain → host empty; service keeps flowing."""
        bed = build_testbed(seed=91, n_plants=3)
        manager = MigrationManager(bed.env, link=bed.internode)
        vmids = []
        for _ in range(6):
            ad = bed.run(bed.shop.create(experiment_request(32)))
            vmids.append(str(ad["vmid"]))
        victim = bed.plants[0]
        victim.cordon()
        others = [p for p in bed.plants if p is not victim]
        bed.run(manager.drain(victim, others, shop=bed.shop))
        assert victim.active_vm_count() == 0
        # New requests avoid the cordoned plant ...
        ad = bed.run(bed.shop.create(experiment_request(32)))
        assert ad["plant"] != victim.name
        # ... and every pre-maintenance VM is still reachable.
        for vmid in vmids:
            queried = bed.run(bed.shop.query(vmid))
            assert queried["status"] == "running"
            assert queried["plant"] != victim.name


class TestNestedBrokers:
    def test_broker_tree_routes_to_leaf_plants(self):
        bed = build_testbed(seed=91, n_plants=4)
        left = VMBroker("rack-left", bed.plants[:2])
        right = VMBroker("rack-right", bed.plants[2:])
        root = VMBroker("site", [left, right])
        shop = VMShop(bed.env, "shop2", rng=RngHub(7))
        shop.register_plant(root)
        seen = set()
        for _ in range(4):
            ad = bed.run(shop.create(experiment_request(32)))
            seen.add(str(ad["plant"]))
        # The tree reaches leaves in both racks.
        assert len(seen) >= 2
        assert all(name.startswith("plant") for name in seen)

    def test_nested_destroy_routes_through_tree(self):
        bed = build_testbed(seed=91, n_plants=4)
        root = VMBroker(
            "site",
            [
                VMBroker("rack-left", bed.plants[:2]),
                VMBroker("rack-right", bed.plants[2:]),
            ],
        )
        shop = VMShop(bed.env, "shop2", rng=RngHub(7))
        shop.register_plant(root)
        ad = bed.run(shop.create(experiment_request(32)))
        final = bed.run(shop.destroy(str(ad["vmid"])))
        assert final["status"] == "collected"


class TestScale:
    def test_large_site_handles_burst(self):
        """64 plants, 128 requests, 16-way concurrency — all complete."""
        from repro.sim.resources import Resource

        bed = build_testbed(seed=91, n_plants=64, nfs_replicas=4)
        gate = Resource(bed.env, capacity=16)
        done = []

        def one(request):
            with gate.request() as slot:
                yield slot
                ad = yield from bed.shop.create(request)
                done.append(str(ad["plant"]))

        def client():
            procs = [
                bed.env.process(one(r))
                for r in request_stream(32, 128)
            ]
            yield bed.env.all_of(procs)

        bed.run(client())
        assert len(done) == 128
        counts = [p.active_vm_count() for p in bed.plants]
        assert sum(counts) == 128
        # Concurrent bidding races on stale state (all 16 in-flight
        # creates see the same plant loads), so placement is only
        # approximately balanced — but never pathological.
        assert max(counts) <= 16
        assert sum(1 for c in counts if c > 0) >= 32
        for plant in bed.plants:
            plant.network_pool.check_isolation()
