"""Tests for the sharded parallel DES kernel.

Covers: the determinism contract (identical merged-trace fingerprints
at 1/2/4 shards and across repeats, for both the miniring and the
kernelbench scenario), exact ``until`` boundary semantics in every
shard mode, zero-lookahead rejection at both the plan and the
``BoundaryLink`` constructor, worker-crash propagation (Python
exception and hard process death), partition plumbing, and the
``build_testbed(sites=, shards=)`` entry point.
"""

import os

import pytest

from repro.sim.cluster import build_testbed
from repro.sim.kernel import Environment
from repro.sim.network import BoundaryLink
from repro.sim.shard import (
    LinkSpec,
    ShardedTestbed,
    ShardWorkerError,
    block_partition,
    endpoint_ids,
    get_scenario,
    validate_link_specs,
)
from repro.sim.shard.ring import (
    KIND_MSG,
    RECORD,
    LocalOutbox,
    RingOutbox,
    RingReader,
    SiteInbox,
)


def _miniring(sites=4, shards=1, collect="fingerprint", **params):
    plan = ShardedTestbed(
        seed=11, sites=sites, shards=shards, scenario="miniring"
    )
    return plan.run(params=params, collect=collect, deadline_s=60.0)


# ---------------------------------------------------------------------------
# Partitioning and plan validation
# ---------------------------------------------------------------------------


def test_block_partition_contiguous_and_balanced():
    assert block_partition(8, 1) == (0,) * 8
    assert block_partition(8, 4) == (0, 0, 1, 1, 2, 2, 3, 3)
    assert block_partition(5, 2) == (0, 0, 0, 1, 1)
    part = block_partition(13, 5)
    # Contiguous: shard indices never decrease along the site axis.
    assert list(part) == sorted(part)
    # Balanced: block sizes differ by at most one, no shard empty.
    sizes = [part.count(s) for s in range(5)]
    assert max(sizes) - min(sizes) <= 1 and min(sizes) >= 1


def test_block_partition_rejects_bad_shapes():
    with pytest.raises(ValueError):
        block_partition(0, 1)
    with pytest.raises(ValueError):
        block_partition(4, 0)
    with pytest.raises(ValueError):
        block_partition(4, 5)


def test_sharded_testbed_validates_partition():
    with pytest.raises(ValueError, match="entries for"):
        ShardedTestbed(sites=4, shards=2, partition=(0, 1))
    with pytest.raises(ValueError, match="outside"):
        ShardedTestbed(sites=4, shards=2, partition=(0, 0, 1, 3))
    plan = ShardedTestbed(sites=4, shards=2, partition=(0, 1, 0, 1))
    assert plan.shard_sites(0) == [0, 2]
    assert plan.shard_sites(1) == [1, 3]


def test_validate_link_specs_rejects_zero_lookahead():
    spec = LinkSpec(
        name="wan0",
        src=0,
        dst=1,
        endpoint="spill",
        bandwidth_mbps=10.0,
        latency_s=0.0,
    )
    with pytest.raises(ValueError, match="zero lookahead"):
        validate_link_specs([spec], sites=2)


def test_validate_link_specs_rejects_malformed_topologies():
    def spec(**kw):
        base = dict(
            name="l",
            src=0,
            dst=1,
            endpoint="e",
            bandwidth_mbps=10.0,
            latency_s=1.0,
        )
        base.update(kw)
        return LinkSpec(**base)

    with pytest.raises(ValueError, match="duplicate"):
        validate_link_specs([spec(), spec(dst=2)], sites=3)
    with pytest.raises(ValueError, match="outside"):
        validate_link_specs([spec(dst=5)], sites=2)
    with pytest.raises(ValueError, match="itself"):
        validate_link_specs([spec(dst=0)], sites=2)
    with pytest.raises(ValueError, match="bandwidth"):
        validate_link_specs([spec(bandwidth_mbps=0.0)], sites=2)


def test_boundary_link_ctor_rejects_zero_lookahead_and_self_loop():
    env = Environment()
    outbox = LocalOutbox({1: SiteInbox()})
    with pytest.raises(ValueError, match="zero lookahead"):
        BoundaryLink(env, "wan", 10.0, 0.0, 0, 1, 0, outbox)
    with pytest.raises(ValueError, match="itself"):
        BoundaryLink(env, "wan", 10.0, 2.0, 1, 1, 0, outbox)


def test_endpoint_ids_stable_per_destination():
    specs = [
        LinkSpec("a", 0, 1, "spill", 10.0, 1.0),
        LinkSpec("b", 2, 1, "ack", 10.0, 1.0),
        LinkSpec("c", 1, 0, "spill", 10.0, 1.0),
    ]
    ids = endpoint_ids(specs)
    # Sorted distinct endpoint names per destination, numbered 0..
    assert ids == {(1, "ack"): 0, (1, "spill"): 1, (0, "spill"): 0}


def test_unknown_scenario_and_unknown_param_rejected():
    with pytest.raises(KeyError, match="miniring"):
        get_scenario("no-such-scenario")
    with pytest.raises(ValueError, match="nope"):
        _miniring(nope=1)


# ---------------------------------------------------------------------------
# Determinism contract
# ---------------------------------------------------------------------------


def test_miniring_fingerprint_identical_across_shard_counts():
    fps = {}
    for shards in (1, 2, 4):
        run = _miniring(sites=4, shards=shards)
        fps[shards] = run.fingerprint()
        assert run.total_events > 100
    assert len(set(fps.values())) == 1, fps


def test_miniring_fingerprint_stable_across_repeats():
    assert (
        _miniring(sites=4, shards=2).fingerprint()
        == _miniring(sites=4, shards=2).fingerprint()
    )


def test_kernelbench_fingerprint_identical_across_shard_counts():
    fps = set()
    stats = []
    for shards in (1, 2, 4):
        plan = ShardedTestbed(seed=3, sites=4, shards=shards)
        run = plan.run(params={"requests": 10}, deadline_s=120.0)
        fps.add(run.fingerprint())
        stats.append(run.combined_stats())
    assert len(fps) == 1
    # The workload really provisioned VMs and spilled across sites.
    assert stats[0]["created"] == 40
    assert stats[0]["spills_recv"] > 0
    assert stats[0] == stats[1] == stats[2]


def test_custom_partition_changes_placement_not_trajectory():
    base = _miniring(sites=4, shards=2).fingerprint()
    plan = ShardedTestbed(
        seed=11,
        sites=4,
        shards=2,
        scenario="miniring",
        partition=(0, 0, 0, 1),
    )
    assert plan.run(deadline_s=60.0).fingerprint() == base


def test_merged_trace_is_time_ordered():
    run = _miniring(sites=3, shards=1, ticks=12)
    plan = ShardedTestbed(seed=11, sites=3, shards=3, scenario="miniring")
    traced = plan.run(
        params={"ticks": 12}, collect="trace", deadline_s=60.0
    )
    merged = traced.merged_trace()
    assert merged, "trace collection returned nothing"
    times = [event.time for _site, event in merged]
    assert times == sorted(times)
    # Trace collection must not perturb the trajectory fingerprint.
    assert traced.fingerprint() == run.fingerprint()


# ---------------------------------------------------------------------------
# ``until`` boundary semantics
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_until_leaves_every_site_clock_exactly_at_horizon(shards):
    plan = ShardedTestbed(
        seed=11, sites=4, shards=shards, scenario="miniring"
    )
    run = plan.run(
        params={"ticks": 40}, until=13.0, deadline_s=60.0
    )
    for site in run.site_results:
        assert site["now"] == 13.0
    # Ticks land on integers, so events AT t=13 must have run: with
    # tick_s=1.0 each site completes exactly 13 of its 40 ticks.
    assert run.combined_stats()["ticks_done"] == 13 * 4


def test_until_truncation_matches_full_run_prefix():
    full = _miniring(sites=2, shards=1, ticks=6, collect="trace")
    plan = ShardedTestbed(seed=11, sites=2, shards=2, scenario="miniring")
    cut = plan.run(
        params={"ticks": 40},
        until=6.0,
        collect="trace",
        deadline_s=60.0,
    )
    full_events = [
        (s, e.time, e.category) for s, e in full.merged_trace()
    ]
    cut_events = [(s, e.time, e.category) for s, e in cut.merged_trace()]
    # Same prefix of tick events up to and including the horizon.
    assert [e for e in cut_events if e[1] <= 6.0] == [
        e for e in full_events if e[1] <= 6.0
    ]


# ---------------------------------------------------------------------------
# Crash propagation
# ---------------------------------------------------------------------------


def test_worker_exception_propagates_as_shard_worker_error():
    with pytest.raises(ShardWorkerError, match="injected miniring crash"):
        _miniring(sites=4, shards=2, crash_site=2, crash_at=5.0)


def test_worker_hard_exit_propagates_as_shard_worker_error():
    with pytest.raises(ShardWorkerError):
        _miniring(sites=4, shards=2, hard_exit_site=0, hard_exit_at=5.0)


def test_single_shard_crash_surfaces_directly():
    # In-process mode has no worker to blame: the scenario error
    # surfaces as-is.
    with pytest.raises(RuntimeError, match="injected miniring crash"):
        _miniring(sites=4, shards=1, crash_site=1, crash_at=3.0)


# ---------------------------------------------------------------------------
# build_testbed integration
# ---------------------------------------------------------------------------


def test_build_testbed_returns_plan_for_sharded_runs():
    plan = build_testbed(seed=5, n_plants=4, sites=4, shards=2)
    assert isinstance(plan, ShardedTestbed)
    assert plan.sites == 4 and plan.shards == 2
    assert plan.params["plants"] == 4


def test_build_testbed_rejects_env_with_sharding():
    with pytest.raises(ValueError, match="env="):
        build_testbed(seed=5, env=Environment(), sites=2)


def test_single_site_single_shard_plan_runs():
    run = _miniring(sites=1, shards=1, ticks=5)
    assert run.combined_stats()["ticks_done"] == 5
    assert run.combined_stats()["pings_sent"] == 0  # no links, no peers


# ---------------------------------------------------------------------------
# Event-ring wire safety (promise stamping, full-pipe writes)
# ---------------------------------------------------------------------------


def test_ring_batch_promise_covers_records_after_it():
    # Pipe writes past PIPE_BUF are not atomic, so a reader can see
    # any prefix of a batch: no record's stamped promise may exceed
    # the deliver time of any record after it, or the reader would
    # ratchet past a still-in-flight delivery.
    rfd, wfd = os.pipe()
    try:
        out = RingOutbox({1: wfd})
        for seq, dt in enumerate([35.0, 11.0, 40.0]):
            out.pack(1, KIND_MSG, 0, 0, 0, seq, dt, ())
        out.flush(lambda dst: 51.0)
        data = os.read(rfd, 1 << 16)
        recs = [
            RECORD.unpack_from(data, off)
            for off in range(0, len(data), RECORD.size)
        ]
        delivers = [r[5] for r in recs]
        promises = [r[6] for r in recs]
        assert delivers == [35.0, 11.0, 40.0]
        assert promises == [11.0, 40.0, 51.0]
        for i, p in enumerate(promises):
            assert all(p <= d for d in delivers[i + 1 :])
    finally:
        os.close(rfd)
        os.close(wfd)


def test_ring_full_pipe_write_drains_instead_of_deadlocking():
    # ~140 KB of records, far beyond any default pipe capacity: the
    # write must invoke on_block (modelling the worker draining its
    # own in-rings) and complete without losing or tearing a record.
    rfd, wfd = os.pipe()
    try:
        reader = RingReader(0, rfd, 0.5)
        inboxes = {0: SiteInbox()}
        out = RingOutbox(
            {1: wfd}, on_block=lambda fd: reader.drain(inboxes)
        )
        n = 2000
        for i in range(n):
            out.pack(1, KIND_MSG, 1, 0, 0, i, 100.0 + i, (float(i),))
        final_promise = 100.0 + n + 0.5
        out.flush(lambda dst: final_promise)
        reader.drain(inboxes)
        assert reader.received == n
        assert len(inboxes[0]) == n
        assert reader.promise == final_promise
    finally:
        os.close(rfd)
        os.close(wfd)


def test_executed_events_counts_executed_not_scheduled():
    env = Environment()
    env.timeout(1.0)
    env.timeout(5.0)  # beyond the horizon: scheduled, never executed
    env.run(until=2.0)
    assert env.executed_events == 1
    assert env.now == 2.0
