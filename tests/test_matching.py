"""Unit tests for the Section 3.2 golden-image matching criterion."""

import pytest

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.matching import (
    hardware_test,
    match_image,
    partial_order_test,
    prefix_test,
    select_golden,
    signature_test,
    subset_test,
)
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage


def fig3_dag():
    """The Figure 3 workspace DAG: A→B→C→D→E→F, F→{G→H, I}."""
    dag = ConfigDAG()
    actions = {n: Action(n, command=f"do-{n}") for n in "ABCDEFGHI"}
    for action in actions.values():
        dag.add_action(action)
    for u, v in [
        ("A", "B"), ("B", "C"), ("C", "D"), ("D", "E"),
        ("E", "F"), ("F", "G"), ("G", "H"), ("F", "I"),
    ]:
        dag.add_edge(u, v)
    return dag, actions


def image(performed, mem=32, os="rh8", vm_type="vmware", image_id="img"):
    return GoldenImage(
        image_id=image_id,
        vm_type=vm_type,
        os=os,
        hardware=HardwareSpec(memory_mb=mem),
        performed=tuple(performed),
        memory_state_mb=float(mem),
    )


class TestThreeTests:
    def test_subset(self):
        dag, _ = fig3_dag()
        assert subset_test("ABC", dag)
        assert subset_test([], dag)
        assert not subset_test(["A", "Z"], dag)

    def test_prefix(self):
        dag, _ = fig3_dag()
        assert prefix_test("ABC", dag)
        assert prefix_test([], dag)
        assert not prefix_test(["B"], dag)  # A missing
        assert not prefix_test(["A", "C"], dag)  # B missing
        assert not prefix_test(["Z"], dag)

    def test_partial_order(self):
        dag, _ = fig3_dag()
        assert partial_order_test(list("ABC"), dag)
        assert partial_order_test(list("ABCDEFGIH"), dag)
        # G and I are unordered: either interleaving is fine.
        assert partial_order_test(list("ABCDEFIGH"), dag)
        assert not partial_order_test(["B", "A"], dag)
        assert not partial_order_test(["A", "A"], dag)  # duplicates
        assert not partial_order_test(["Z"], dag)

    def test_signature_conflict(self):
        dag, actions = fig3_dag()
        clean = [actions["A"]]
        conflicting = [Action("A", command="something-else")]
        assert signature_test(clean, dag)
        assert not signature_test(conflicting, dag)
        # Actions not in the DAG never conflict (subset test catches
        # them separately).
        assert signature_test([Action("Z", command="zzz")], dag)


class TestHardware:
    def test_memory_must_match_exactly(self):
        assert hardware_test(
            HardwareSpec(memory_mb=64), HardwareSpec(memory_mb=64)
        )
        assert not hardware_test(
            HardwareSpec(memory_mb=128), HardwareSpec(memory_mb=64)
        )

    def test_disk_must_cover_request(self):
        assert hardware_test(
            HardwareSpec(disk_gb=8.0), HardwareSpec(disk_gb=4.0)
        )
        assert not hardware_test(
            HardwareSpec(disk_gb=2.0), HardwareSpec(disk_gb=4.0)
        )

    def test_isa_must_match(self):
        assert not hardware_test(
            HardwareSpec(isa="sparc"), HardwareSpec(isa="x86")
        )


class TestMatchImage:
    def test_figure3_scenario(self):
        """The cached A-B-C image matches and leaves D..I residual."""
        dag, actions = fig3_dag()
        img = image([actions[n] for n in "ABC"])
        result = match_image(img, dag, HardwareSpec(memory_mb=32), "rh8")
        assert result.matches
        assert result.satisfied == ("A", "B", "C")
        assert list(result.residual) == ["D", "E", "F", "G", "H", "I"]
        assert result.depth == 3

    def test_blank_image_matches_everything(self):
        dag, _ = fig3_dag()
        result = match_image(
            image([]), dag, HardwareSpec(memory_mb=32), "rh8"
        )
        assert result.matches
        assert len(result.residual) == 9

    def test_reject_reasons(self):
        dag, actions = fig3_dag()
        hw = HardwareSpec(memory_mb=32)
        cases = {
            "os": match_image(image([]), dag, hw, "windows"),
            "vm-type": match_image(
                image([]), dag, hw, "rh8", vm_type="uml"
            ),
            "hardware": match_image(
                image([], mem=64), dag, hw, "rh8"
            ),
            "subset": match_image(
                image([Action("Z", command="z")]), dag, hw, "rh8"
            ),
            "prefix": match_image(
                image([actions["B"]]), dag, hw, "rh8"
            ),
            "signature-conflict": match_image(
                image([Action("A", command="evil")]), dag, hw, "rh8"
            ),
        }
        for reason, result in cases.items():
            assert not result.matches
            assert result.reason == reason

    def test_partial_order_violation_detected(self):
        dag, actions = fig3_dag()
        # Performed B before A: subset ok, prefix ok ({A,B} downward
        # closed), but the recorded order violates the DAG.
        img = image([actions["B"], actions["A"]])
        result = match_image(img, dag, HardwareSpec(memory_mb=32), "rh8")
        assert not result.matches
        assert result.reason == "partial-order"


class TestSelectGolden:
    def test_deepest_prefix_wins(self):
        dag, actions = fig3_dag()
        shallow = image([actions["A"]], image_id="shallow")
        deep = image(
            [actions[n] for n in "ABCDE"], image_id="deep"
        )
        best, result, all_results = select_golden(
            [shallow, deep], dag, HardwareSpec(memory_mb=32), "rh8"
        )
        assert best is deep
        assert result.depth == 5
        assert len(all_results) == 2

    def test_tie_broken_by_image_id(self):
        dag, actions = fig3_dag()
        a = image([actions["A"]], image_id="aaa")
        b = image([actions["A"]], image_id="bbb")
        best, _, _ = select_golden(
            [b, a], dag, HardwareSpec(memory_mb=32), "rh8"
        )
        assert best is a

    def test_no_match_returns_none(self):
        dag, _ = fig3_dag()
        best, result, all_results = select_golden(
            [image([], os="windows")],
            dag,
            HardwareSpec(memory_mb=32),
            "rh8",
        )
        assert best is None and result is None
        assert len(all_results) == 1

    def test_empty_warehouse(self):
        dag, _ = fig3_dag()
        best, result, all_results = select_golden(
            [], dag, HardwareSpec(memory_mb=32), "rh8"
        )
        assert best is None and all_results == []
