"""Query-engine call-site tests: memos, registry index, bid prefilter.

Covers the matchmaking fast paths layered on the compiled classad
engine: ``VMPlant.description_ad()`` / ``CreateRequest.to_classad()``
memoization with invalidation on mutation, the service registry's
attribute-index pre-filter (equivalence against the exhaustive scan on
randomized registries), and the estimate-path equality fast-reject.
"""

import random

from repro.core.classad import ClassAd, Expression
from repro.core.dag import ConfigDAG
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.plant.vmplant import VMPlant
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.shop.protocol import service_request_to_xml
from repro.shop.registry import ServiceRegistry
from repro.sim.kernel import Environment

from tests.helpers import InstantLine, drive

OS = "testos"


def base_action():
    from repro.core.actions import Action

    return Action("install-os", scope="host", command="install")


def make_image(image_id="img", mem=32):
    return GoldenImage(
        image_id=image_id, vm_type="vmware", os=OS,
        hardware=HardwareSpec(memory_mb=mem),
        performed=(base_action(),), memory_state_mb=float(mem),
    )


def make_request(domain="d1", mem=32, requirements=None):
    dag = ConfigDAG.from_sequence([base_action()])
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(os=OS, dag=dag),
        network=NetworkSpec(domain=domain),
        client_id="tester",
        vm_type="vmware",
        requirements=requirements,
    )


def make_plant(env, name="p0"):
    return VMPlant(
        env, name, VMWarehouse([make_image()]),
        {"vmware": InstantLine(env)},
    )


class TestDescriptionAdMemo:
    def test_same_object_between_mutations(self):
        env = Environment()
        plant = make_plant(env)
        assert plant.description_ad() is plant.description_ad()

    def test_invalidates_on_vm_creation(self):
        env = Environment()
        plant = make_plant(env)
        before = plant.description_ad()
        assert before["active_vms"] == 0
        drive(env, plant.create(make_request(), "vm1"))
        after = plant.description_ad()
        assert after is not before
        assert after["active_vms"] == 1
        assert after["committed_mb"] == 32
        assert after["networks_free"] == before["networks_free"] - 1
        # The old snapshot is untouched (registry copies stay valid).
        assert before["active_vms"] == 0

    def test_invalidates_on_destroy_and_monitor_update(self):
        env = Environment()
        plant = make_plant(env)
        drive(env, plant.create(make_request(), "vm1"))
        created = plant.description_ad()
        plant.infosys.update("vm1", {"load": 0.5})
        assert plant.description_ad() is not created
        drive(env, plant.destroy("vm1"))
        assert plant.description_ad()["active_vms"] == 0


class TestRequestMemos:
    def test_to_classad_memoized(self):
        request = make_request(requirements="other.active_vms < 4")
        assert request.to_classad() is request.to_classad()
        ad = request.to_classad()
        assert ad["os"] == OS
        assert isinstance(ad.lookup("requirements"), Expression)

    def test_replace_yields_fresh_memo(self):
        import dataclasses

        request = make_request()
        first = request.to_classad()
        other = dataclasses.replace(request, client_id="else")
        assert other.to_classad() is not first
        assert other.to_classad()["client"] == "else"

    def test_xml_encoding_memoized_per_service(self):
        request = make_request()
        create_xml = service_request_to_xml(request, service="create")
        estimate_xml = service_request_to_xml(request, service="estimate")
        assert service_request_to_xml(request, "create") is create_xml
        assert service_request_to_xml(request, "estimate") is estimate_xml
        assert 'service="estimate"' in estimate_xml


def _random_description(rng, name):
    ad = ClassAd({"name": name, "kind": "vmplant"})
    if rng.random() < 0.9:
        ad["os"] = rng.choice(["linux", "bsd", "Solaris"])
    if rng.random() < 0.8:
        ad["vm_type"] = rng.choice(["vmware", "uml"])
    ad["active_vms"] = rng.randrange(0, 10)
    ad["networks_free"] = rng.randrange(0, 5)
    if rng.random() < 0.1:
        ad.set_expression("os", '"li" + "nux"')
    return ad


_QUERIES = [
    'other.os == "linux"',
    'os == "LINUX" && other.vm_type == "uml"',
    'other.vm_type == "vmware" && other.networks_free > 0',
    'other.kind == "vmplant" && other.active_vms < 5',
    'name == "svc-3"',
    'other.os == "bsd" || other.os == "linux"',  # no constraints
    "other.active_vms >= 0",
    'other.os == "plan9"',  # matches nothing
]


class TestRegistryIndex:
    def test_prefilter_equivalent_to_full_scan(self):
        rng = random.Random(42)
        for trial in range(20):
            registry = ServiceRegistry()
            for i in range(rng.randrange(3, 25)):
                name = f"svc-{i}"
                registry.publish(
                    name, "vmplant", object(),
                    description=_random_description(rng, name),
                )
            for query in _QUERIES:
                fast = registry.discover("vmplant", query)
                slow = registry.discover(
                    "vmplant", query, prefilter=False
                )
                assert [e.name for e in fast] == [
                    e.name for e in slow
                ], f"trial={trial} query={query!r}"

    def test_accepts_precompiled_expression(self):
        registry = ServiceRegistry()
        registry.publish(
            "a", "vmplant", object(),
            description=ClassAd(
                {"name": "a", "kind": "vmplant", "os": "linux"}
            ),
        )
        expr = Expression('other.os == "linux"')
        assert [e.name for e in registry.discover("vmplant", expr)] == ["a"]

    def test_index_tracks_republish_and_unpublish(self):
        registry = ServiceRegistry()
        query = 'other.os == "linux"'
        registry.publish(
            "a", "vmplant", object(),
            description=ClassAd(
                {"name": "a", "kind": "vmplant", "os": "linux"}
            ),
        )
        assert len(registry.discover("vmplant", query)) == 1
        # Republish with a different os: old bucket entry must go.
        registry.publish(
            "a", "vmplant", object(),
            description=ClassAd(
                {"name": "a", "kind": "vmplant", "os": "bsd"}
            ),
        )
        assert registry.discover("vmplant", query) == []
        assert len(registry.discover("vmplant", 'other.os == "bsd"')) == 1
        registry.unpublish("a")
        assert registry.discover("vmplant", 'other.os == "bsd"') == []
        assert len(registry) == 0

    def test_dynamic_descriptions_always_evaluated(self):
        registry = ServiceRegistry()
        ad = ClassAd({"name": "dyn", "kind": "vmplant"})
        ad.set_expression("os", '"li" + "nux"')
        registry.publish("dyn", "vmplant", object(), description=ad)
        found = registry.discover("vmplant", 'other.os == "linux"')
        assert [e.name for e in found] == ["dyn"]

    def test_missing_attribute_pruned(self):
        registry = ServiceRegistry()
        registry.publish(
            "bare", "vmplant", object(),
            description=ClassAd({"name": "bare", "kind": "vmplant"}),
        )
        # os missing → `other.os == "linux"` is UNDEFINED → no match,
        # with or without the index.
        assert registry.discover("vmplant", 'other.os == "linux"') == []
        assert (
            registry.discover(
                "vmplant", 'other.os == "linux"', prefilter=False
            )
            == []
        )


class TestEstimatePrefilter:
    def test_equality_reject_declines_bid(self):
        env = Environment()
        plant = make_plant(env)
        accept = make_request(requirements='other.kind == "vmplant"')
        reject = make_request(requirements='other.kind == "warehouse"')
        assert plant.estimate(accept) is not None
        assert plant.estimate(reject) is None

    def test_non_equality_requirements_still_evaluated(self):
        env = Environment()
        plant = make_plant(env)
        ok = make_request(requirements="other.networks_free >= 1")
        no = make_request(requirements="other.networks_free >= 99")
        assert plant.estimate(ok) is not None
        assert plant.estimate(no) is None

    def test_estimate_tracks_plant_state(self):
        env = Environment()
        plant = make_plant(env)
        picky = make_request(requirements="other.active_vms == 0")
        assert plant.estimate(picky) is not None
        drive(env, plant.create(make_request(), "vm1"))
        assert plant.estimate(picky) is None
