"""Tests for SBUML cloning, the concurrency experiment and the CLI."""

import pytest

from repro.experiments.concurrency import run_concurrency
from repro.experiments.migration_exp import run_migration
from repro.experiments.uml import run_sbuml
from repro.workloads.requests import experiment_request, golden_image


class TestSBUML:
    def test_checkpointed_image_carries_memory_state(self):
        image = golden_image(64, vm_type="uml", checkpointed=True)
        assert image.memory_state_mb == 64.0
        assert image.image_id.endswith("-sbuml")
        plain = golden_image(64, vm_type="uml")
        assert plain.memory_state_mb == 0.0

    def test_vmware_defaults_to_checkpointed(self):
        assert golden_image(64).memory_state_mb == 64.0
        cold = golden_image(64, checkpointed=False)
        assert cold.memory_state_mb == 0.0

    def test_sbuml_resume_much_faster_than_boot(self):
        result = run_sbuml(seed=31, count=6)
        assert result.speedup > 3.0
        assert result.resume.mean < 25
        assert "SBUML" in result.render()

    def test_sbuml_resume_still_slower_for_bigger_memory(self):
        small = run_sbuml(seed=31, count=4, memory_mb=32)
        big = run_sbuml(seed=31, count=4, memory_mb=256)
        assert big.resume.mean > small.resume.mean


class TestConcurrency:
    @pytest.fixture(scope="class")
    def result(self):
        return run_concurrency(
            seed=31, memory_mb=64, requests=16, levels=(1, 4)
        )

    def test_contention_slows_individual_clones(self, result):
        assert result.cloning[4].mean > result.cloning[1].mean

    def test_concurrency_shrinks_makespan(self, result):
        assert result.makespan[4] < result.makespan[1]

    def test_all_requests_complete(self, result):
        for level in (1, 4):
            assert result.latency[level].count == 16

    def test_render(self, result):
        text = result.render()
        assert "in-flight" in text and "makespan" in text


class TestMigrationExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return run_migration(seed=31)

    def test_latency_grows_with_memory(self, result):
        lat = result.latency_by_memory
        assert lat[32] < lat[64] < lat[256]

    def test_rebalancing_relieves_pressure(self, result):
        assert result.pressure_before > 1.5
        assert result.pressure_after == pytest.approx(1.0)
        assert result.clone_after < result.clone_before

    def test_render(self, result):
        assert "rebalancing" in result.render()


class TestCLI:
    def run_cli(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        out = capsys.readouterr().out
        return code, out

    def test_demo(self, capsys):
        code, out = self.run_cli(capsys, "demo", "--seed", "7")
        assert code == 0
        assert "created vmshop-vm-00001" in out
        assert "destroyed" in out

    def test_costfn(self, capsys):
        code, out = self.run_cli(capsys, "costfn", "--seed", "7")
        assert code == 0
        assert "crossover" in out

    def test_uml_sbuml_flag(self, capsys):
        code, out = self.run_cli(
            capsys, "uml", "--sbuml", "--seed", "7"
        )
        assert code == 0
        assert "SBUML" in out

    def test_unknown_command_rejected(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["teleport"])

    def test_seed_changes_demo_output(self, capsys):
        _, out_a = self.run_cli(capsys, "demo", "--seed", "1")
        _, out_b = self.run_cli(capsys, "demo", "--seed", "2")
        assert out_a != out_b

    def test_module_entry_point_exists(self):
        import repro.__main__  # noqa: F401 - import must not execute main


class TestResilience:
    def test_retry_policy_recovers_failures(self):
        from repro.experiments.resilience import run_resilience

        result = run_resilience(seed=51, requests=12, failure_prob=0.3)
        surface_ok, _ = result.outcomes["surface"]
        retry_ok, _ = result.outcomes["retry"]
        assert retry_ok >= surface_ok
        assert retry_ok >= 10
        assert result.recovered > 0
        assert "resilience" in result.render()

    def test_zero_failure_rate_all_succeed(self):
        from repro.experiments.resilience import run_resilience

        result = run_resilience(seed=51, requests=6, failure_prob=0.0)
        for ok, _lat in result.outcomes.values():
            assert ok == 6


class TestLeases:
    def make(self):
        from repro.plant.reaper import LeaseReaper
        from repro.sim.cluster import build_testbed

        bed = build_testbed(seed=71, n_plants=1)
        reaper = LeaseReaper(bed.env, bed.plants[0], period=5.0)
        return bed, reaper

    def leased_request(self, lease_s):
        from dataclasses import replace

        return replace(experiment_request(32), lease_s=lease_s)

    def test_lease_stamped_in_classad(self):
        bed, _ = self.make()
        ad = bed.run(bed.shop.create(self.leased_request(100.0)))
        assert ad["lease_expires_at"] > bed.env.now

    def test_reaper_collects_expired_vm(self):
        bed, reaper = self.make()
        reaper.start()
        bed.run(bed.shop.create(self.leased_request(30.0)))
        bed.env.run(until=bed.env.now + 60.0)
        assert bed.plants[0].active_vm_count() == 0
        assert len(reaper.reaped) == 1

    def test_unleased_vm_never_reaped(self):
        bed, reaper = self.make()
        reaper.start()
        bed.run(bed.shop.create(experiment_request(32)))
        bed.env.run(until=bed.env.now + 200.0)
        assert bed.plants[0].active_vm_count() == 1
        assert reaper.reaped == []

    def test_lease_not_yet_expired_survives_sweep(self):
        bed, reaper = self.make()
        bed.run(bed.shop.create(self.leased_request(10_000.0)))
        reaped = bed.run(reaper.sweep())
        assert reaped == 0
        assert bed.plants[0].active_vm_count() == 1

    def test_reaper_stop(self):
        bed, reaper = self.make()
        reaper.start()
        bed.run(bed.shop.create(self.leased_request(1000.0)))
        reaper.stop()
        bed.env.run(until=bed.env.now + 2000.0)
        # Nothing sweeps after stop.
        assert bed.plants[0].active_vm_count() == 1

    def test_lease_survives_xml_roundtrip(self):
        from dataclasses import replace

        from repro.core.dagxml import request_from_xml, request_to_xml

        request = replace(experiment_request(32), lease_s=42.5)
        back = request_from_xml(request_to_xml(request))
        assert back.lease_s == 42.5


class TestWarehouseReplicas:
    def test_replicas_relieve_contention(self):
        from repro.experiments.concurrency import run_warehouse_replicas

        result = run_warehouse_replicas(
            seed=71, requests=12, level=6, replica_counts=(1, 2)
        )
        assert result.cloning[2].mean < result.cloning[1].mean
        assert "replicated" in result.render()

    def test_replicated_storage_balances_flows(self):
        from repro.sim.kernel import Environment
        from repro.sim.host import PhysicalHost
        from repro.sim.rng import RngHub
        from repro.sim.storage import (
            NFSServer,
            ReplicatedWarehouseStorage,
        )

        env = Environment()
        replicas = [
            NFSServer(env, f"nfs{i}", rng=RngHub(1)) for i in range(2)
        ]
        storage = ReplicatedWarehouseStorage(replicas)
        hosts = [PhysicalHost(env, f"h{i}") for i in range(4)]

        def copy(host):
            yield from storage.copy_to_host(50.0, host)

        for host in hosts:
            env.process(copy(host))
        env.run()
        # Both replicas carried traffic.
        assert all(r.mb_served > 0 for r in replicas)
        assert storage.mb_served == 200.0

    def test_empty_replica_list_rejected(self):
        import pytest

        from repro.sim.storage import ReplicatedWarehouseStorage

        with pytest.raises(ValueError):
            ReplicatedWarehouseStorage([])

    def test_single_replica_matches_plain_nfs_shape(self):
        from repro.sim.cluster import build_testbed

        bed = build_testbed(seed=71, n_plants=1, nfs_replicas=1)
        ad = bed.run(bed.shop.create(experiment_request(32)))
        assert ad["status"] == "running"
