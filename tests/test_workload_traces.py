"""Trace-driven workloads: determinism, replay, and megaload.

Pins the replay contract of :mod:`repro.workloads.traces` and its
integration in the ``megaload`` shard scenario:

* the same ``(seed, spec)`` regenerates byte-identical JSONL and the
  identical streaming signature;
* per-tenant RNG streams are independent — adding a tenant never
  perturbs another tenant's arrivals;
* the merged stream is lazy and totally ordered by
  ``(time, tenant, seq)``;
* a megaload run replayed from recorded JSONL consumes bit-identical
  streams (per-site consumed-trace signatures match the recorded
  ones) and produces the same merged-trace fingerprint at 1 and 2
  shards;
* merged per-site summary sketches are bit-identical across shard
  counts, and bounded tracers surface their dropped count.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.sim.rng import RngHub
from repro.sim.shard import ShardedTestbed
from repro.sim.shard.scenarios import site_seed
from repro.workloads.traces import (
    Arrival,
    TenantSpec,
    TraceSpec,
    merge_arrivals,
    read_jsonl,
    trace_signature,
    write_jsonl,
)

SPEC = TraceSpec(
    tenants=(
        TenantSpec(
            name="interactive",
            process="diurnal",
            count=40,
            deadline_s=120.0,
            params={
                "rate_per_s": 0.5,
                "amplitude": 0.6,
                "period_s": 600.0,
            },
        ),
        TenantSpec(
            name="batch",
            process="campaign",
            count=30,
            params={"gap_s": 60.0, "size": 8.0, "spacing_s": 1.0},
        ),
        TenantSpec(
            name="crowd",
            process="flash",
            count=10,
            params={"at_s": 45.0, "duration_s": 15.0},
        ),
    )
)


class TestDeterministicGeneration:
    def test_same_seed_same_stream_and_signature(self, tmp_path):
        paths = [str(tmp_path / f"t{i}.jsonl") for i in (0, 1)]
        sigs = [
            write_jsonl(SPEC.arrivals(RngHub(77)), p) for p in paths
        ]
        assert sigs[0] == sigs[1]
        blobs = [open(p, "rb").read() for p in paths]
        assert blobs[0] == blobs[1]
        # Regenerating (no file) hashes to the same signature.
        assert trace_signature(SPEC.arrivals(RngHub(77))) == sigs[0]
        # A different seed gives a different trace.
        assert trace_signature(SPEC.arrivals(RngHub(78))) != sigs[0]

    def test_tenant_streams_are_independent(self):
        solo = [
            a
            for a in SPEC.arrivals(RngHub(5))
            if a.tenant == "interactive"
        ]
        bigger = TraceSpec(
            tenants=SPEC.tenants
            + (
                TenantSpec(
                    name="extra",
                    process="poisson",
                    count=25,
                    params={"rate_per_s": 2.0},
                ),
            )
        )
        with_extra = [
            a
            for a in bigger.arrivals(RngHub(5))
            if a.tenant == "interactive"
        ]
        assert solo == with_extra

    def test_merged_stream_is_totally_ordered(self):
        keys = [a.sort_key() for a in SPEC.arrivals(RngHub(9))]
        assert keys == sorted(keys)
        assert len(keys) == SPEC.total_requests
        assert len(set(keys)) == len(keys)

    def test_merge_is_lazy(self):
        # A tenant with an absurd count would hang if materialized.
        huge = TraceSpec(
            tenants=(
                TenantSpec(
                    name="firehose",
                    process="poisson",
                    count=10**9,
                    params={"rate_per_s": 100.0},
                ),
            )
        )
        first = list(
            itertools.islice(huge.arrivals(RngHub(1)), 100)
        )
        assert len(first) == 100
        assert first[0].seq == 0

    def test_campaign_stream_non_decreasing(self):
        spec = TenantSpec(
            name="b",
            process="campaign",
            count=100,
            params={"gap_s": 10.0, "size": 16.0, "spacing_s": 2.0},
        )
        times = [a.time for a in spec.arrivals(RngHub(3))]
        assert times == sorted(times)
        assert len(times) == 100

    def test_spec_round_trip_and_validation(self):
        again = TraceSpec.from_records(
            json.loads(json.dumps(SPEC.to_records()))
        )
        assert again == SPEC
        assert again.signature() == SPEC.signature()
        with pytest.raises(ValueError, match="unknown arrival process"):
            TenantSpec(name="x", process="lorenz", count=1)
        with pytest.raises(ValueError, match="duplicate tenant"):
            TraceSpec(tenants=(SPEC.tenants[0], SPEC.tenants[0]))
        bad = TenantSpec(
            name="x",
            process="poisson",
            count=1,
            params={"warp": 9.0},
        )
        with pytest.raises(ValueError, match="unknown poisson params"):
            next(bad.arrivals(RngHub(1)))

    def test_arrival_record_round_trip(self):
        a = Arrival(
            time=1.5,
            tenant="t",
            kind="poisson",
            seq=3,
            memory_mb=64,
            deadline_s=30.0,
        )
        assert Arrival.from_record(a.to_record()) == a
        nodeadline = Arrival(
            time=2.0, tenant="t", kind="flash", seq=0, memory_mb=32
        )
        record = nodeadline.to_record()
        assert "deadline_s" not in record
        assert Arrival.from_record(record) == nodeadline

    def test_jsonl_replay_identical(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sig = write_jsonl(SPEC.arrivals(RngHub(13)), path)
        replayed = list(read_jsonl(path))
        assert replayed == list(SPEC.arrivals(RngHub(13)))
        assert trace_signature(iter(replayed)) == sig

    def test_merge_arrivals_orders_ties_by_tenant(self):
        a = Arrival(
            time=5.0, tenant="a", kind="flash", seq=0, memory_mb=32
        )
        b = Arrival(
            time=5.0, tenant="b", kind="flash", seq=0, memory_mb=32
        )
        assert list(merge_arrivals([iter([b]), iter([a])])) == [a, b]


MEGA_PRM = {"requests": 30}


class TestMegaLoadScenario:
    def _run(self, shards, prm=MEGA_PRM, collect="fingerprint", **kw):
        bed = ShardedTestbed(
            seed=2004, sites=2, shards=shards, scenario="megaload"
        )
        return bed.run(params=dict(prm), collect=collect, **kw)

    def test_fingerprint_and_sketch_identical_across_shards(self):
        from repro.workloads.megaload import merge_site_summaries

        runs = {s: self._run(s) for s in (1, 2)}
        fps = {s: r.fingerprint() for s, r in runs.items()}
        assert fps[1] == fps[2]
        sigs = {
            s: merge_site_summaries(
                r.site_results,
                group_of=lambda site, r=r: r.partition[site],
            ).state_signature()
            for s, r in runs.items()
        }
        assert sigs[1] == sigs[2]

    def test_replay_from_recorded_traces(self, tmp_path):
        from repro.workloads.megaload import record_site_traces

        out = str(tmp_path / "traces")
        recorded = record_site_traces(2004, 2, MEGA_PRM, out)
        assert sorted(recorded) == [0, 1]
        live = self._run(1)
        prm = dict(MEGA_PRM)
        prm["trace_dir"] = out
        replay = self._run(1, prm=prm)
        # The consumed-trace signature each site ships must equal the
        # recorded file's signature, generated or replayed.
        for run in (live, replay):
            for r in run.site_results:
                assert (
                    r["stats"]["trace_signature"]
                    == recorded[r["site"]]
                )
        assert replay.fingerprint() == live.fingerprint()
        # ...and at 2 shards the replayed trace still matches.
        replay2 = self._run(2, prm=prm)
        assert replay2.fingerprint() == live.fingerprint()

    def test_site_streams_differ_by_site_seed(self):
        run = self._run(1)
        sigs = {
            r["site"]: r["stats"]["trace_signature"]
            for r in run.site_results
        }
        assert sigs[0] != sigs[1]
        assert site_seed(2004, 0) != site_seed(2004, 1)

    def test_bounded_tracer_surfaces_drops(self):
        full = self._run(1)
        assert full.trace_dropped == 0
        bounded = self._run(1, trace_capacity=10)
        assert bounded.trace_dropped > 0
        # Same capacity on both sides: fingerprints still agree.
        bounded2 = self._run(2, trace_capacity=10)
        assert bounded.fingerprint() == bounded2.fingerprint()

    def test_collect_counters_consistent(self):
        run = self._run(1, collect=None)
        stats = run.combined_stats()
        assert stats["arrivals"] == 2 * MEGA_PRM["requests"]
        assert stats["ok"] + stats["failed"] == stats["arrivals"]
        # Non-numeric fields ride per-site, not in the combined sum.
        assert "trace_signature" not in stats
        assert "summary_state" not in stats


class TestMegaLoadExperiment:
    def test_run_megaload_smoke(self):
        from repro.experiments.megaload import run_megaload

        result = run_megaload(
            seed=2004,
            sites=2,
            shard_counts=(1, 2),
            requests_per_site=25,
            determinism_requests=15,
            trace_capacity=5_000,
        )
        assert result.deterministic
        assert result.sketch_equal
        assert len(result.points) == 2
        for p in result.points:
            assert p.ok > 0
            assert p.peak_rss_mb > 0
            assert p.p50_latency_s <= p.p95_latency_s
        assert result.tenant_rows
        record = result.to_record()
        assert record["deterministic"] is True
        text = result.render()
        assert "bit-identical" in text
        assert "identical at shard counts" in text
