"""Unit tests for the configuration DAG."""

import pytest

from repro.core.actions import Action
from repro.core.dag import FINISH, START, ConfigDAG
from repro.core.errors import DAGError


def chain(*names):
    return ConfigDAG.from_sequence(Action(n) for n in names)


def diamond():
    """a → {b, c} → d."""
    dag = ConfigDAG()
    for n in "abcd":
        dag.add_action(Action(n))
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return dag


class TestConstruction:
    def test_duplicate_action_rejected(self):
        dag = ConfigDAG().add_action(Action("a"))
        with pytest.raises(DAGError):
            dag.add_action(Action("a"))

    def test_reserved_names_rejected(self):
        for name in (START, FINISH):
            with pytest.raises(DAGError):
                ConfigDAG().add_action(Action(name))

    def test_edge_to_unknown_node_rejected(self):
        dag = ConfigDAG().add_action(Action("a"))
        with pytest.raises(DAGError):
            dag.add_edge("a", "ghost")

    def test_self_edge_rejected(self):
        dag = ConfigDAG().add_action(Action("a"))
        with pytest.raises(DAGError):
            dag.add_edge("a", "a")

    def test_cycle_rejected_at_add_edge(self):
        dag = chain("a", "b", "c")
        with pytest.raises(DAGError, match="cycle"):
            dag.add_edge("c", "a")

    def test_duplicate_edge_idempotent(self):
        dag = chain("a", "b")
        dag.add_edge("a", "b")
        assert dag.edges() == [("a", "b")]

    def test_from_sequence_builds_chain(self):
        dag = chain("x", "y", "z")
        assert dag.edges() == [("x", "y"), ("y", "z")]

    def test_len_contains_iter(self):
        dag = chain("a", "b")
        assert len(dag) == 2
        assert "a" in dag and "ghost" not in dag
        assert list(dag) == ["a", "b"]

    def test_action_lookup_unknown_raises(self):
        with pytest.raises(DAGError):
            ConfigDAG().action("missing")


class TestOrder:
    def test_topological_sort_respects_edges(self):
        dag = diamond()
        order = dag.topological_sort()
        for u, v in dag.edges():
            assert order.index(u) < order.index(v)

    def test_topological_sort_lexicographic_ties(self):
        dag = ConfigDAG()
        for n in ("zeta", "alpha", "mid"):
            dag.add_action(Action(n))
        assert dag.topological_sort() == ["alpha", "mid", "zeta"]

    def test_ancestors_descendants(self):
        dag = diamond()
        assert dag.ancestors("d") == {"a", "b", "c"}
        assert dag.descendants("a") == {"b", "c", "d"}
        assert dag.ancestors("a") == set()

    def test_is_before(self):
        dag = diamond()
        assert dag.is_before("a", "d")
        assert not dag.is_before("b", "c")
        assert not dag.is_before("d", "a")

    def test_sources_sinks(self):
        dag = diamond()
        assert dag.sources() == ["a"]
        assert dag.sinks() == ["d"]

    def test_guest_host_partition(self):
        dag = ConfigDAG()
        dag.add_action(Action("h", scope="host"))
        dag.add_action(Action("g", scope="guest"))
        assert dag.host_actions() == ["h"]
        assert dag.guest_actions() == ["g"]


class TestPrefixMachinery:
    def test_prefix_set_detection(self):
        dag = diamond()
        assert dag.is_prefix_set([])
        assert dag.is_prefix_set(["a"])
        assert dag.is_prefix_set(["a", "b"])
        assert dag.is_prefix_set(["a", "b", "c"])
        assert not dag.is_prefix_set(["b"])  # missing prerequisite
        assert not dag.is_prefix_set(["a", "d"])
        assert not dag.is_prefix_set(["a", "ghost"])

    def test_residual_after_orders_topologically(self):
        dag = diamond()
        assert dag.residual_after(["a"]) == ["b", "c", "d"]
        assert dag.residual_after(["a", "c"]) == ["b", "d"]
        assert dag.residual_after(["a", "b", "c", "d"]) == []

    def test_residual_after_non_prefix_raises(self):
        with pytest.raises(DAGError):
            diamond().residual_after(["b"])

    def test_prefixes_enumeration_diamond(self):
        prefixes = set(diamond().prefixes())
        expected = {
            frozenset(),
            frozenset("a"),
            frozenset("ab"),
            frozenset("ac"),
            frozenset("abc"),
            frozenset("abcd"),
        }
        assert prefixes == expected

    def test_every_enumerated_prefix_is_valid(self):
        dag = diamond()
        for prefix in dag.prefixes():
            assert dag.is_prefix_set(prefix)

    def test_subdag_induces_edges_and_handlers(self):
        dag = diamond()
        handler = chain("fixup")
        dag.attach_handler("b", handler)
        sub = dag.subdag(["a", "b"])
        assert set(sub.actions) == {"a", "b"}
        assert sub.edges() == [("a", "b")]
        assert sub.handler_for("b") == handler


class TestHandlers:
    def test_attach_handler_to_unknown_action_rejected(self):
        dag = chain("a")
        with pytest.raises(DAGError):
            dag.attach_handler("ghost", chain("h"))

    def test_handler_validated_on_attach(self):
        dag = chain("a")
        handler = chain("h1", "h2")
        dag.attach_handler("a", handler)
        assert dag.handler_for("a") is handler
        assert dag.handler_for("ghost") is None if "ghost" in dag else True

    def test_validate_recurses_into_handlers(self):
        dag = chain("a")
        dag.attach_handler("a", chain("h"))
        dag.validate()  # must not raise


class TestEquality:
    def test_structural_equality_ignores_insertion_order(self):
        d1 = ConfigDAG()
        d1.add_action(Action("a")).add_action(Action("b"))
        d1.add_edge("a", "b")
        d2 = ConfigDAG()
        d2.add_action(Action("b")).add_action(Action("a"))
        d2.add_edge("a", "b")
        assert d1 == d2
        assert hash(d1) == hash(d2)

    def test_content_difference_breaks_equality(self):
        d1 = ConfigDAG().add_action(Action("a", command="x"))
        d2 = ConfigDAG().add_action(Action("a", command="y"))
        assert d1 != d2

    def test_edge_difference_breaks_equality(self):
        assert chain("a", "b") != ConfigDAG().add_action(
            Action("a")
        ).add_action(Action("b"))


class TestDot:
    def test_dot_renders_all_nodes_and_edges(self):
        dag = diamond()
        dot = dag.to_dot()
        for node in "abcd":
            assert f'"{node}"' in dot
        assert '"a" -> "b"' in dot
        assert '"__start__" -> "a"' in dot
        assert '"d" -> "__finish__"' in dot

    def test_dot_marks_scopes_and_handlers(self):
        dag = ConfigDAG()
        dag.add_action(Action("h", scope="host"))
        dag.add_action(Action("g"))
        dag.attach_handler("g", chain("fix"))
        dot = dag.to_dot()
        assert '"h" [label="h", shape=box];' in dot
        assert "dashed" in dot

    def test_dot_empty_dag(self):
        dot = ConfigDAG().to_dot()
        assert '"__start__" -> "__finish__"' in dot
