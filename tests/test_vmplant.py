"""Unit tests for the VMPlant daemon (create/query/destroy/extend)."""

import pytest

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.errors import PlantError, VNetError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.plant.vmplant import VMPlant
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.sim.kernel import Environment
from repro.vnet.hostonly import HostOnlyNetworkPool
from repro.vnet.vnetd import VirtualNetworkService

from tests.helpers import InstantLine, drive

OS = "testos"


def base_action():
    return Action("install-os", scope="host", command="install")


def make_image(image_id="img", mem=32):
    return GoldenImage(
        image_id=image_id, vm_type="vmware", os=OS,
        hardware=HardwareSpec(memory_mb=mem),
        performed=(base_action(),), memory_state_mb=float(mem),
    )


def make_request(extra=(), domain="d1", vnet=False, mem=32):
    dag = ConfigDAG.from_sequence([base_action(), *extra])
    network = NetworkSpec(
        domain=domain,
        proxy_host="proxy.d1" if vnet else None,
        proxy_port=4000 if vnet else None,
    )
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(os=OS, dag=dag),
        network=network,
        client_id="tester",
        vm_type="vmware",
    )


def make_plant(env, line=None, **kwargs):
    line = line or InstantLine(env)
    return VMPlant(
        env, "p0", VMWarehouse([make_image()]), {"vmware": line}, **kwargs
    )


class TestCreate:
    def test_create_returns_classad_with_network(self):
        env = Environment()
        plant = make_plant(env)
        ad = drive(env, plant.create(make_request(), "vm1"))
        assert ad["vmid"] == "vm1"
        assert ad["plant"] == "p0"
        assert ad["ip"].startswith("192.168.")
        assert ad["network_fresh"] is True
        assert plant.active_vm_count() == 1

    def test_same_domain_reuses_network(self):
        env = Environment()
        plant = make_plant(env)
        ad1 = drive(env, plant.create(make_request(), "vm1"))
        ad2 = drive(env, plant.create(make_request(), "vm2"))
        assert ad1["network_id"] == ad2["network_id"]
        assert ad2["network_fresh"] is False

    def test_different_domains_get_different_networks(self):
        env = Environment()
        plant = make_plant(env)
        ad1 = drive(env, plant.create(make_request(domain="d1"), "vm1"))
        ad2 = drive(env, plant.create(make_request(domain="d2"), "vm2"))
        assert ad1["network_id"] != ad2["network_id"]

    def test_network_exhaustion_raises(self):
        env = Environment()
        plant = make_plant(
            env, network_pool=HostOnlyNetworkPool("p0", count=1)
        )
        drive(env, plant.create(make_request(domain="d1"), "vm1"))
        with pytest.raises(VNetError):
            drive(env, plant.create(make_request(domain="d2"), "vm2"))

    def test_capacity_enforced(self):
        env = Environment()
        plant = make_plant(env, max_vms=1)
        drive(env, plant.create(make_request(), "vm1"))
        with pytest.raises(PlantError, match="capacity"):
            drive(env, plant.create(make_request(), "vm2"))

    def test_failed_create_unwinds_network(self):
        env = Environment()
        line = InstantLine(env, fail_clones=1)
        plant = make_plant(env, line=line)
        with pytest.raises(PlantError):
            drive(env, plant.create(make_request(), "vm1"))
        # The VM was detached (the sticky policy keeps the domain's
        # switch assigned) and the vmid is reusable.
        assert plant.network_pool.network_of("d1").attached == set()
        ad = drive(env, plant.create(make_request(), "vm1"))
        assert ad["vmid"] == "vm1"

    def test_vnet_bridge_setup_on_request(self):
        env = Environment()
        vnet = VirtualNetworkService()
        line = InstantLine(env)
        plant = VMPlant(
            env, "p0", VMWarehouse([make_image()]), {"vmware": line},
            vnet_service=vnet,
        )
        drive(env, plant.create(make_request(vnet=True), "vm1"))
        bridges = vnet.bridges("p0")
        assert len(bridges) == 1
        assert bridges[0].proxy.host == "proxy.d1"

    def test_no_bridge_without_proxy(self):
        env = Environment()
        vnet = VirtualNetworkService()
        plant = VMPlant(
            env, "p0", VMWarehouse([make_image()]),
            {"vmware": InstantLine(env)}, vnet_service=vnet,
        )
        drive(env, plant.create(make_request(vnet=False), "vm1"))
        assert vnet.bridges("p0") == []


class TestQueryDestroy:
    def test_query_returns_copy(self):
        env = Environment()
        plant = make_plant(env)
        drive(env, plant.create(make_request(), "vm1"))
        ad = plant.query("vm1")
        ad["tampered"] = True
        assert "tampered" not in plant.query("vm1")

    def test_query_projection(self):
        env = Environment()
        plant = make_plant(env)
        drive(env, plant.create(make_request(), "vm1"))
        ad = plant.query("vm1", attributes=("vmid", "status"))
        assert len(ad) == 2

    def test_query_unknown_vm_raises(self):
        env = Environment()
        plant = make_plant(env)
        with pytest.raises(PlantError):
            plant.query("ghost")

    def test_destroy_releases_everything(self):
        env = Environment()
        line = InstantLine(env)
        plant = make_plant(env, line=line)
        drive(env, plant.create(make_request(), "vm1"))
        final = drive(env, plant.destroy("vm1"))
        assert final["status"] == "collected"
        assert plant.active_vm_count() == 0
        assert line.collected == ["vm1"]
        with pytest.raises(PlantError):
            plant.query("vm1")

    def test_destroy_with_refcount_pool_frees_network(self):
        env = Environment()
        plant = make_plant(
            env,
            network_pool=HostOnlyNetworkPool(
                "p0", count=1, release_policy="refcount"
            ),
        )
        drive(env, plant.create(make_request(domain="d1"), "vm1"))
        drive(env, plant.destroy("vm1"))
        # Network freed: another domain can use it now.
        drive(env, plant.create(make_request(domain="d2"), "vm2"))

    def test_destroy_commit_publishes_derived_image(self):
        env = Environment()
        plant = make_plant(env)
        extra = Action("install-app", command="install app")
        drive(env, plant.create(make_request(extra=(extra,)), "vm1"))
        drive(
            env,
            plant.destroy("vm1", commit=True, publish_as="app-image"),
        )
        published = plant.warehouse.get("app-image")
        assert published.performed_names == ("install-os", "install-app")

    def test_committed_image_matches_deeper_requests(self):
        env = Environment()
        plant = make_plant(env)
        extra = Action("install-app", command="install app")
        drive(env, plant.create(make_request(extra=(extra,)), "vm1"))
        drive(env, plant.destroy("vm1", commit=True, publish_as="deep"))
        ad = drive(env, plant.create(make_request(extra=(extra,)), "vm2"))
        assert ad["image_id"] == "deep"
        assert ad["actions_executed"] == 0


class TestExtend:
    def test_extend_runs_residual_only(self):
        env = Environment()
        line = InstantLine(env)
        plant = make_plant(env, line=line)
        drive(env, plant.create(make_request(), "vm1"))
        bigger = ConfigDAG.from_sequence(
            [base_action(), Action("new-app")]
        )
        ad = drive(env, plant.extend("vm1", bigger))
        assert line.executed == ["new-app"]
        assert "extend_time" in ad

    def test_extend_conflicting_dag_rejected(self):
        env = Environment()
        plant = make_plant(env)
        drive(env, plant.create(make_request(), "vm1"))
        conflicting = ConfigDAG.from_sequence(
            [Action("install-os", scope="host", command="DIFFERENT")]
        )
        with pytest.raises(PlantError, match="conflicts"):
            drive(env, plant.extend("vm1", conflicting))

    def test_extend_missing_prefix_rejected(self):
        env = Environment()
        plant = make_plant(env)
        drive(env, plant.create(make_request(), "vm1"))
        # DAG that does not include what the VM already has.
        other = ConfigDAG.from_sequence([Action("unrelated")])
        with pytest.raises(PlantError):
            drive(env, plant.extend("vm1", other))


class TestEstimate:
    def test_estimate_returns_cost(self):
        env = Environment()
        plant = make_plant(env)
        assert plant.estimate(make_request()) is not None

    def test_estimate_unknown_vm_type_declines(self):
        env = Environment()
        plant = make_plant(env)
        request = CreateRequest(
            hardware=HardwareSpec(memory_mb=32),
            software=SoftwareSpec(
                os=OS, dag=ConfigDAG.from_sequence([base_action()])
            ),
            vm_type="xen",
        )
        assert plant.estimate(request) is None
