"""Tests for speculative clone pre-creation."""

import pytest

from repro.core.dag import ConfigDAG
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest, SoftwareSpec
from repro.plant.speculative import SpeculativeClonePool
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request, install_os_action

from tests.helpers import drive


def make_rig(target=2):
    bed = build_testbed(seed=9, n_plants=1)
    plant = bed.plants[0]
    prototype = experiment_request(32)
    pool = SpeculativeClonePool(plant, prototype, target=target)
    return bed, plant, pool


class TestFill:
    def test_fill_creates_target_clones(self):
        bed, plant, pool = make_rig(target=3)
        created = drive(bed.env, pool.fill())
        assert created == 3
        assert pool.size == 3
        assert plant.active_vm_count() == 3

    def test_fill_idempotent_at_target(self):
        bed, plant, pool = make_rig(target=2)
        drive(bed.env, pool.fill())
        assert drive(bed.env, pool.fill()) == 0

    def test_pooled_clones_executed_no_config_actions(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        vm = plant.infosys.active()[0]
        assert vm.classad["actions_executed"] == 0

    def test_no_matching_image_rejected_at_construction(self):
        bed = build_testbed(seed=9, n_plants=1, memory_sizes=(64,))
        with pytest.raises(PlantError):
            SpeculativeClonePool(
                bed.plants[0], experiment_request(32), target=1
            )


class TestAcquire:
    def test_hit_is_much_faster_than_create(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        request = experiment_request(32)

        start = bed.env.now
        ad = drive(bed.env, pool.acquire(request))
        hit_latency = bed.env.now - start
        assert ad is not None and ad["speculative"] is True

        start = bed.env.now
        drive(bed.env, plant.create(request, "cold"))
        cold_latency = bed.env.now - start
        assert hit_latency < cold_latency / 2
        assert pool.hits == 1

    def test_acquired_vm_fully_configured(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        ad = drive(bed.env, pool.acquire(experiment_request(32)))
        vm = plant.infosys.get(str(ad["vmid"]))
        names = [a.name for a in vm.performed_actions]
        assert names == ["install-os", "configure-network", "setup-user"]

    def test_empty_pool_misses(self):
        bed, plant, pool = make_rig(target=0)
        assert drive(bed.env, pool.acquire(experiment_request(32))) is None
        assert pool.misses == 1

    def test_incompatible_request_misses(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        other_domain = experiment_request(32, domain="elsewhere.org")
        assert drive(bed.env, pool.acquire(other_domain)) is None
        assert pool.size == 1  # clone kept for compatible requests

    def test_wrong_memory_misses(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        assert drive(bed.env, pool.acquire(experiment_request(64))) is None

    def test_conflicting_residual_dag_misses_and_keeps_clone(self):
        """A compatible request whose DAG conflicts with the pooled
        clone's performed prefix falls back to a normal create; the
        clone returns to the pool untouched."""
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        proto = pool.prototype
        conflicting = CreateRequest(
            hardware=proto.hardware,
            software=SoftwareSpec(
                os=proto.software.os,
                # Same OS attribute, but the install action differs —
                # the performed prefix no longer matches the DAG.
                dag=ConfigDAG.from_sequence(
                    [install_os_action("weird-os")]
                ),
            ),
            network=proto.network,
            client_id="picky-client",
            vm_type=proto.vm_type,
        )
        assert drive(bed.env, pool.acquire(conflicting)) is None
        assert pool.misses == 1
        assert pool.size == 1  # clone kept for compatible requests

    def test_acquire_adopts_requested_vmid(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        pooled_vmid = plant.infosys.active()[0].vmid
        ad = drive(
            bed.env,
            pool.acquire(experiment_request(32), vmid="shop-vm-7"),
        )
        assert str(ad["vmid"]) == "shop-vm-7"
        vm = plant.infosys.get("shop-vm-7")
        assert vm.vmid == "shop-vm-7"
        assert pooled_vmid not in plant.infosys
        # Network state moved with the rename.
        drive(bed.env, plant.destroy("shop-vm-7"))

    def test_failed_adoption_restores_pooled_vmid(self):
        bed, plant, pool = make_rig(target=1)
        drive(bed.env, pool.fill())
        pooled_vmid = plant.infosys.active()[0].vmid
        proto = pool.prototype
        conflicting = CreateRequest(
            hardware=proto.hardware,
            software=SoftwareSpec(
                os=proto.software.os,
                dag=ConfigDAG.from_sequence(
                    [install_os_action("weird-os")]
                ),
            ),
            network=proto.network,
            client_id="picky-client",
            vm_type=proto.vm_type,
        )
        result = drive(
            bed.env, pool.acquire(conflicting, vmid="shop-vm-8")
        )
        assert result is None
        assert pooled_vmid in plant.infosys
        assert "shop-vm-8" not in plant.infosys
        assert pool.size == 1


class TestDrain:
    def test_drain_collects_all(self):
        bed, plant, pool = make_rig(target=2)
        drive(bed.env, pool.fill())
        assert drive(bed.env, pool.drain()) == 2
        assert pool.size == 0
        assert plant.active_vm_count() == 0
