"""Unit tests for XML encodings of DAGs and service requests."""

import pytest

from repro.core.actions import Action, ActionScope, ErrorPolicy
from repro.core.dag import ConfigDAG
from repro.core.dagxml import (
    dag_from_xml,
    dag_to_xml,
    request_from_xml,
    request_to_xml,
)
from repro.core.errors import ProtocolError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)


def rich_dag():
    dag = ConfigDAG()
    dag.add_action(
        Action(
            "install",
            scope=ActionScope.HOST,
            command="install {pkg} v{ver}",
            params={"pkg": "vnc", "ver": 3},
            outputs=("path",),
            on_error=ErrorPolicy.RETRY,
            retries=2,
        )
    )
    dag.add_action(Action("configure", command="cfg"))
    dag.add_edge("install", "configure")
    handler = ConfigDAG().add_action(Action("cleanup", command="rm -rf tmp"))
    dag.attach_handler("configure", handler)
    return dag


class TestDagRoundtrip:
    def test_full_roundtrip_preserves_structure(self):
        dag = rich_dag()
        assert dag_from_xml(dag_to_xml(dag)) == dag

    def test_roundtrip_preserves_action_content(self):
        back = dag_from_xml(dag_to_xml(rich_dag()))
        action = back.action("install")
        assert action.scope is ActionScope.HOST
        assert action.on_error is ErrorPolicy.RETRY
        assert action.retries == 2
        assert action.outputs == ("path",)
        assert action.rendered_command() == "install vnc v3"

    def test_roundtrip_preserves_handler(self):
        back = dag_from_xml(dag_to_xml(rich_dag()))
        handler = back.handler_for("configure")
        assert handler is not None
        assert "cleanup" in handler

    def test_empty_dag_roundtrip(self):
        assert dag_from_xml(dag_to_xml(ConfigDAG())) == ConfigDAG()


class TestDagStrictness:
    def test_malformed_xml(self):
        with pytest.raises(ProtocolError):
            dag_from_xml("<dag><unclosed></dag>")

    def test_wrong_root_tag(self):
        with pytest.raises(ProtocolError):
            dag_from_xml("<graph/>")

    def test_unknown_child_rejected(self):
        with pytest.raises(ProtocolError):
            dag_from_xml("<dag><mystery/></dag>")

    def test_edge_missing_attribute(self):
        with pytest.raises(ProtocolError):
            dag_from_xml(
                '<dag><action name="a"/><edge from="a"/></dag>'
            )

    def test_cycle_in_xml_rejected(self):
        text = (
            '<dag><action name="a"/><action name="b"/>'
            '<edge from="a" to="b"/><edge from="b" to="a"/></dag>'
        )
        with pytest.raises(ProtocolError):
            dag_from_xml(text)

    def test_handler_must_contain_one_dag(self):
        text = '<dag><action name="a"/><handler for="a"/></dag>'
        with pytest.raises(ProtocolError):
            dag_from_xml(text)

    def test_bad_enum_value_rejected(self):
        text = '<dag><action name="a" scope="cloud"/></dag>'
        with pytest.raises(ProtocolError):
            dag_from_xml(text)


class TestRequestRoundtrip:
    def make_request(self):
        return CreateRequest(
            hardware=HardwareSpec(
                isa="x86", memory_mb=64, disk_gb=4.0, cpus=2
            ),
            software=SoftwareSpec(os="rh8", dag=rich_dag()),
            network=NetworkSpec(
                domain="cs.example.edu",
                proxy_host="proxy.cs.example.edu",
                proxy_port=4000,
                credentials="x509:abc",
            ),
            client_id="alice",
            vm_type="vmware",
        )

    def test_roundtrip(self):
        request = self.make_request()
        back = request_from_xml(request_to_xml(request))
        assert back.hardware == request.hardware
        assert back.network == request.network
        assert back.client_id == "alice"
        assert back.vm_type == "vmware"
        assert back.software.os == "rh8"
        assert back.software.dag == request.software.dag

    def test_defaults_when_optional_parts_missing(self):
        text = (
            '<vmplant-request service="create">'
            '<hardware memory-mb="32" disk-gb="4.0"/>'
            '<software><dag/></software>'
            "</vmplant-request>"
        )
        request = request_from_xml(text)
        assert request.client_id == "anonymous"
        assert request.vm_type is None
        assert request.network.domain == "local"
        assert not request.network.wants_vnet

    def test_missing_hardware_rejected(self):
        text = (
            '<vmplant-request service="create">'
            "<software><dag/></software></vmplant-request>"
        )
        with pytest.raises(ProtocolError):
            request_from_xml(text)

    def test_missing_software_rejected(self):
        text = (
            '<vmplant-request service="create">'
            '<hardware memory-mb="32" disk-gb="4.0"/></vmplant-request>'
        )
        with pytest.raises(ProtocolError):
            request_from_xml(text)

    def test_bad_numeric_rejected(self):
        text = (
            '<vmplant-request service="create">'
            '<hardware memory-mb="lots" disk-gb="4.0"/>'
            "<software><dag/></software></vmplant-request>"
        )
        with pytest.raises(ProtocolError):
            request_from_xml(text)

    def test_wrong_service_rejected(self):
        text = request_to_xml(self.make_request()).replace(
            'service="create"', 'service="teleport"'
        )
        with pytest.raises(ProtocolError):
            request_from_xml(text)
