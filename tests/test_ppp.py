"""Unit tests for the Production Process Planner."""

import pytest

from repro.core.actions import Action, ActionStatus, ErrorPolicy
from repro.core.dag import ConfigDAG
from repro.core.errors import ConfigurationError, PlantError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.plant.infosys import VMInformationSystem
from repro.plant.ppp import ProductionOrder, ProductionProcessPlanner
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.sim.kernel import Environment

from tests.helpers import InstantLine, drive

OS = "testos"


def base_action():
    return Action("install-os", scope="host", command="install")


def make_dag(*extra_actions):
    return ConfigDAG.from_sequence([base_action(), *extra_actions])


def make_image(performed=None, image_id="img", mem=32):
    return GoldenImage(
        image_id=image_id,
        vm_type="vmware",
        os=OS,
        hardware=HardwareSpec(memory_mb=mem),
        performed=tuple([base_action()] if performed is None else performed),
        memory_state_mb=float(mem),
    )


def make_request(dag, mem=32, vm_type="vmware"):
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(os=OS, dag=dag),
        network=NetworkSpec(domain="d"),
        client_id="tester",
        vm_type=vm_type,
    )


def make_ppp(env, line, images=None):
    warehouse = VMWarehouse(images or [make_image()])
    infosys = VMInformationSystem()
    return (
        ProductionProcessPlanner(env, warehouse, infosys, {"vmware": line}),
        infosys,
    )


class TestPlanning:
    def test_plan_picks_matching_image(self):
        env = Environment()
        ppp, _ = make_ppp(env, InstantLine(env))
        order = ProductionOrder("vm1", make_request(make_dag()))
        image, match, line = ppp.plan(order)
        assert image.image_id == "img"
        assert match.matches

    def test_plan_no_image_raises(self):
        env = Environment()
        ppp, _ = make_ppp(env, InstantLine(env))
        order = ProductionOrder(
            "vm1", make_request(make_dag(), mem=9999)
        )
        with pytest.raises(PlantError, match="no golden machine"):
            ppp.plan(order)

    def test_plan_requires_lines(self):
        env = Environment()
        with pytest.raises(ValueError):
            ProductionProcessPlanner(
                env, VMWarehouse(), VMInformationSystem(), {}
            )

    def test_plan_any_vm_type_prefers_deepest_prefix(self):
        env = Environment()
        line_vm = InstantLine(env, vm_type="vmware")
        line_uml = InstantLine(env, vm_type="uml")
        deep = GoldenImage(
            image_id="uml-deep", vm_type="uml", os=OS,
            hardware=HardwareSpec(memory_mb=32),
            performed=(base_action(), Action("extra")),
        )
        warehouse = VMWarehouse([make_image(), deep])
        ppp = ProductionProcessPlanner(
            env, warehouse, VMInformationSystem(),
            {"vmware": line_vm, "uml": line_uml},
        )
        dag = make_dag(Action("extra"))
        request = make_request(dag, vm_type=None)
        image, match, line = ppp.plan(ProductionOrder("vm1", request))
        assert image.image_id == "uml-deep"
        assert line is line_uml


class TestProduce:
    def test_happy_path_produces_running_vm(self):
        env = Environment()
        line = InstantLine(env, clone_time=10, action_time=2)
        ppp, infosys = make_ppp(env, line)
        dag = make_dag(Action("cfg-net", outputs=("ip",)),
                       Action("add-user"))
        order = ProductionOrder(
            "vm1", make_request(dag), context={"ip": "10.0.0.5"}
        )
        vm = drive(env, ppp.produce(order))
        assert vm.status.value == "running"
        assert vm.classad["clone_time"] == pytest.approx(10.0)
        assert vm.classad["config_time"] == pytest.approx(4.0)
        assert vm.classad["ip"] == "10.0.0.5"
        assert vm.classad["actions_cached"] == 1
        assert vm.classad["actions_executed"] == 2
        assert infosys.get("vm1") is vm
        assert line.executed == ["cfg-net", "add-user"]

    def test_cached_actions_marked(self):
        env = Environment()
        ppp, _ = make_ppp(env, InstantLine(env))
        vm = drive(
            env,
            ppp.produce(ProductionOrder("vm1", make_request(make_dag()))),
        )
        assert vm.results[0].status is ActionStatus.CACHED
        assert [a.name for a in vm.performed_actions] == ["install-os"]

    def test_residual_runs_in_topological_order(self):
        env = Environment()
        line = InstantLine(env)
        ppp, _ = make_ppp(env, line)
        dag = ConfigDAG()
        dag.add_action(base_action())
        for n in ("z-last", "a-first"):
            dag.add_action(Action(n))
        dag.add_edge("install-os", "z-last")
        dag.add_edge("install-os", "a-first")
        dag.add_edge("a-first", "z-last")
        drive(env, ppp.produce(ProductionOrder("vm1", make_request(dag))))
        assert line.executed == ["a-first", "z-last"]

    def test_clone_failure_propagates(self):
        env = Environment()
        line = InstantLine(env, fail_clones=1)
        ppp, infosys = make_ppp(env, line)
        with pytest.raises(PlantError):
            drive(
                env,
                ppp.produce(
                    ProductionOrder("vm1", make_request(make_dag()))
                ),
            )
        assert len(infosys) == 0

    def test_fail_policy_aborts_and_collects(self):
        env = Environment()
        line = InstantLine(env, fail_actions={"bad"})
        ppp, infosys = make_ppp(env, line)
        dag = make_dag(Action("bad"), Action("never-runs"))
        with pytest.raises(ConfigurationError, match="bad"):
            drive(
                env,
                ppp.produce(ProductionOrder("vm1", make_request(dag))),
            )
        assert "never-runs" not in line.executed
        assert line.collected == ["vm1"]
        assert len(infosys) == 0

    def test_ignore_policy_continues(self):
        env = Environment()
        line = InstantLine(env, fail_actions={"flaky"})
        ppp, _ = make_ppp(env, line)
        dag = make_dag(
            Action("flaky", on_error=ErrorPolicy.IGNORE),
            Action("after"),
        )
        vm = drive(
            env, ppp.produce(ProductionOrder("vm1", make_request(dag)))
        )
        assert vm.status.value == "running"
        statuses = {r.action: r.status for r in vm.results}
        assert statuses["flaky"] is ActionStatus.FAILED
        assert statuses["after"] is ActionStatus.OK
        # Failed actions are not recorded as performed.
        assert "flaky" not in [a.name for a in vm.performed_actions]

    def test_retry_policy_retries_until_success(self):
        env = Environment()
        line = InstantLine(
            env, fail_actions={"flaky"}, fail_action_times=2
        )
        ppp, _ = make_ppp(env, line)
        dag = make_dag(
            Action("flaky", on_error=ErrorPolicy.RETRY, retries=3)
        )
        vm = drive(
            env, ppp.produce(ProductionOrder("vm1", make_request(dag)))
        )
        flaky = next(r for r in vm.results if r.action == "flaky")
        assert flaky.ok
        assert flaky.attempts == 3
        assert line.executed.count("flaky") == 3

    def test_retry_policy_exhausts_budget_then_fails(self):
        env = Environment()
        line = InstantLine(env, fail_actions={"flaky"})
        ppp, _ = make_ppp(env, line)
        dag = make_dag(
            Action("flaky", on_error=ErrorPolicy.RETRY, retries=2)
        )
        with pytest.raises(ConfigurationError):
            drive(
                env,
                ppp.produce(ProductionOrder("vm1", make_request(dag))),
            )
        assert line.executed.count("flaky") == 3  # 1 + 2 retries

    def test_handler_policy_runs_subgraph_and_continues(self):
        env = Environment()
        line = InstantLine(env, fail_actions={"fragile"})
        ppp, _ = make_ppp(env, line)
        dag = make_dag(
            Action("fragile", on_error=ErrorPolicy.HANDLER),
            Action("after"),
        )
        handler = ConfigDAG.from_sequence(
            [Action("diagnose"), Action("repair")]
        )
        dag.attach_handler("fragile", handler)
        vm = drive(
            env, ppp.produce(ProductionOrder("vm1", make_request(dag)))
        )
        assert vm.status.value == "running"
        assert line.executed == ["fragile", "diagnose", "repair", "after"]

    def test_handler_policy_without_handler_fails(self):
        env = Environment()
        line = InstantLine(env, fail_actions={"fragile"})
        ppp, _ = make_ppp(env, line)
        dag = make_dag(Action("fragile", on_error=ErrorPolicy.HANDLER))
        with pytest.raises(ConfigurationError, match="no handler"):
            drive(
                env,
                ppp.produce(ProductionOrder("vm1", make_request(dag))),
            )

    def test_failing_handler_aborts(self):
        env = Environment()
        line = InstantLine(env, fail_actions={"fragile", "repair"})
        ppp, _ = make_ppp(env, line)
        dag = make_dag(Action("fragile", on_error=ErrorPolicy.HANDLER))
        dag.attach_handler(
            "fragile", ConfigDAG.from_sequence([Action("repair")])
        )
        with pytest.raises(ConfigurationError, match="error handler"):
            drive(
                env,
                ppp.produce(ProductionOrder("vm1", make_request(dag))),
            )
        assert line.collected == ["vm1"]

    def test_duplicate_vmid_rejected_by_infosys(self):
        env = Environment()
        ppp, _ = make_ppp(env, InstantLine(env))
        drive(
            env,
            ppp.produce(ProductionOrder("vm1", make_request(make_dag()))),
        )
        with pytest.raises(PlantError):
            drive(
                env,
                ppp.produce(
                    ProductionOrder("vm1", make_request(make_dag()))
                ),
            )
