"""Unit tests for Resource / Container / Store primitives."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.resources import Container, Resource, Store


class TestResource:
    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grants_up_to_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []

        def worker(env, name):
            with res.request() as req:
                yield req
                log.append((env.now, name))
                yield env.timeout(5)

        for name in "abc":
            env.process(worker(env, name))
        env.run()
        assert log == [(0.0, "a"), (0.0, "b"), (5.0, "c")]

    def test_fifo_ordering(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def worker(env, name, hold):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(hold)

        for i, name in enumerate("abcd"):
            env.process(worker(env, name, 1))
        env.run()
        assert order == list("abcd")

    def test_context_manager_releases_on_exception(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def failing(env):
            with res.request() as req:
                yield req
                raise RuntimeError("die holding the slot")

        def after(env):
            yield env.timeout(1)
            with res.request() as req:
                yield req
                return env.now

        bad = env.process(failing(env))
        good = env.process(after(env))
        with pytest.raises(RuntimeError):
            env.run()
        env.run()
        assert good.value == 1.0
        assert res.count == 0

    def test_cancel_waiting_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        holder = res.request()
        waiter = res.request()
        assert not waiter.triggered
        waiter.cancel()
        res.release(holder)
        assert len(res.queue) == 0
        assert res.count == 0

    def test_double_release_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        res.release(req)
        res.release(req)
        assert res.count == 0

    def test_count_property(self):
        env = Environment()
        res = Resource(env, capacity=3)
        reqs = [res.request() for _ in range(2)]
        assert res.count == 2
        res.release(reqs[0])
        assert res.count == 1


class TestContainer:
    def test_init_within_bounds(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)
        with pytest.raises(ValueError):
            Container(env, capacity=0)

    def test_get_blocks_until_stock(self):
        env = Environment()
        box = Container(env, capacity=100)
        times = []

        def producer(env):
            yield env.timeout(3)
            yield box.put(10)

        def consumer(env):
            yield box.get(7)
            times.append(env.now)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [3.0]
        assert box.level == 3.0

    def test_put_blocks_at_capacity(self):
        env = Environment()
        box = Container(env, capacity=10, init=8)
        times = []

        def producer(env):
            yield box.put(5)
            times.append(env.now)

        def consumer(env):
            yield env.timeout(4)
            yield box.get(6)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [4.0]
        assert box.level == 7.0

    def test_nonpositive_amounts_rejected(self):
        env = Environment()
        box = Container(env, capacity=10)
        with pytest.raises(ValueError):
            box.put(0)
        with pytest.raises(ValueError):
            box.get(-1)

    def test_cancel_pending_get(self):
        env = Environment()
        box = Container(env, capacity=10)
        pending = box.get(5)
        box.cancel(pending)
        box.put(5)
        assert box.level == 5.0
        assert not pending.triggered

    def test_fifo_gets(self):
        env = Environment()
        box = Container(env, capacity=100)
        order = []

        def getter(env, name, amount):
            yield box.get(amount)
            order.append(name)

        env.process(getter(env, "big", 10))
        env.process(getter(env, "small", 1))

        def feeder(env):
            yield env.timeout(1)
            yield box.put(10)
            yield env.timeout(1)
            yield box.put(1)

        env.process(feeder(env))
        env.run()
        # Strict FIFO: the big get is served first even though the
        # small one could have been satisfied earlier.
        assert order == ["big", "small"]


class TestStore:
    def test_put_get_roundtrip(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            item = yield store.get()
            got.append(item)

        env.process(consumer(env))

        def producer(env):
            yield env.timeout(2)
            yield store.put({"k": 1})

        env.process(producer(env))
        env.run()
        assert got == [{"k": 1}]

    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        out = []

        def producer(env):
            for i in range(5):
                yield store.put(i)

        def consumer(env):
            for _ in range(5):
                item = yield store.get()
                out.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert out == [0, 1, 2, 3, 4]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        events = []

        def producer(env):
            yield store.put("a")
            events.append(("a", env.now))
            yield store.put("b")
            events.append(("b", env.now))

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert events == [("a", 0.0), ("b", 5.0)]

    def test_cancel_get(self):
        env = Environment()
        store = Store(env)
        pending = store.get()
        store.cancel_get(pending)
        store.put("x")
        assert len(store) == 1
        assert not pending.triggered

    def test_len_tracks_items(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        assert len(store) == 2
