"""Tests for the fair-share link, physical host and NFS substrate."""

import pytest

from repro.sim.host import PhysicalHost
from repro.sim.kernel import Environment
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.sim.network import FairShareLink
from repro.sim.rng import RngHub
from repro.sim.storage import NFSServer

from tests.helpers import drive


class TestFairShareLink:
    def test_single_transfer_time(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)

        def proc(env):
            yield link.transfer(50.0)
            return env.now

        assert drive(env, proc(env)) == pytest.approx(5.0)

    def test_two_flows_share_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)
        done = {}

        def proc(env, name, size):
            yield link.transfer(size)
            done[name] = env.now

        env.process(proc(env, "a", 50.0))
        env.process(proc(env, "b", 50.0))
        env.run()
        # Both share 10 MB/s: each sees 5 MB/s → 10 s.
        assert done["a"] == pytest.approx(10.0)
        assert done["b"] == pytest.approx(10.0)

    def test_short_flow_finishes_first_then_rate_recovers(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)
        done = {}

        def proc(env, name, size):
            yield link.transfer(size)
            done[name] = env.now

        env.process(proc(env, "short", 10.0))
        env.process(proc(env, "long", 50.0))
        env.run()
        # Shared until short drains 10MB at 5MB/s (t=2), then long
        # finishes its remaining 40MB at full rate (t=2+4=6).
        assert done["short"] == pytest.approx(2.0)
        assert done["long"] == pytest.approx(6.0)

    def test_staggered_join_rescales(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)
        done = {}

        def first(env):
            yield link.transfer(40.0)
            done["first"] = env.now

        def second(env):
            yield env.timeout(2.0)
            yield link.transfer(40.0)
            done["second"] = env.now

        env.process(first(env))
        env.process(second(env))
        env.run()
        # first: 20MB alone (t=2), then shares; 20MB left at 5MB/s → t=6
        assert done["first"] == pytest.approx(6.0)
        # second: 20MB shared by t=6, then 20MB alone → t=8
        assert done["second"] == pytest.approx(8.0)

    def test_zero_size_completes_instantly(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)

        def proc(env):
            yield link.transfer(0.0)
            return env.now

        assert drive(env, proc(env)) == 0.0

    def test_latency_added_before_flow(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0, latency_s=1.0)

        def proc(env):
            yield link.transfer(10.0)
            return env.now

        assert drive(env, proc(env)) == pytest.approx(2.0)

    def test_negative_size_rejected(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)

    def test_bad_bandwidth_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            FairShareLink(env, "l", bandwidth_mbps=0.0)

    def test_utilization_accounting(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=10.0)

        def proc(env):
            yield link.transfer(10.0)  # busy t=0..1
            yield env.timeout(9.0)  # idle t=1..10

        drive(env, proc(env))
        assert link.utilization() == pytest.approx(0.1)
        assert link.total_mb == pytest.approx(10.0)

    def test_conservation_many_flows(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=7.0)
        done = []
        sizes = [3.0, 11.0, 5.5, 20.0, 1.0]

        def proc(env, size, delay):
            yield env.timeout(delay)
            yield link.transfer(size)
            done.append(env.now)

        for i, size in enumerate(sizes):
            env.process(proc(env, size, i * 0.7))
        env.run()
        assert len(done) == len(sizes)
        # The link can never move data faster than its bandwidth:
        assert max(done) >= sum(sizes) / 7.0 - 1e-6


class TestPhysicalHost:
    def test_admit_release_accounting(self):
        env = Environment()
        host = PhysicalHost(env, "h", memory_mb=1000)
        host.admit_vm(256)
        host.admit_vm(128)
        assert host.committed_guest_mb == 384
        assert host.vm_count == 2
        host.release_vm(256)
        assert host.committed_guest_mb == 128
        assert host.vm_count == 1

    def test_over_release_rejected(self):
        env = Environment()
        host = PhysicalHost(env, "h", memory_mb=1000)
        host.admit_vm(100)
        from repro.core.errors import PlantError

        with pytest.raises(PlantError):
            host.release_vm(500)

    def test_pressure_flat_below_threshold(self):
        env = Environment()
        host = PhysicalHost(env, "h", memory_mb=2000)
        host.admit_vm(100)
        assert host.pressure_factor() == 1.0

    def test_pressure_grows_linearly_above_threshold(self):
        env = Environment()
        lat = DEFAULT_LATENCY
        host = PhysicalHost(env, "h", memory_mb=1000, latency=lat)
        # Fill to exactly 100% utilization.
        guest = 1000 - lat.host_os_reserve_mb - lat.vmm_overhead_per_vm_mb
        host.admit_vm(guest)
        expected = 1.0 + lat.pressure_slope * (1.0 - lat.pressure_threshold)
        assert host.pressure_factor() == pytest.approx(expected)

    def test_pressure_monotone_in_load(self):
        env = Environment()
        host = PhysicalHost(env, "h", memory_mb=1536)
        factors = []
        for _ in range(16):
            host.admit_vm(96)
            factors.append(host.pressure_factor())
        assert factors == sorted(factors)

    def test_disk_ops_scale_with_pressure(self):
        env = Environment()
        host = PhysicalHost(env, "h", memory_mb=1536)

        def measure():
            def proc(env):
                start = env.now
                yield from host.disk_write(60.0)
                return env.now - start

            return drive(env, proc(env))

        fast = measure()
        for _ in range(16):
            host.admit_vm(96)
        slow = measure()
        assert slow > fast

    def test_bad_construction(self):
        env = Environment()
        with pytest.raises(ValueError):
            PhysicalHost(env, "h", memory_mb=0)
        with pytest.raises(ValueError):
            PhysicalHost(env, "h", cpus=0)


class TestNFSServer:
    def test_read_charges_overhead_plus_transfer(self):
        env = Environment()
        nfs = NFSServer(env, rng=RngHub(1))

        def proc(env):
            yield from nfs.read_file(11.0)
            return env.now

        elapsed = drive(env, proc(env))
        # ~1 s transfer at 11 MB/s plus jittered ~0.25 s overhead.
        assert 1.0 < elapsed < 2.0
        assert nfs.requests_served == 1
        assert nfs.mb_served == pytest.approx(11.0)

    def test_copy_to_host_charges_per_file_overhead(self):
        env = Environment()
        nfs = NFSServer(env, rng=RngHub(1))
        host = PhysicalHost(env, "h")

        def proc(env, files):
            start = env.now
            yield from nfs.copy_to_host(1.0, host, files=files)
            return env.now - start

        one = drive(env, proc(env, 1))
        env2 = Environment()
        nfs2 = NFSServer(env2, rng=RngHub(1))
        host2 = PhysicalHost(env2, "h")

        def proc2(env):
            start = env2.now
            yield from nfs2.copy_to_host(1.0, host2, files=8)
            return env2.now - start

        eight = drive(env2, proc2(env2))
        assert eight > one

    def test_copy_write_excess_under_pressure(self):
        """When the host is pressured, the local write dominates."""
        lat = LatencyModel(host_disk_write_mbps=1.0)  # very slow disk
        env = Environment()
        nfs = NFSServer(env, latency=lat, rng=RngHub(1))
        host = PhysicalHost(env, "h", latency=lat)

        def proc(env):
            start = env.now
            yield from nfs.copy_to_host(22.0, host)
            return env.now - start

        elapsed = drive(env, proc(env))
        # 22 MB at 1 MB/s write ≫ 2 s network time.
        assert elapsed > 20.0

    def test_concurrent_copies_share_the_link(self):
        env = Environment()
        nfs = NFSServer(env, rng=RngHub(1))
        hosts = [PhysicalHost(env, f"h{i}") for i in range(2)]
        done = []

        def proc(env, host):
            yield from nfs.copy_to_host(55.0, host)
            done.append(env.now)

        for host in hosts:
            env.process(proc(env, host))
        env.run()
        # 110 MB over an 11 MB/s link can't finish before t=10.
        assert min(done) >= 10.0
