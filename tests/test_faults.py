"""Tests for the fault-injection layer and the recovery ladder.

Covers: deterministic FaultPlan generation/replay, the PlantHealth
circuit breaker, plant crash/recover semantics, warehouse outage
modes, link pause/degrade, bid and create deadlines, abort_creation
leak regression, reaper/monitor sweep hardening — and the pin that
all-off defaults leave the golden event trajectory bit-identical.
"""

import hashlib
from dataclasses import replace

import pytest

from repro.core.errors import (
    DeadlineExceeded,
    PlantError,
    ReproError,
    ShopError,
    StorageError,
)
from repro.faults import (
    CIRCUIT_BREAKER,
    DEADLINE_BACKOFF,
    BreakerState,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    PlantHealth,
    RecoveryPolicy,
    HOST_CRASH,
    WAREHOUSE_OUTAGE,
)
from repro.plant.monitor import VMMonitor
from repro.plant.reaper import LeaseReaper
from repro.sim.cluster import build_testbed
from repro.sim.kernel import Environment
from repro.sim.network import FairShareLink
from repro.sim.rng import RngHub
from repro.sim.storage import NFSServer
from repro.workloads.requests import experiment_request, request_stream

from tests.helpers import drive


def _plan_kwargs(**overrides):
    kwargs = dict(
        crash_targets=["plant0", "plant1"],
        mtbf_s=200.0,
        mttr_s=50.0,
        warehouse=True,
        hang_targets=["plant2"],
    )
    kwargs.update(overrides)
    return kwargs


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        p1 = FaultPlan.exponential(RngHub(42), 3000.0, **_plan_kwargs())
        p2 = FaultPlan.exponential(RngHub(42), 3000.0, **_plan_kwargs())
        assert p1.to_records() == p2.to_records()
        assert p1.signature() == p2.signature()

    def test_different_seed_different_schedule(self):
        p1 = FaultPlan.exponential(RngHub(1), 3000.0, **_plan_kwargs())
        p2 = FaultPlan.exponential(RngHub(2), 3000.0, **_plan_kwargs())
        assert p1.signature() != p2.signature()

    def test_per_target_streams_are_independent(self):
        """Adding targets never perturbs another target's schedule."""
        small = FaultPlan.exponential(
            RngHub(7), 3000.0, crash_targets=["plant0"]
        )
        big = FaultPlan.exponential(
            RngHub(7),
            3000.0,
            crash_targets=["plant0", "plant1"],
            warehouse=True,
        )
        plant0 = [e for e in big if e.target == "plant0"]
        assert [
            (e.at, e.duration) for e in small
        ] == [(e.at, e.duration) for e in plant0]

    def test_records_roundtrip(self):
        plan = FaultPlan.exponential(RngHub(3), 2000.0, **_plan_kwargs())
        clone = FaultPlan.from_records(plan.to_records())
        assert clone.signature() == plan.signature()
        assert len(clone) == len(plan)

    def test_events_sorted(self):
        e1 = FaultEvent(at=50.0, kind=HOST_CRASH, target="a", duration=5.0)
        e2 = FaultEvent(at=10.0, kind=HOST_CRASH, target="b", duration=5.0)
        plan = FaultPlan([e1, e2])
        assert [e.at for e in plan] == [10.0, 50.0]
        assert e2.recover_at == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind="meteor", target="x", duration=1.0)
        with pytest.raises(ValueError):
            FaultEvent(at=-1.0, kind=HOST_CRASH, target="x", duration=1.0)
        with pytest.raises(ValueError):
            FaultEvent(at=0.0, kind=HOST_CRASH, target="x", duration=0.0)
        with pytest.raises(ValueError):
            FaultEvent(
                at=0.0, kind=WAREHOUSE_OUTAGE, target="w",
                duration=1.0, mode="maybe",
            )
        with pytest.raises(ValueError):
            FaultPlan.exponential(RngHub(0), 0.0)
        with pytest.raises(ValueError):
            FaultPlan.exponential(RngHub(0), 10.0, mtbf_s=0.0)


class TestPlantHealth:
    def test_open_half_open_close_cycle(self):
        h = PlantHealth("p0", threshold=2, quarantine_s=100.0)
        assert h.state is BreakerState.CLOSED
        assert not h.record_failure(0.0)
        assert h.record_failure(1.0)  # second consecutive: opens
        assert h.state is BreakerState.OPEN
        assert not h.allows(50.0)  # still quarantined
        assert h.allows(101.0)  # window elapsed: half-open probe
        assert h.state is BreakerState.HALF_OPEN
        assert h.allows(102.0)  # stays admitted until an outcome
        assert h.record_success(103.0)  # probe worked: closes
        assert h.state is BreakerState.CLOSED
        assert h.times_opened == 1
        assert h.probes == 1

    def test_half_open_failure_reopens(self):
        h = PlantHealth("p0", threshold=1, quarantine_s=10.0)
        assert h.record_failure(0.0)
        assert h.allows(10.0)
        assert h.state is BreakerState.HALF_OPEN
        assert h.record_failure(11.0)  # probe failed: instant reopen
        assert h.state is BreakerState.OPEN
        assert h.opened_at == 11.0
        assert h.times_opened == 2

    def test_disabled_breaker_never_opens(self):
        h = PlantHealth("p0", threshold=0, quarantine_s=10.0)
        for t in range(20):
            assert not h.record_failure(float(t))
            assert h.allows(float(t))
        assert h.state is BreakerState.CLOSED


class TestRecoveryPolicy:
    def test_defaults_disabled(self):
        policy = RecoveryPolicy()
        assert not policy.enabled
        assert policy.backoff_delay(1) == 0.0
        assert policy.backoff_delay(5) == 0.0

    def test_backoff_sequence(self):
        policy = RecoveryPolicy(
            max_attempts=4, backoff_base_s=10.0, backoff_factor=2.0
        )
        assert policy.enabled
        assert [policy.backoff_delay(a) for a in (1, 2, 3, 4)] == [
            0.0, 10.0, 20.0, 40.0,
        ]

    def test_presets_enabled(self):
        assert DEADLINE_BACKOFF.enabled
        assert CIRCUIT_BREAKER.quarantine_threshold > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(create_deadline_s=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(quarantine_s=0.0)


class TestGoldenAllOff:
    def test_all_off_trajectory_is_bit_identical(self):
        """Explicit all-off recovery + an empty fault plan change
        nothing: the golden trace fingerprint still matches."""
        from tests.test_determinism import TestGoldenTrajectories

        bed = build_testbed(
            seed=11, n_plants=2, recovery=RecoveryPolicy()
        )
        FaultInjector(bed, FaultPlan()).start()
        tracer = bed.attach_tracer()

        def client():
            for request in request_stream(32, 4):
                yield from bed.shop.create(request)

        bed.run(client())
        fp = hashlib.sha256(
            repr(
                [
                    (
                        e.time,
                        e.category,
                        e.message,
                        tuple(sorted(e.data.items())),
                    )
                    for e in tracer.events
                ]
            ).encode()
        ).hexdigest()
        assert fp == TestGoldenTrajectories.TRACE_FP


ZERO_LEAKS = {
    "memory": 0.0, "vms": 0, "admitted": 0.0, "infosys": 0, "leases": 0,
}


def _leaks(bed):
    admitted = 0.0
    for line_list in bed.lines.values():
        for line in line_list:
            admitted += sum(getattr(line, "_admitted", {}).values())
    return {
        "memory": sum(h.committed_guest_mb for h in bed.hosts),
        "vms": sum(h.vm_count for h in bed.hosts),
        "admitted": admitted,
        "infosys": sum(len(p.infosys) for p in bed.plants),
        "leases": sum(
            p.network_pool.attached_count() for p in bed.plants
        ),
    }


class TestPlantCrash:
    def test_crash_kills_vms_and_releases_everything(self):
        bed = build_testbed(seed=5, n_plants=1)
        plant = bed.plants[0]
        drive(bed.env, bed.shop.create(experiment_request(32)))
        drive(bed.env, bed.shop.create(experiment_request(32)))
        assert len(plant.infosys) == 2
        assert bed.hosts[0].committed_guest_mb > 0

        killed = plant.fail()
        assert killed == 2
        assert plant.down
        assert bed.hosts[0].down
        assert _leaks(bed) == ZERO_LEAKS
        # Down plants decline bids and refuse creates.
        assert plant.estimate(experiment_request(32)) is None
        assert plant.fail() == 0  # idempotent

        plant.recover()
        assert not plant.down and not bed.hosts[0].down
        assert plant.estimate(experiment_request(32)) is not None
        plant.recover()  # idempotent

    def test_destroy_after_crash_drops_stale_route(self):
        bed = build_testbed(seed=5, n_plants=1)
        ad = drive(bed.env, bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        bed.plants[0].fail()
        bed.plants[0].recover()
        with pytest.raises(ReproError):
            drive(bed.env, bed.shop.destroy(vmid))
        assert vmid not in bed.shop.active_vmids()

    # A 32MB create runs ~24s: 10s is mid-clone, 20s mid-configure —
    # each exercises a different unwinding path in _produce_phases.
    @pytest.mark.parametrize("crash_at", [10.0, 20.0])
    def test_crash_mid_create_fails_without_leaks(self, crash_at):
        bed = build_testbed(seed=5, n_plants=1)
        plant = bed.plants[0]

        def scenario():
            proc = bed.env.process(
                bed.shop.create(experiment_request(32))
            )
            yield bed.env.timeout(crash_at)
            plant.fail()
            try:
                yield proc
            except ReproError:
                return "failed"
            return "created"

        assert drive(bed.env, scenario()) == "failed"
        assert _leaks(bed) == ZERO_LEAKS


class TestWarehouseOutage:
    def test_stall_parks_new_reads_until_recovery(self):
        env = Environment()
        nfs = NFSServer(env, "nfs")
        assert nfs.begin_outage("stall")
        assert not nfs.begin_outage("stall")  # overlap rejected

        def reader():
            yield from nfs.read_file(10.0)
            return env.now

        def op():
            proc = env.process(reader())
            yield env.timeout(40.0)
            nfs.end_outage()
            done = yield proc
            return done

        finished = drive(env, op())
        assert finished > 40.0
        assert nfs.outages == 1

    def test_abort_fails_inflight_and_new_transfers(self):
        env = Environment()
        nfs = NFSServer(env, "nfs")

        def reader():
            try:
                yield from nfs.read_file(500.0)
            except StorageError:
                return "aborted"
            return "served"

        def op():
            proc = env.process(reader())
            yield env.timeout(1.0)  # transfer in flight
            assert nfs.begin_outage("abort")
            first = yield proc
            second = yield env.process(reader())
            nfs.end_outage()
            third = yield env.process(reader())
            return first, second, third

        assert drive(env, op()) == ("aborted", "aborted", "served")
        assert nfs.aborted_transfers == 1

    def test_unknown_mode_rejected(self):
        env = Environment()
        nfs = NFSServer(env, "nfs")
        with pytest.raises(ValueError):
            nfs.begin_outage("flood")


class TestLinkFaults:
    def test_pause_freezes_flows(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=1.0)  # 1 MB/s

        def op():
            done = link.transfer(10.0)  # 10 s nominal
            yield env.timeout(2.0)
            link.pause()
            assert link.paused
            yield env.timeout(100.0)  # frozen: nothing completes
            assert not done.triggered
            link.resume()
            yield done
            return env.now

        assert drive(env, op()) == pytest.approx(110.0)

    def test_degrade_and_restore_bandwidth(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=1.0)

        def op():
            done = link.transfer(10.0)
            yield env.timeout(5.0)  # 5 MB done
            link.set_bandwidth(0.5)  # half speed: 10 s for the rest
            yield done
            return env.now

        assert drive(env, op()) == pytest.approx(15.0)

    def test_abort_flows_fails_waiters(self):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=1.0)

        def waiter():
            try:
                yield link.transfer(100.0)
            except StorageError:
                return "dead"
            return "ok"

        def op():
            procs = [env.process(waiter()) for _ in range(3)]
            yield env.timeout(1.0)
            n = link.abort_flows(lambda: StorageError("outage"))
            results = []
            for proc in procs:
                value = yield proc
                results.append(value)
            return n, results

        n, results = drive(env, op())
        assert n == 3
        assert results == ["dead"] * 3
        assert link.active_flows == 0


class TestBidDeadline:
    def test_hung_bidder_is_dropped_at_deadline(self):
        bed = build_testbed(
            seed=5, n_plants=2,
            recovery=RecoveryPolicy(bid_deadline_s=5.0),
        )
        bed.plants[0].fail()  # its estimate_proc now hangs
        ad = drive(bed.env, bed.shop.create(experiment_request(32)))
        assert str(ad["plant"]) == "plant1"
        assert bed.env.now >= 5.0

    def test_all_bidders_hung_raises_shop_error(self):
        bed = build_testbed(
            seed=5, n_plants=2,
            recovery=RecoveryPolicy(bid_deadline_s=5.0),
        )
        for plant in bed.plants:
            plant.fail()
        with pytest.raises(ShopError):
            drive(bed.env, bed.shop.create(experiment_request(32)))


class TestCreateDeadline:
    def test_deadline_aborts_slow_create_without_leaks(self):
        bed = build_testbed(
            seed=5, n_plants=1,
            recovery=RecoveryPolicy(create_deadline_s=20.0),
        )
        # A 256MB create takes ~54s: the deadline always fires.
        with pytest.raises(DeadlineExceeded):
            drive(bed.env, bed.shop.create(experiment_request(256)))
        assert bed.env.now >= 20.0
        assert _leaks(bed) == ZERO_LEAKS

    def test_backoff_rebid_eventually_succeeds(self):
        bed = build_testbed(
            seed=5, n_plants=2,
            recovery=RecoveryPolicy(
                max_attempts=3,
                backoff_base_s=30.0,
                bid_deadline_s=5.0,
            ),
        )

        def heal(after):
            yield bed.env.timeout(after)
            for plant in bed.plants:
                plant.recover()

        def scenario():
            for plant in bed.plants:
                plant.fail()
            # Both hosts come back during the second backoff window:
            # attempt 1 finds no bids at ~5s, attempt 2 at ~40s,
            # attempt 3 (after a 60s backoff) succeeds.
            bed.env.process(heal(50.0))
            ad = yield from bed.shop.create(experiment_request(32))
            return ad

        ad = drive(bed.env, scenario())
        assert str(ad["vmid"]).startswith("vmshop-vm-")
        assert bed.env.now > 90.0


class TestAbortCreationRegression:
    def test_failed_creates_leak_nothing(self):
        """Satellite regression: retrying across plants after clone
        failures must not leak leases, memory, or pool slots."""
        bed = build_testbed(
            seed=9, n_plants=2, retry_other_plants=True
        )
        for line_list in bed.lines.values():
            for line in line_list:
                line.clone_failure_prob = 1.0
        with pytest.raises(ReproError):
            drive(bed.env, bed.shop.create(experiment_request(32)))
        assert _leaks(bed) == ZERO_LEAKS

    def test_abort_creation_is_idempotent(self):
        bed = build_testbed(seed=9, n_plants=1)
        plant = bed.plants[0]
        assert plant.abort_creation("no-such-vm") == []
        ad = drive(bed.env, bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        released = plant.abort_creation(vmid)
        assert "vm" in released
        assert plant.abort_creation(vmid) == []
        assert _leaks(bed) == ZERO_LEAKS


class TestQuarantine:
    def _bed(self):
        bed = build_testbed(
            seed=13, n_plants=2,
            retry_other_plants=True,
            recovery=RecoveryPolicy(
                quarantine_threshold=2, quarantine_s=10_000.0
            ),
        )
        # plant0 always fails its clones until "fixed" by the test.
        for line in bed.plants[0].lines.values():
            line.clone_failure_prob = 1.0
        return bed

    def test_repeat_offender_is_quarantined(self):
        bed = self._bed()

        def scenario():
            for _ in range(4):
                yield from bed.shop.create(experiment_request(32))

        drive(bed.env, scenario())
        breaker = bed.shop.health["plant0"]
        assert breaker.times_opened == 1
        assert breaker.state is BreakerState.OPEN
        # Once open, plant0 no longer receives create dispatches.
        dispatched = [name for _, name, _ in bed.shop.creation_log]
        assert dispatched.count("plant0") == 2  # only the two strikes

    def test_half_open_probe_after_quarantine(self):
        bed = self._bed()

        def scenario():
            for _ in range(3):
                yield from bed.shop.create(experiment_request(32))
            yield bed.env.timeout(20_000.0)  # quarantine elapses
            for line in bed.plants[0].lines.values():
                line.clone_failure_prob = 0.0  # host fixed
            for _ in range(4):
                yield from bed.shop.create(experiment_request(32))

        drive(bed.env, scenario())
        breaker = bed.shop.health["plant0"]
        assert breaker.probes >= 1
        assert breaker.state is BreakerState.CLOSED


class TestReaperHardening:
    def _bed_with_leases(self, n):
        bed = build_testbed(seed=3, n_plants=1)
        request = replace(experiment_request(32), lease_s=1.0)
        vmids = []
        for _ in range(n):
            ad = drive(bed.env, bed.shop.create(request))
            vmids.append(str(ad["vmid"]))
        return bed, vmids

    def test_sweep_continues_past_failing_destroy(self):
        bed, vmids = self._bed_with_leases(2)
        plant = bed.plants[0]
        reaper = LeaseReaper(bed.env, plant, period=10.0)
        original = plant.destroy
        poisoned = vmids[0]

        def destroy(vmid, *args, **kwargs):
            if vmid == poisoned:
                raise PlantError("injected destroy failure")
            return original(vmid, *args, **kwargs)

        plant.destroy = destroy

        def op():
            yield bed.env.timeout(5.0)  # leases lapsed
            count = yield from reaper.sweep()
            return count

        assert drive(bed.env, op()) == 1
        assert reaper.failed == [poisoned]
        assert reaper.reaped == [vmids[1]]

    def test_orphan_collection(self):
        bed = build_testbed(seed=3, n_plants=1)
        ad = drive(bed.env, bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        # Simulate shop-side amnesia: the plant still runs the VM.
        del bed.shop._route[vmid]
        reaper = LeaseReaper(
            bed.env, bed.plants[0], period=10.0,
            shop=bed.shop, orphan_grace_s=1000.0,
        )

        def op():
            yield bed.env.timeout(30.0)
            early = yield from reaper.sweep()  # inside grace: kept
            yield bed.env.timeout(2000.0)
            late = yield from reaper.sweep()
            return early, late

        assert drive(bed.env, op()) == (0, 1)
        assert reaper.orphans_collected == [vmid]
        assert len(bed.plants[0].infosys) == 0


class TestMonitorHardening:
    def test_sweep_survives_update_failure(self):
        bed = build_testbed(seed=3, n_plants=1)
        drive(bed.env, bed.shop.create(experiment_request(32)))
        drive(bed.env, bed.shop.create(experiment_request(32)))
        plant = bed.plants[0]
        monitor = VMMonitor(bed.env, plant.infosys, period=30.0)
        victim = plant.infosys.active()[0].vmid
        original = plant.infosys.update

        def update(vmid, attrs):
            if vmid == victim:
                raise PlantError("injected update failure")
            return original(vmid, attrs)

        plant.infosys.update = update
        monitor.sweep()
        assert monitor.sweeps == 1
        assert monitor.failed == [victim]


class TestInjectorAndChaos:
    def test_injector_applies_and_recovers(self):
        bed = build_testbed(seed=5, n_plants=2)
        plan = FaultPlan(
            [
                FaultEvent(
                    at=10.0, kind=HOST_CRASH,
                    target="plant0", duration=20.0,
                ),
                FaultEvent(
                    at=15.0, kind=WAREHOUSE_OUTAGE,
                    target="warehouse", duration=5.0,
                ),
                # Overlaps the first crash: skipped, not double-applied.
                FaultEvent(
                    at=12.0, kind=HOST_CRASH,
                    target="plant0", duration=5.0,
                ),
            ]
        )
        injector = FaultInjector(bed, plan)
        assert injector.start() == 3

        def op():
            yield bed.env.timeout(100.0)

        drive(bed.env, op())
        assert injector.skipped == 1
        phases = [
            (phase, kind) for _, phase, kind, _ in injector.applied
        ]
        assert phases.count(("inject", HOST_CRASH)) == 1
        assert phases.count(("recover", HOST_CRASH)) == 1
        assert not bed.plants[0].down
        assert bed.nfs.outage_mode is None
        assert injector.mean_time_to_recover() == pytest.approx(12.5)

    def test_chaos_ladder_monotone_replayable_leak_free(self):
        from repro.experiments.chaos import run_chaos

        kwargs = dict(
            seed=7, requests=12, rate=0.1,
            mtbf_sweep=(150.0,), mttr_s=50.0, n_plants=3,
        )
        result = run_chaos(**kwargs)
        ladder = result.availability_ladder(150.0)
        assert all(b >= a for a, b in zip(ladder, ladder[1:]))
        assert all(
            not p.leaked for p in result.points[150.0]
        ), [p.leaks for p in result.points[150.0]]
        replay = run_chaos(plans=result.plans, **kwargs)
        assert [
            (p.policy, p.fingerprint) for p in replay.points[150.0]
        ] == [(p.policy, p.fingerprint) for p in result.points[150.0]]
        assert replay.plan_signature(150.0) == result.plan_signature(
            150.0
        )
