"""Tests for the provisioning-throughput layer.

Host-side golden-state caching, in-flight transfer coalescing, and
adaptive speculative pools — plus the guarantee that the whole layer
is invisible when switched off.
"""

import hashlib

import pytest

from repro.provisioning import FULL_PROVISIONING, ProvisioningConfig
from repro.sim.cluster import build_testbed
from repro.sim.host import HostStateCache
from repro.workloads.requests import experiment_request, request_stream

from tests.helpers import drive


class TestProvisioningConfig:
    def test_defaults_disabled(self):
        config = ProvisioningConfig()
        assert not config.enabled
        assert config.host_cache_mb == 0.0
        assert not config.coalesce_transfers
        assert not config.speculative_pools

    def test_full_enabled(self):
        assert FULL_PROVISIONING.enabled
        assert FULL_PROVISIONING.speculative_pools

    def test_without_pools(self):
        trimmed = FULL_PROVISIONING.without_pools()
        assert not trimmed.speculative_pools
        assert trimmed.coalesce_transfers
        assert trimmed.host_cache_mb == FULL_PROVISIONING.host_cache_mb

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host_cache_mb": -1.0},
            {"pool_target_hit_rate": 0.0},
            {"pool_target_hit_rate": 1.5},
            {"pool_min_target": -1},
            {"pool_min_target": 5, "pool_max_target": 2},
            {"pool_window": 1},
            {"pool_lead_time_s": 0.0},
            {"pool_bid_discount": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProvisioningConfig(**kwargs)


class TestHostStateCache:
    def test_lookup_miss_then_hit(self):
        cache = HostStateCache(100.0)
        assert not cache.lookup("img-a")
        assert cache.insert("img-a", 40.0)
        assert cache.lookup("img-a")
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 40.0)
        cache.insert("b", 40.0)
        cache.lookup("a")  # touch: b becomes LRU
        cache.insert("c", 40.0)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.evictions == 1
        assert cache.used_mb == pytest.approx(80.0)

    def test_oversize_state_not_admitted(self):
        cache = HostStateCache(100.0)
        assert not cache.insert("huge", 2048.0)
        assert len(cache) == 0
        cache.insert("a", 60.0)
        assert not cache.insert("huge", 101.0)
        assert "a" in cache  # nothing evicted for an unadmittable entry

    def test_refresh_updates_size(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 40.0)
        cache.insert("a", 70.0)
        assert cache.used_mb == pytest.approx(70.0)
        assert len(cache) == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            HostStateCache(0.0)


class TestHostCacheClones:
    def test_repeat_clone_served_from_cache(self):
        bed = build_testbed(
            seed=5,
            n_plants=1,
            provisioning=ProvisioningConfig(host_cache_mb=512.0),
        )
        plant = bed.plants[0]
        drive(bed.env, plant.create(experiment_request(32), "vm-1"))
        nfs_after_first = bed.nfs.mb_served
        first, = bed.clone_records()
        assert first.copy_source == "nfs"

        drive(bed.env, plant.create(experiment_request(32), "vm-2"))
        _, second = bed.clone_records()
        assert second.copy_source == "host-cache"
        assert bed.nfs.mb_served == nfs_after_first  # no new NFS bytes
        assert second.copy_time < first.copy_time / 2
        assert bed.hosts[0].state_cache.hits == 1

    def test_disabled_cache_always_pays_nfs(self):
        bed = build_testbed(seed=5, n_plants=1)
        plant = bed.plants[0]
        drive(bed.env, plant.create(experiment_request(32), "vm-1"))
        drive(bed.env, plant.create(experiment_request(32), "vm-2"))
        assert [r.copy_source for r in bed.clone_records()] == [
            "nfs",
            "nfs",
        ]
        assert bed.hosts[0].state_cache is None


class TestTransferCoalescing:
    def _race_two_clones(self, provisioning):
        bed = build_testbed(
            seed=5, n_plants=1, provisioning=provisioning
        )
        plant = bed.plants[0]

        def both():
            procs = [
                bed.env.process(
                    plant.create(experiment_request(32), f"vm-{i}")
                )
                for i in range(2)
            ]
            yield bed.env.all_of(procs)

        drive(bed.env, both())
        return bed

    def test_concurrent_same_image_shares_one_transfer(self):
        bed = self._race_two_clones(
            ProvisioningConfig(coalesce_transfers=True)
        )
        sources = sorted(r.copy_source for r in bed.clone_records())
        assert sources == ["coalesced", "nfs"]
        assert bed.nfs.coalescer.requests_coalesced == 1
        assert bed.nfs.coalescer.mb_saved > 0
        assert bed.nfs.coalescer.inflight == 0  # all settled

    def test_coalescing_halves_nfs_traffic(self):
        coalesced = self._race_two_clones(
            ProvisioningConfig(coalesce_transfers=True)
        )
        baseline = self._race_two_clones(ProvisioningConfig())
        assert baseline.nfs.coalescer.requests_coalesced == 0
        assert (
            coalesced.nfs.mb_served
            == pytest.approx(baseline.nfs.mb_served / 2)
        )

    def test_follower_not_slower_than_contending_baseline(self):
        coalesced = self._race_two_clones(
            ProvisioningConfig(coalesce_transfers=True)
        )
        baseline = self._race_two_clones(ProvisioningConfig())
        slowest = lambda bed: max(
            r.copy_time for r in bed.clone_records()
        )
        assert slowest(coalesced) <= slowest(baseline) + 1e-9


class TestAdaptivePools:
    def _bed(self, **overrides):
        params = dict(
            host_cache_mb=512.0,
            coalesce_transfers=True,
            speculative_pools=True,
            pool_lead_time_s=120.0,
        )
        params.update(overrides)
        return build_testbed(
            seed=5, n_plants=1, provisioning=ProvisioningConfig(**params)
        )

    def test_miss_then_refill_then_hit(self):
        bed = self._bed()
        manager = bed.pools[0]
        drive(bed.env, bed.shop.create(experiment_request(32)))
        assert manager.misses == 1 and manager.hits == 0
        assert manager.refills_started == 1
        bed.env.run()  # let the background refill finish
        assert manager.pooled_vms >= 1

        ad = drive(bed.env, bed.shop.create(experiment_request(32)))
        assert manager.hits == 1
        assert ad["speculative"] is True
        assert str(ad["vmid"]).startswith("vmshop-vm-")

    def test_hit_adopts_shop_vmid(self):
        bed = self._bed()
        plant = bed.plants[0]
        drive(bed.env, bed.shop.create(experiment_request(32)))
        bed.env.run()
        ad = drive(bed.env, bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        vm = plant.infosys.get(vmid)
        assert vm.vmid == vmid
        assert vm.classad["vmid"] == vmid
        assert vm.classad["client"] == "invigo"
        # The adopted VM is fully routable: query and destroy work.
        status = drive(bed.env, bed.shop.query(vmid))
        assert status["status"] == "running"
        drive(bed.env, bed.shop.destroy(vmid))
        assert plant.network_pool.free_count >= 0

    def test_pool_hit_latency_beats_cold_create(self):
        bed = self._bed()
        start = bed.env.now
        drive(bed.env, bed.shop.create(experiment_request(32)))
        cold = bed.env.now - start
        bed.env.run()
        start = bed.env.now
        drive(bed.env, bed.shop.create(experiment_request(32)))
        warm = bed.env.now - start
        assert warm < cold / 2

    def test_bid_discount_when_pool_warm(self):
        bed = self._bed()
        plant = bed.plants[0]
        request = experiment_request(32)
        cold_bid = plant.estimate(request)
        drive(bed.env, bed.shop.create(request))
        bed.env.run()
        warm_request = experiment_request(32)
        warm_bid = plant.estimate(warm_request)
        undiscounted = plant.cost_model.estimate(plant, warm_request)
        assert warm_bid == pytest.approx(
            undiscounted * plant.speculative.bid_discount
        )
        assert warm_bid < cold_bid

    def test_desired_target_tracks_arrival_rate(self):
        bed = self._bed(pool_max_target=4, pool_target_hit_rate=1.0)
        manager = bed.pools[0]
        key = ("dom", "os", None, "vmware")
        # One arrival: keep a single warm clone around.
        manager._observe(key)
        assert manager._desired_target(key) == 1
        # 1 arrival/s over the 120 s lead time: clamp to max_target.
        from collections import deque

        manager._arrivals[key] = deque(
            [0.0, 1.0, 2.0, 3.0], maxlen=manager.window
        )
        assert manager._desired_target(key) == 4
        # One arrival per 600 s: a single clone still suffices.
        manager._arrivals[key] = deque(
            [0.0, 600.0], maxlen=manager.window
        )
        assert manager._desired_target(key) == 1

    def test_fill_traffic_not_counted_as_demand(self):
        bed = self._bed()
        manager = bed.pools[0]
        drive(bed.env, bed.shop.create(experiment_request(32)))
        bed.env.run()  # refill creates pooled VMs through plant.create
        assert manager.hits + manager.misses == 1
        assert len(manager._arrivals) == 1

    def test_unpoolable_request_marked_dead(self):
        bed = build_testbed(
            seed=5,
            n_plants=1,
            memory_sizes=(64,),
            provisioning=ProvisioningConfig(speculative_pools=True),
        )
        manager = bed.pools[0]
        plant = bed.plants[0]
        # 32 MB has no golden image: the create fails downstream, and
        # the manager remembers the key is unpoolable (no pool built).
        from repro.core.errors import PlantError

        with pytest.raises(PlantError):
            drive(
                bed.env, plant.create(experiment_request(32), "vm-x")
            )
        assert len(manager._dead) == 1
        assert manager.pool_count == 0
        assert manager.misses == 1

    def test_drain_empties_all_pools(self):
        bed = self._bed()
        plant = bed.plants[0]
        drive(bed.env, bed.shop.create(experiment_request(32)))
        bed.env.run()
        pooled = bed.pools[0].pooled_vms
        assert pooled > 0
        drained = drive(bed.env, bed.pools[0].drain())
        assert drained == pooled
        assert bed.pools[0].pooled_vms == 0
        # Only the client's own VM remains.
        assert plant.active_vm_count() == 1

    def test_hit_rate(self):
        bed = self._bed()
        manager = bed.pools[0]
        assert manager.hit_rate == 0.0
        drive(bed.env, bed.shop.create(experiment_request(32)))
        bed.env.run()
        drive(bed.env, bed.shop.create(experiment_request(32)))
        assert manager.hit_rate == pytest.approx(0.5)


class TestDisabledLayerIsInvisible:
    def test_golden_trace_fingerprint_with_explicit_defaults(self):
        """An explicitly default-configured site reproduces the seed
        golden trajectory bit-identically (same workload and hash as
        tests/test_determinism.py)."""
        from tests.test_determinism import TestGoldenTrajectories

        bed = build_testbed(
            seed=11, n_plants=2, provisioning=ProvisioningConfig()
        )
        tracer = bed.attach_tracer()

        def client():
            for request in request_stream(32, 4):
                yield from bed.shop.create(request)

        bed.run(client())
        fp = hashlib.sha256(
            repr(
                [
                    (
                        e.time,
                        e.category,
                        e.message,
                        tuple(sorted(e.data.items())),
                    )
                    for e in tracer.events
                ]
            ).encode()
        ).hexdigest()
        assert fp == TestGoldenTrajectories.TRACE_FP

    def test_testbed_defaults_carry_no_machinery(self):
        bed = build_testbed(seed=11, n_plants=2)
        assert not bed.provisioning.enabled
        assert bed.pools == []
        assert all(h.state_cache is None for h in bed.hosts)
        assert all(p.speculative is None for p in bed.plants)
        for line_list in bed.lines.values():
            assert all(not l.coalesce_transfers for l in line_list)
