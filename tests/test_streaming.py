"""Mergeable streaming summaries: the exact-merge contract.

:mod:`repro.analysis.streaming` backs the sharded megaload runs, so
these tests pin the properties the coordinator relies on:

* **sketch accuracy** — quantiles within ``rel_err`` of the exact
  *nearest-rank* quantile, on constant, bimodal, and heavy-tailed
  streams, plus underflow/overflow samples;
* **exact merge** — for *any* split of a stream into parts, merging
  per-part summaries (in any association/order) is bit-identical —
  serialized state included — to summarizing the unsplit stream;
* **exact moments** — mean matches ``math.fsum`` to the last ulp and
  merged halves report identical floats to the whole;
* **round-trips** — ``to_state``/``from_state`` preserve signatures;
* **guard rails** — config-mismatch merges and bad samples raise.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.streaming import (
    ExactSum,
    Moments,
    QuantileSketch,
    StreamSummary,
    WorkloadSummary,
)


def nearest_rank(sorted_values, q):
    """Exact nearest-rank quantile (the sketch's convention)."""
    rank = max(0, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[rank]


def _streams():
    rng = random.Random(2004)
    constant = [42.0] * 257
    bimodal = [
        rng.gauss(5.0, 0.5) if rng.random() < 0.7 else rng.gauss(400.0, 20.0)
        for _ in range(2000)
    ]
    heavy = [rng.paretovariate(1.3) for _ in range(2000)]
    return {
        "constant": constant,
        "bimodal": [abs(v) for v in bimodal],
        "heavy_tail": heavy,
    }


class TestQuantileSketchAccuracy:
    @pytest.mark.parametrize("name", sorted(_streams()))
    @pytest.mark.parametrize("q", [0.01, 0.25, 0.50, 0.95, 0.99, 1.0])
    def test_within_rel_err_of_nearest_rank(self, name, q):
        values = _streams()[name]
        sk = QuantileSketch(lo=1e-3, hi=1e6, rel_err=0.01)
        for v in values:
            sk.add(v)
        exact = nearest_rank(sorted(values), q)
        got = sk.quantile(q)
        assert got == pytest.approx(exact, rel=0.0101)

    def test_constant_stream_is_exact_to_rel_err(self):
        sk = QuantileSketch()
        for _ in range(100):
            sk.add(42.0)
        # All mass in one bin; min/max clamping pins both ends.
        assert sk.quantile(0.0) == pytest.approx(42.0, rel=0.01)
        assert sk.quantile(1.0) == 42.0  # clamped to observed max

    def test_underflow_and_overflow_buckets(self):
        sk = QuantileSketch(lo=1.0, hi=100.0, rel_err=0.05)
        for v in (0.0, 0.25, 10.0, 5000.0):
            sk.add(v)
        # Underflow reads report the sub-``lo`` bin; overflow reads
        # fall back to the exact observed maximum.
        assert 0.0 <= sk.quantile(0.0) <= sk.lo
        assert sk.quantile(1.0) == 5000.0
        assert sk.count == 4

    def test_empty_and_bounds(self):
        sk = QuantileSketch()
        assert math.isnan(sk.quantile(0.5))
        with pytest.raises(ValueError):
            sk.quantile(1.5)
        with pytest.raises(ValueError):
            sk.add(-1.0)
        with pytest.raises(ValueError):
            sk.add(math.nan)
        with pytest.raises(ValueError):
            QuantileSketch(lo=5.0, hi=1.0)
        with pytest.raises(ValueError):
            QuantileSketch(rel_err=1.5)


class TestExactMerge:
    @pytest.mark.parametrize("name", sorted(_streams()))
    @pytest.mark.parametrize("parts", [2, 3, 7])
    def test_any_split_merges_to_identical_state(self, name, parts):
        values = _streams()[name]
        rng = random.Random(7 * parts)

        whole = StreamSummary()
        for v in values:
            whole.add(v)

        shards = [StreamSummary() for _ in range(parts)]
        for v in values:
            shards[rng.randrange(parts)].add(v)
        rng.shuffle(shards)  # merge order must not matter
        merged = shards[0]
        for s in shards[1:]:
            merged.merge(s)

        assert merged.state_signature() == whole.state_signature()
        for q in (0.01, 0.5, 0.95, 0.99):
            assert merged.quantile(q) == whole.quantile(q)
        assert merged.mean == whole.mean
        assert merged.moments.variance == whole.moments.variance

    def test_merge_is_associative(self):
        values = _streams()["heavy_tail"]
        a, b, c = StreamSummary(), StreamSummary(), StreamSummary()
        for i, v in enumerate(values):
            (a, b, c)[i % 3].add(v)

        def dup(s):
            return StreamSummary.from_state(s.to_state())

        left = dup(a)
        left.merge(b)
        left.merge(c)
        bc = dup(b)
        bc.merge(c)
        right = dup(a)
        right.merge(bc)
        assert left.state_signature() == right.state_signature()

    def test_config_mismatch_rejected(self):
        a = QuantileSketch(rel_err=0.01)
        b = QuantileSketch(rel_err=0.02)
        with pytest.raises(ValueError, match="different configs"):
            a.merge(b)


class TestMoments:
    def test_mean_matches_fsum_exactly(self):
        rng = random.Random(11)
        values = [rng.uniform(1e-6, 1e6) for _ in range(5000)]
        m = Moments()
        for v in values:
            m.add(v)
        assert m.n == len(values)
        assert m.mean == math.fsum(values) / len(values)
        assert m.minimum == min(values)
        assert m.maximum == max(values)

    def test_merged_halves_report_identical_floats(self):
        rng = random.Random(12)
        values = [rng.expovariate(0.1) for _ in range(3001)]
        whole = Moments()
        for v in values:
            whole.add(v)
        left, right = Moments(), Moments()
        for i, v in enumerate(values):
            (left if i % 2 else right).add(v)
        left.merge(right)
        assert left.mean == whole.mean
        assert left.variance == whole.variance
        assert left.std == whole.std
        assert left.to_state() == whole.to_state()

    def test_variance_against_two_pass(self):
        rng = random.Random(13)
        values = [rng.gauss(100.0, 7.0) for _ in range(999)]
        m = Moments()
        for v in values:
            m.add(v)
        mean = math.fsum(values) / len(values)
        twopass = math.fsum((v - mean) ** 2 for v in values) / (
            len(values) - 1
        )
        assert m.variance == pytest.approx(twopass, rel=1e-12)

    def test_empty_and_guards(self):
        m = Moments()
        assert math.isnan(m.mean)
        assert math.isnan(m.variance)
        assert math.isnan(m.minimum)
        with pytest.raises(ValueError):
            m.add(math.inf)
        single = Moments()
        single.add(3.5)
        assert single.variance == 0.0


class TestExactSum:
    def test_representation_is_split_invariant(self):
        rng = random.Random(21)
        values = [rng.uniform(-1e9, 1e9) for _ in range(500)]
        whole = ExactSum()
        for v in values:
            whole.add(v)
        parts = [ExactSum() for _ in range(5)]
        for i, v in enumerate(values):
            parts[i % 5].add(v)
        merged = parts[3]
        for i in (1, 4, 0, 2):
            merged.merge(parts[i])
        # Not just the same value — the same (num, shift) pair.
        assert merged.as_pair() == whole.as_pair()
        assert whole.value == math.fsum(values)

    def test_add_square_is_exact(self):
        s = ExactSum()
        s.add_square(0.1)
        # (0.1 as float)^2 exactly, not the rounded float 0.1*0.1.
        n, d = (0.1).as_integer_ratio()
        assert s.as_pair()[0] / (1 << s.as_pair()[1]) == pytest.approx(
            (n * n) / (d * d)
        )

    def test_round_trip(self):
        s = ExactSum()
        for v in (1.5, -2.25, 1e-300, 3e200):
            s.add(v)
        again = ExactSum.from_pair(s.as_pair())
        assert again.as_pair() == s.as_pair()
        assert again.value == s.value


class TestWorkloadSummary:
    def _filled(self, seed=31):
        rng = random.Random(seed)
        w = WorkloadSummary()
        for _ in range(400):
            tenant = rng.choice(("interactive", "batch", "crowd"))
            if rng.random() < 0.05:
                w.record_failed(tenant)
            else:
                w.record_ok(
                    tenant,
                    rng.expovariate(0.02),
                    deadline_s=60.0 if tenant == "interactive" else None,
                )
        return w

    def test_counters_and_deadline_misses(self):
        w = WorkloadSummary()
        w.record_ok("a", 10.0, deadline_s=60.0)
        w.record_ok("a", 90.0, deadline_s=60.0)
        w.record_ok("b", 5.0)
        w.record_failed("b")
        assert w.counters["a"] == {
            "ok": 2,
            "failed": 0,
            "deadline_miss": 1,
            "shed": 0,
        }
        w.record_shed("a")
        assert w.counters["a"]["shed"] == 1
        assert w.total("shed") == 1
        assert w.total("ok") == 3
        assert w.total("failed") == 1
        assert w.total("deadline_miss") == 1

    def test_sharded_merge_bit_identical(self):
        rng = random.Random(32)
        events = []
        for _ in range(600):
            tenant = rng.choice(("t0", "t1"))
            events.append((tenant, rng.expovariate(0.05)))
        whole = WorkloadSummary()
        shards = [WorkloadSummary() for _ in range(4)]
        for i, (tenant, lat) in enumerate(events):
            whole.record_ok(tenant, lat, deadline_s=30.0)
            shards[i % 4].record_ok(tenant, lat, deadline_s=30.0)
        merged = shards[2]
        for i in (0, 3, 1):
            merged.merge(shards[i])
        assert merged.state_signature() == whole.state_signature()
        assert merged.overall().state_signature() == (
            whole.overall().state_signature()
        )
        assert merged.tenant_rows() == whole.tenant_rows()

    def test_state_round_trip(self):
        w = self._filled()
        again = WorkloadSummary.from_state(w.to_state())
        assert again.state_signature() == w.state_signature()
        assert again.tenant_rows() == w.tenant_rows()

    def test_merge_grows_tenant_set(self):
        a, b = WorkloadSummary(), WorkloadSummary()
        a.record_ok("x", 1.0)
        b.record_ok("y", 2.0)
        a.merge(b)
        assert sorted(a.tenants) == ["x", "y"]
        assert a.total("ok") == 2
