"""MatchIndex vs. brute-force equivalence, caches, and satellites.

The warehouse's indexed/memoized matching path must be bit-identical
to the brute-force :func:`select_golden` reference: same winning
image, same satisfied/residual tuples, for every randomized
(DAG, warehouse, hardware) combination — including after interleaved
publish/unpublish.  The property suite below covers chains, diamonds,
wide fan-outs, random DAGs, signature conflicts and every hardware/os
rejection axis, and asserts well over 200 randomized cases.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import pytest

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.errors import DAGError
from repro.core.matching import select_golden
from repro.core.matchindex import MatchIndex
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage, VMWarehouse

OSES = ("rh8", "deb3")
VM_TYPES = ("vmware", "uml")


def action(i: int, command: Optional[str] = None) -> Action:
    return Action(f"a{i}", command=command or f"cmd{i}")


# -- random DAG shapes -------------------------------------------------------
def chain_dag(rng: random.Random, n: int) -> ConfigDAG:
    return ConfigDAG.from_sequence(action(i) for i in range(n))


def diamond_dag(rng: random.Random, n: int) -> ConfigDAG:
    """Source → middle layer → sink (classic diamond, width n-2)."""
    n = max(n, 3)
    dag = ConfigDAG()
    for i in range(n):
        dag.add_action(action(i))
    for i in range(1, n - 1):
        dag.add_edge("a0", f"a{i}")
        dag.add_edge(f"a{i}", f"a{n - 1}")
    return dag


def fanout_dag(rng: random.Random, n: int) -> ConfigDAG:
    """One root with n-1 independent children (maximal width)."""
    dag = ConfigDAG()
    for i in range(n):
        dag.add_action(action(i))
    for i in range(1, n):
        dag.add_edge("a0", f"a{i}")
    return dag


def random_dag(rng: random.Random, n: int) -> ConfigDAG:
    dag = ConfigDAG()
    for i in range(n):
        dag.add_action(action(i))
    for j in range(1, n):
        for i in range(j):
            if rng.random() < 0.3:
                dag.add_edge(f"a{i}", f"a{j}")
    return dag


DAG_SHAPES = (chain_dag, diamond_dag, fanout_dag, random_dag)


def random_prefix_sequence(
    rng: random.Random, dag: ConfigDAG, keep: float = 0.6
) -> List[str]:
    """A random linear extension of a random downward-closed subset."""
    chosen: List[str] = []
    have = set()
    for name in dag.topological_sort():
        if all(p in have for p in dag.predecessors(name)):
            if rng.random() < keep:
                chosen.append(name)
                have.add(name)
    # Random linear extension of the chosen ideal.
    order: List[str] = []
    remaining = set(chosen)
    while remaining:
        ready = sorted(
            n for n in remaining
            if all(p not in remaining for p in dag.predecessors(n))
        )
        pick = rng.choice(ready)
        order.append(pick)
        remaining.discard(pick)
    return order


def perturb(
    rng: random.Random, dag: ConfigDAG, names: List[str]
) -> Tuple[str, List[Action]]:
    """Derive a (possibly broken) performed sequence from a prefix."""
    kind = rng.choice(
        ("valid", "shuffled", "foreign", "gap", "conflict")
    )
    actions = [dag.action(n) for n in names]
    if kind == "shuffled" and len(actions) > 1:
        rng.shuffle(actions)
    elif kind == "foreign":
        actions.append(Action("zz-foreign", command="zzz"))
    elif kind == "gap" and actions:
        del actions[rng.randrange(len(actions))]
    elif kind == "conflict" and actions:
        i = rng.randrange(len(actions))
        actions[i] = Action(actions[i].name, command="conflicting!")
    return kind, actions


def random_image(
    rng: random.Random, dag: ConfigDAG, idx: int
) -> GoldenImage:
    names = random_prefix_sequence(rng, dag)
    _, performed = perturb(rng, dag, names)
    return GoldenImage(
        image_id=f"img{idx:03d}",
        vm_type=rng.choice(VM_TYPES),
        os=rng.choice(OSES),
        hardware=HardwareSpec(
            isa=rng.choice(("x86", "x86_64")),
            memory_mb=rng.choice((32, 64)),
            disk_gb=rng.choice((2.0, 4.0, 8.0)),
            cpus=rng.choice((1, 2)),
        ),
        performed=tuple(performed),
        memory_state_mb=float(rng.choice((0, 32))),
    )


def assert_equivalent(
    wh: VMWarehouse,
    dag: ConfigDAG,
    hardware: HardwareSpec,
    os: str,
    vm_type: Optional[str],
) -> int:
    """Indexed+memoized result == brute force; returns 1 (case count)."""
    brute_image, brute_result, _ = select_golden(
        wh.images(vm_type), dag, hardware, os, vm_type
    )
    fast_image, fast_result = wh.select(dag, hardware, os, vm_type)
    if brute_image is None:
        assert fast_image is None and fast_result is None
    else:
        assert fast_image is brute_image
        assert brute_result is not None and fast_result is not None
        assert fast_result.image_id == brute_result.image_id
        assert fast_result.satisfied == brute_result.satisfied
        assert fast_result.residual == brute_result.residual
        assert fast_result.matches and brute_result.matches
    # Memoized replay must serve the identical object.
    again_image, again_result = wh.select(dag, hardware, os, vm_type)
    assert again_image is fast_image and again_result is fast_result
    return 1


class TestBruteForceEquivalence:
    def test_randomized_equivalence_suite(self):
        rng = random.Random(20040)
        cases = 0
        for round_no in range(40):
            shape = DAG_SHAPES[round_no % len(DAG_SHAPES)]
            dag = shape(rng, rng.randrange(3, 10))
            wh = VMWarehouse(
                random_image(rng, dag, i)
                for i in range(rng.randrange(4, 14))
            )
            queries = [
                (
                    HardwareSpec(
                        isa=rng.choice(("x86", "x86_64")),
                        memory_mb=rng.choice((32, 64)),
                        disk_gb=rng.choice((2.0, 4.0)),
                        cpus=rng.choice((1, 2)),
                    ),
                    rng.choice(OSES),
                    rng.choice((None,) + VM_TYPES),
                )
                for _ in range(4)
            ]
            for hardware, os, vm_type in queries:
                cases += assert_equivalent(wh, dag, hardware, os, vm_type)
            # Interleaved publish/unpublish must stay equivalent: drop
            # the current winner (if any), add a fresh image, recheck.
            hardware, os, vm_type = queries[0]
            winner, _ = wh.select(dag, hardware, os, vm_type)
            if winner is not None:
                wh.unpublish(winner.image_id)
                cases += assert_equivalent(wh, dag, hardware, os, vm_type)
            wh.publish(random_image(rng, dag, 900 + round_no))
            for hardware, os, vm_type in queries[:2]:
                cases += assert_equivalent(wh, dag, hardware, os, vm_type)
        assert cases >= 200, f"only {cases} randomized cases exercised"

    def test_deep_prefix_wins_and_id_breaks_ties(self):
        dag = ConfigDAG.from_sequence(action(i) for i in range(4))
        hw = HardwareSpec(memory_mb=32)
        deep = [action(0), action(1), action(2)]
        shallow = [action(0)]
        wh = VMWarehouse(
            [
                GoldenImage("b-deep", "vmware", "rh8", hw,
                            performed=tuple(deep)),
                GoldenImage("a-deep", "vmware", "rh8", hw,
                            performed=tuple(deep)),
                GoldenImage("a-shallow", "vmware", "rh8", hw,
                            performed=tuple(shallow)),
            ]
        )
        image, result = wh.select(dag, hw, "rh8", "vmware")
        assert image.image_id == "a-deep"  # depth first, then id
        assert result.residual == ("a3",)
        assert_equivalent(wh, dag, hw, "rh8", "vmware")

    def test_memo_invalidated_by_generation(self):
        dag = ConfigDAG.from_sequence([action(0), action(1)])
        hw = HardwareSpec(memory_mb=32)
        wh = VMWarehouse(
            [GoldenImage("img-a", "vmware", "rh8", hw,
                         performed=(action(0),))]
        )
        first, _ = wh.select(dag, hw, "rh8", "vmware")
        assert first.image_id == "img-a"
        gen = wh.generation
        wh.publish(
            GoldenImage("img-0", "vmware", "rh8", hw,
                        performed=(action(0), action(1)))
        )
        assert wh.generation == gen + 1
        better, result = wh.select(dag, hw, "rh8", "vmware")
        assert better.image_id == "img-0"
        assert result.residual == ()
        wh.unpublish("img-0")
        back, _ = wh.select(dag, hw, "rh8", "vmware")
        assert back.image_id == "img-a"

    def test_memo_shared_across_plants_counts_hits(self):
        dag = ConfigDAG.from_sequence([action(0)])
        hw = HardwareSpec(memory_mb=32)
        wh = VMWarehouse(
            [GoldenImage("img-a", "vmware", "rh8", hw,
                         performed=(action(0),))]
        )
        for _ in range(5):  # five plants bidding on one request
            wh.select(dag, hw, "rh8", "vmware")
        assert wh.match_stats["queries"] == 5
        assert wh.match_stats["memo_hits"] == 4
        assert wh.index_stats["queries"] == 1


class TestMatchIndexMaintenance:
    def test_add_remove_prunes_groups(self):
        index = MatchIndex()
        hw = HardwareSpec(memory_mb=32)
        img = GoldenImage("x", "vmware", "rh8", hw,
                          performed=(action(0),))
        index.add(img)
        assert len(index) == 1
        index.remove("x")
        assert len(index) == 0
        assert index._buckets == {}
        assert index._locator == {}

    def test_bucket_rejection_never_touches_dag(self):
        index = MatchIndex()
        hw = HardwareSpec(memory_mb=32)
        index.add(
            GoldenImage("x", "vmware", "windows", hw,
                        performed=(action(0),))
        )
        dag = ConfigDAG.from_sequence([action(0)])
        image, result = index.select(dag, hw, "rh8", "vmware")
        assert image is None and result is None
        assert index.stats["profiles_tested"] == 0
        assert index.stats["images_skipped_by_bucket"] == 1


class TestDagCacheInvalidation:
    def test_mutation_refreshes_structural_caches(self):
        dag = ConfigDAG.from_sequence([action(0), action(1)])
        assert dag.action_name_set() == {"a0", "a1"}
        fp = dag.fingerprint()
        assert dag.is_prefix_set(["a0"])
        dag.add_action(action(2)).add_edge("a1", "a2")
        assert dag.action_name_set() == {"a0", "a1", "a2"}
        assert dag.fingerprint() != fp
        assert dag.topological_sort() == ["a0", "a1", "a2"]
        assert dag.ancestor_masks()["a2"] == 0b011

    def test_handler_mutation_invalidates_structure(self):
        dag = ConfigDAG.from_sequence([action(0)])
        handler = ConfigDAG.from_sequence([Action("fix", command="f")])
        dag.attach_handler("a0", handler)
        before = dag.structure()
        fp = dag.fingerprint()
        handler.add_action(Action("fix2", command="g"))
        assert dag.structure() != before
        assert dag.fingerprint() != fp

    def test_residual_and_validate_use_cached_topo(self):
        dag = ConfigDAG.from_sequence(action(i) for i in range(5))
        assert dag.residual_after(["a0", "a1"]) == ["a2", "a3", "a4"]
        with pytest.raises(DAGError):
            dag.residual_after(["a1"])
