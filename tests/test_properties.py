"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.actions import Action
from repro.core.classad import ClassAd
from repro.core.dag import ConfigDAG
from repro.core.dagxml import dag_from_xml, dag_to_xml
from repro.core.matching import (
    partial_order_test,
    prefix_test,
    subset_test,
)
from repro.analysis.histograms import histogram
from repro.sim.kernel import Environment
from repro.sim.network import FairShareLink
from repro.sim.rng import RngHub
from repro.vnet.hostonly import HostOnlyNetworkPool
from repro.core.errors import VNetError

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)


@st.composite
def dags(draw, max_nodes=8):
    """Random DAGs built by only adding forward edges."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    node_names = [f"n{i}" for i in range(n)]
    dag = ConfigDAG()
    for name in node_names:
        dag.add_action(Action(name, command=f"cmd-{name}"))
    # Edges only from lower to higher index → acyclic by construction.
    for j in range(1, n):
        preds = draw(
            st.lists(
                st.integers(min_value=0, max_value=j - 1),
                unique=True,
                max_size=3,
            )
        )
        for i in preds:
            dag.add_edge(node_names[i], node_names[j])
    return dag


@st.composite
def dag_with_prefix(draw):
    """A DAG plus one of its valid prefix subsets."""
    dag = draw(dags())
    order = dag.topological_sort()
    # Greedily build a prefix: include a node only if all its
    # predecessors are included.
    included = []
    for name in order:
        if set(dag.predecessors(name)) <= set(included) and draw(
            st.booleans()
        ):
            included.append(name)
    return dag, included


# ---------------------------------------------------------------------------
# DAG invariants
# ---------------------------------------------------------------------------


class TestDagProperties:
    @given(dags())
    @settings(max_examples=60)
    def test_toposort_is_permutation_respecting_edges(self, dag):
        order = dag.topological_sort()
        assert sorted(order) == sorted(dag.actions)
        position = {name: i for i, name in enumerate(order)}
        for u, v in dag.edges():
            assert position[u] < position[v]

    @given(dag_with_prefix())
    @settings(max_examples=60)
    def test_prefix_plus_residual_is_whole_dag(self, case):
        dag, prefix = case
        assert dag.is_prefix_set(prefix)
        residual = dag.residual_after(prefix)
        assert sorted(residual + prefix) == sorted(dag.actions)

    @given(dag_with_prefix())
    @settings(max_examples=60)
    def test_residual_respects_partial_order(self, case):
        dag, prefix = case
        residual = dag.residual_after(prefix)
        position = {name: i for i, name in enumerate(residual)}
        for u, v in dag.edges():
            if u in position and v in position:
                assert position[u] < position[v]

    @given(dag_with_prefix())
    @settings(max_examples=60)
    def test_prefix_passes_all_three_matching_tests(self, case):
        dag, prefix = case
        # Prefixes listed in topological order satisfy every test.
        assert subset_test(prefix, dag)
        assert prefix_test(prefix, dag)
        assert partial_order_test(prefix, dag)

    @given(dags())
    @settings(max_examples=40)
    def test_xml_roundtrip_identity(self, dag):
        assert dag_from_xml(dag_to_xml(dag)) == dag

    @given(dags())
    @settings(max_examples=40)
    def test_ancestors_descendants_duality(self, dag):
        for name in dag.actions:
            for anc in dag.ancestors(name):
                assert name in dag.descendants(anc)


# ---------------------------------------------------------------------------
# ClassAd invariants
# ---------------------------------------------------------------------------

scalar_values = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet=string.printable, max_size=20),
    st.booleans(),
)


class TestClassAdProperties:
    @given(
        st.dictionaries(
            st.text(
                alphabet=string.ascii_letters, min_size=1, max_size=10
            ),
            scalar_values,
            max_size=8,
        )
    )
    @settings(max_examples=80)
    def test_serialization_roundtrip(self, attrs):
        ad = ClassAd(attrs)
        back = ClassAd.from_string(ad.to_string())
        assert back == ad

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=40)
    def test_arithmetic_agrees_with_python(self, a, b):
        from repro.core.classad import evaluate

        assert evaluate(f"({a}) + ({b})") == a + b
        assert evaluate(f"({a}) * ({b})") == a * b
        assert evaluate(f"({a}) < ({b})") == (a < b)


# ---------------------------------------------------------------------------
# Kernel / network invariants
# ---------------------------------------------------------------------------


class TestKernelProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_timeouts_fire_in_order(self, delays):
        env = Environment()
        fired = []

        def waiter(env, delay):
            yield env.timeout(delay)
            fired.append(delay)

        for delay in delays:
            env.process(waiter(env, delay))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=50.0),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fair_link_conserves_work(self, sizes):
        env = Environment()
        link = FairShareLink(env, "l", bandwidth_mbps=5.0)
        finished = []

        def flow(env, size):
            yield link.transfer(size)
            finished.append(env.now)

        for size in sizes:
            env.process(flow(env, size))
        env.run()
        assert len(finished) == len(sizes)
        total_time = max(finished)
        # Work conservation: all data moves at exactly link rate while
        # busy, so completion time equals total bytes / bandwidth.
        assert abs(total_time - sum(sizes) / 5.0) < 1e-6


class TestRngProperties:
    @given(st.integers(0, 2**31), names)
    @settings(max_examples=40)
    def test_streams_reproducible(self, seed, name):
        a = RngHub(seed).stream(name).random()
        b = RngHub(seed).stream(name).random()
        assert a == b

    @given(st.integers(0, 2**31))
    @settings(max_examples=20)
    def test_streams_independent(self, seed):
        hub = RngHub(seed)
        # Drawing from one stream must not perturb another.
        first = RngHub(seed).stream("b").random()
        hub.stream("a").random()
        assert hub.stream("b").random() == first


# ---------------------------------------------------------------------------
# Histogram invariants
# ---------------------------------------------------------------------------


class TestHistogramProperties:
    @given(
        st.lists(
            st.floats(min_value=-1000, max_value=1000), max_size=100
        ),
        st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=60)
    def test_counts_conserve_samples(self, values, n_bins):
        centers = [float(5 + 10 * i) for i in range(n_bins)]
        hist = histogram(values, centers)
        assert sum(hist.counts) == len(values)
        if values:
            assert abs(sum(hist.frequencies) - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# VNET isolation invariant
# ---------------------------------------------------------------------------


class TestVNetProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["d0", "d1", "d2", "d3", "d4", "d5"]),
                st.booleans(),  # attach (True) / detach-last (False)
            ),
            max_size=40,
        ),
        st.sampled_from(["sticky", "refcount"]),
    )
    @settings(max_examples=60)
    def test_isolation_holds_under_any_sequence(self, ops, policy):
        pool = HostOnlyNetworkPool("p", count=3, release_policy=policy)
        attached = []
        counter = 0
        for domain, is_attach in ops:
            if is_attach:
                counter += 1
                try:
                    pool.attach(domain, f"vm{counter}")
                    attached.append(f"vm{counter}")
                except VNetError:
                    pass  # pool exhausted: acceptable, never corrupt
            elif attached:
                pool.detach(attached.pop())
            pool.check_isolation()
        # Domains mapped to networks are always distinct.
        nets = [
            pool.network_of(d)
            for d in ("d0", "d1", "d2", "d3", "d4", "d5")
            if pool.network_of(d) is not None
        ]
        ids = [n.network_id for n in nets]
        assert len(ids) == len(set(ids))


# ---------------------------------------------------------------------------
# Matching optimality and warehouse roundtrips
# ---------------------------------------------------------------------------

from repro.core.matching import match_image, select_golden
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage, VMWarehouse


@st.composite
def warehouses_for(draw, dag):
    """Golden images whose performed lists are prefixes of ``dag``."""
    order = dag.topological_sort()
    images = []
    count = draw(st.integers(min_value=0, max_value=4))
    for i in range(count):
        included = []
        for name in order:
            if set(dag.predecessors(name)) <= set(included) and draw(
                st.booleans()
            ):
                included.append(name)
        images.append(
            GoldenImage(
                image_id=f"img{i}",
                vm_type="vmware",
                os="os",
                hardware=HardwareSpec(memory_mb=32),
                performed=tuple(dag.action(n) for n in included),
            )
        )
    return images


class TestMatchingProperties:
    @given(dags().flatmap(lambda d: st.tuples(st.just(d), warehouses_for(d))))
    @settings(max_examples=60)
    def test_select_golden_is_optimal(self, case):
        dag, images = case
        hw = HardwareSpec(memory_mb=32)
        best, result, all_results = select_golden(
            images, dag, hw, "os", "vmware"
        )
        matches = [r for r in all_results if r.matches]
        if not images:
            assert best is None
            return
        # Every prefix image matches (they were built as prefixes).
        assert len(matches) == len(images)
        if best is not None:
            assert result.depth == max(r.depth for r in matches)
            # satisfied + residual partitions the request DAG.
            assert sorted(result.satisfied + result.residual) == sorted(
                dag.actions
            )

    @given(dags().flatmap(lambda d: st.tuples(st.just(d), warehouses_for(d))))
    @settings(max_examples=40)
    def test_match_image_residual_is_executable_order(self, case):
        dag, images = case
        hw = HardwareSpec(memory_mb=32)
        for image in images:
            result = match_image(image, dag, hw, "os")
            assert result.matches
            done = set(result.satisfied)
            for name in result.residual:
                assert set(dag.predecessors(name)) <= done
                done.add(name)


class TestWarehouseProperties:
    @given(dags())
    @settings(max_examples=40)
    def test_golden_image_xml_roundtrip(self, dag):
        actions = tuple(
            dag.action(n) for n in dag.topological_sort()
        )
        image = GoldenImage(
            image_id="img",
            vm_type="vmware",
            os="some-os",
            hardware=HardwareSpec(memory_mb=64, disk_gb=8.0),
            performed=actions,
            memory_state_mb=64.0,
        )
        assert GoldenImage.from_xml(image.to_xml()) == image

    @given(st.lists(st.integers(1, 1024), min_size=0, max_size=5, unique=True))
    @settings(max_examples=30)
    def test_warehouse_dump_load_roundtrip(self, sizes):
        from repro.workloads.requests import golden_image

        wh = VMWarehouse(
            golden_image(m, image_id=f"img-{m}") for m in sizes
        )
        back = VMWarehouse.load_xml(wh.dump_xml())
        assert len(back) == len(wh)
        for m in sizes:
            assert back.get(f"img-{m}") == wh.get(f"img-{m}")
