"""Unit tests for the bidding cost models."""

from typing import Optional

import pytest

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.cost.models import (
    CompositeCost,
    MemoryAvailableCost,
    NetworkComputeCost,
    PlantView,
)


class FakePlant(PlantView):
    """Scriptable plant state for cost-model tests."""

    def __init__(
        self,
        vms: int = 0,
        committed: int = 0,
        host_memory: int = 1536,
        capacity: Optional[int] = None,
        fresh_domains=(),
        full_domains=(),
    ):
        self._vms = vms
        self._committed = committed
        self._host_memory = host_memory
        self._capacity = capacity
        self._fresh = set(fresh_domains)
        self._full = set(full_domains)

    def active_vm_count(self):
        return self._vms

    def committed_memory_mb(self):
        return self._committed

    def host_memory_mb(self):
        return self._host_memory

    def vm_capacity(self):
        return self._capacity

    def network_would_be_fresh(self, domain):
        return domain in self._fresh

    def network_has_capacity(self, domain):
        return domain not in self._full


def request(mem=32, domain="d"):
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(
            os="os", dag=ConfigDAG.from_sequence([Action("a")])
        ),
        network=NetworkSpec(domain=domain),
    )


class TestNetworkComputeCost:
    def test_fresh_domain_pays_network_cost(self):
        model = NetworkComputeCost(50.0, 4.0)
        plant = FakePlant(vms=0, fresh_domains={"d"})
        assert model.estimate(plant, request()) == 50.0

    def test_existing_domain_pays_compute_only(self):
        model = NetworkComputeCost(50.0, 4.0)
        plant = FakePlant(vms=7)
        assert model.estimate(plant, request()) == 28.0

    def test_combined_cost(self):
        model = NetworkComputeCost(50.0, 4.0)
        plant = FakePlant(vms=3, fresh_domains={"d"})
        assert model.estimate(plant, request()) == 62.0

    def test_crossover_at_thirteen(self):
        """The Section 3.4 arithmetic: A wins through its 13th VM."""
        model = NetworkComputeCost(50.0, 4.0)
        for k in range(13):  # A hosts k VMs before the request
            bid_a = model.estimate(FakePlant(vms=k), request())
            bid_b = model.estimate(
                FakePlant(vms=0, fresh_domains={"d"}), request()
            )
            if k < 13:
                assert (bid_a < bid_b) == (k * 4 < 50)
        assert model.estimate(FakePlant(vms=13), request()) > 50.0

    def test_vm_capacity_declines(self):
        model = NetworkComputeCost()
        plant = FakePlant(vms=32, capacity=32)
        assert model.estimate(plant, request()) is None

    def test_network_exhaustion_declines(self):
        model = NetworkComputeCost()
        plant = FakePlant(full_domains={"d"})
        assert model.estimate(plant, request()) is None

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            NetworkComputeCost(network_cost=-1)


class TestMemoryAvailableCost:
    def test_emptier_plant_bids_lower(self):
        model = MemoryAvailableCost()
        empty = FakePlant(committed=0)
        loaded = FakePlant(committed=512)
        assert model.estimate(empty, request()) < model.estimate(
            loaded, request()
        )

    def test_bid_scales_with_request_size(self):
        model = MemoryAvailableCost()
        plant = FakePlant(committed=0)
        assert model.estimate(plant, request(mem=256)) > model.estimate(
            plant, request(mem=32)
        )

    def test_overcommit_allowed_up_to_factor(self):
        model = MemoryAvailableCost(reserve_mb=256, overcommit=2.0)
        usable = 1536 - 256
        plant = FakePlant(committed=int(usable * 1.5))
        # 1.5x + small request is under 2x: still bids (cost > scale).
        bid = model.estimate(plant, request(mem=32))
        assert bid is not None and bid > 100.0

    def test_beyond_overcommit_declines(self):
        model = MemoryAvailableCost(reserve_mb=256, overcommit=2.0)
        usable = 1536 - 256
        plant = FakePlant(committed=2 * usable)
        assert model.estimate(plant, request(mem=32)) is None

    def test_tiny_host_declines(self):
        model = MemoryAvailableCost(reserve_mb=256)
        plant = FakePlant(host_memory=128)
        assert model.estimate(plant, request()) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryAvailableCost(scale=0)
        with pytest.raises(ValueError):
            MemoryAvailableCost(overcommit=0.5)


class TestCompositeCost:
    def test_weighted_sum(self):
        model = CompositeCost(
            [NetworkComputeCost(50, 4), NetworkComputeCost(0, 1)],
            weights=[1.0, 2.0],
        )
        plant = FakePlant(vms=5)
        assert model.estimate(plant, request()) == 20.0 + 10.0

    def test_any_decline_declines(self):
        model = CompositeCost(
            [NetworkComputeCost(), MemoryAvailableCost(overcommit=1.0)]
        )
        plant = FakePlant(committed=10_000)
        assert model.estimate(plant, request()) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CompositeCost([])
        with pytest.raises(ValueError):
            CompositeCost([NetworkComputeCost()], weights=[1.0, 2.0])
