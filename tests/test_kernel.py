"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestEvent:
    def test_event_starts_pending(self):
        env = Environment()
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self):
        env = Environment()
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self):
        env = Environment()
        ev = env.event().succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_before_trigger_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value

    def test_trigger_copies_state(self):
        env = Environment()
        src = env.event().succeed("payload")
        dst = env.event()
        dst.trigger(src)
        assert dst.ok and dst.value == "payload"


class TestTimeout:
    def test_timeout_fires_at_delay(self):
        env = Environment()
        results = []

        def proc(env):
            yield env.timeout(3.5)
            results.append(env.now)

        env.process(proc(env))
        env.run()
        assert results == [3.5]

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_timeout_value_passthrough(self):
        env = Environment()

        def proc(env):
            got = yield env.timeout(1, "hello")
            return got

        p = env.process(proc(env))
        env.run()
        assert p.value == "hello"

    def test_zero_delay_fires_immediately(self):
        env = Environment()

        def proc(env):
            yield env.timeout(0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 0.0


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert p.value == "done"
        assert not p.is_alive

    def test_sequential_timeouts_accumulate(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            yield env.timeout(3)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5.0

    def test_process_waits_on_process(self):
        env = Environment()

        def inner(env):
            yield env.timeout(4)
            return 7

        def outer(env):
            value = yield env.process(inner(env))
            return value * 2

        p = env.process(outer(env))
        env.run()
        assert p.value == 14

    def test_waiting_on_terminated_process_returns_value(self):
        env = Environment()

        def inner(env):
            yield env.timeout(1)
            return "early"

        def outer(env, target):
            yield env.timeout(5)
            value = yield target
            return (env.now, value)

        inner_proc = env.process(inner(env))
        p = env.process(outer(env, inner_proc))
        env.run()
        assert p.value == (5.0, "early")

    def test_exception_propagates_to_waiter(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("boom")

        def waiter(env, target):
            try:
                yield target
            except ValueError as exc:
                return f"caught {exc}"

        target = env.process(failing(env))
        p = env.process(waiter(env, target))
        env.run()
        assert p.value == "caught boom"

    def test_unhandled_failure_crashes_run(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise ValueError("unhandled")

        env.process(failing(env))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_yielding_non_event_kills_process(self):
        env = Environment()

        def bad(env):
            yield 42

        p = env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()
        assert not p.is_alive

    def test_non_generator_rejected(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                return (env.now, interrupt.cause)

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt("reason")

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert victim.value == (2.0, "reason")

    def test_interrupted_process_can_continue(self):
        env = Environment()

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            return env.now

        def killer(env, victim):
            yield env.timeout(2)
            victim.interrupt()

        victim = env.process(sleeper(env))
        env.process(killer(env, victim))
        env.run()
        assert victim.value == 3.0

    def test_interrupt_terminated_process_rejected(self):
        env = Environment()

        def quick(env):
            yield env.timeout(1)

        def late(env, victim):
            yield env.timeout(5)
            with pytest.raises(SimulationError):
                victim.interrupt()

        victim = env.process(quick(env))
        p = env.process(late(env, victim))
        env.run()
        assert p.ok

    def test_stale_wakeup_dropped_after_interrupt(self):
        # Interrupt a process in the same time step as its event fires:
        # it must see exactly one resumption (the Interrupt).
        env = Environment()
        wakeups = []

        def sleeper(env, ev):
            try:
                yield ev
                wakeups.append("value")
            except Interrupt:
                wakeups.append("interrupt")
            yield env.timeout(10)
            return wakeups

        def killer(env, victim, ev):
            yield env.timeout(1)
            ev.succeed("x")
            victim.interrupt()

        ev = env.event()
        victim = env.process(sleeper(env, ev))
        env.process(killer(env, victim, ev))
        env.run()
        assert victim.value in (["interrupt"], ["value"])
        assert len(victim.value) == 1


class TestConditions:
    def test_all_of_waits_for_all(self):
        env = Environment()

        def proc(env):
            yield env.all_of([env.timeout(2, "a"), env.timeout(5, "b")])
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5.0

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc(env):
            result = yield env.any_of(
                [env.timeout(2, "fast"), env.timeout(5, "slow")]
            )
            return (env.now, sorted(result.values()))

        p = env.process(proc(env))
        env.run()
        assert p.value == (2.0, ["fast"])

    def test_operator_composition(self):
        env = Environment()

        def proc(env):
            t1, t2 = env.timeout(1), env.timeout(2)
            yield t1 & t2
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 2.0

    def test_empty_all_of_fires_immediately(self):
        env = Environment()

        def proc(env):
            result = yield env.all_of([])
            return result

        p = env.process(proc(env))
        env.run()
        assert p.value == {}

    def test_all_of_failure_propagates(self):
        env = Environment()

        def failing(env):
            yield env.timeout(1)
            raise RuntimeError("component died")

        def proc(env):
            try:
                yield env.all_of(
                    [env.timeout(5), env.process(failing(env))]
                )
            except RuntimeError as exc:
                return str(exc)

        p = env.process(proc(env))
        env.run()
        assert p.value == "component died"

    def test_condition_rejects_foreign_events(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env2.timeout(1)])


class TestRun:
    def test_run_until_time_stops_clock(self):
        env = Environment()

        def proc(env):
            yield env.timeout(10)

        env.process(proc(env))
        env.run(until=4)
        assert env.now == 4.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_run_until_event_returns_value(self):
        env = Environment()

        def proc(env):
            yield env.timeout(2)
            return 99

        assert env.run(until=env.process(proc(env))) == 99

    def test_run_until_failed_event_raises(self):
        env = Environment()

        def proc(env):
            yield env.timeout(1)
            raise KeyError("nope")

        with pytest.raises(KeyError):
            env.run(until=env.process(proc(env)))

    def test_run_until_unreachable_event_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.run(until=env.event())

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(7)
        assert env.peek() == 7.0
        env2 = Environment()
        assert env2.peek() == float("inf")

    def test_determinism_same_seedless_structure(self):
        def build():
            env = Environment()
            log = []

            def worker(env, name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(10):
                env.process(worker(env, f"w{i}", (i * 3) % 7))
            env.run()
            return log

        assert build() == build()

    def test_ties_processed_in_schedule_order(self):
        env = Environment()
        log = []

        def worker(env, name):
            yield env.timeout(5)
            log.append(name)

        for name in ("a", "b", "c"):
            env.process(worker(env, name))
        env.run()
        assert log == ["a", "b", "c"]


class TestUntilBoundary:
    """Exact ``run(until=t)`` semantics (shared with shard mode)."""

    def test_until_processes_events_at_horizon(self):
        env = Environment()
        log = []

        def worker(env, name, delay):
            yield env.timeout(delay)
            log.append((env.now, name))

        env.process(worker(env, "before", 4))
        env.process(worker(env, "at", 5))
        env.process(worker(env, "after", 6))
        env.run(until=5.0)
        assert log == [(4.0, "before"), (5.0, "at")]
        assert env.now == 5.0

    def test_until_ties_at_horizon_respect_priority_and_order(self):
        env = Environment()
        log = []

        def sleeper(env, name):
            yield env.timeout(5)
            log.append(name)

        def interrupter(env, victim):
            yield env.timeout(5)
            log.append("int")
            victim.interrupt()

        def victim_proc(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                log.append("victim-interrupted")

        victim = env.process(victim_proc(env))
        env.process(sleeper(env, "a"))
        env.process(interrupter(env, victim))
        env.process(sleeper(env, "b"))
        env.run(until=5.0)
        # Everything at t=5 ran: the urgent interrupt queued by "int"
        # preempts the remaining normal-priority timeout at the same
        # time, so the victim resumes before "b".
        assert log == ["a", "int", "victim-interrupted", "b"]
        assert env.now == 5.0

    def test_until_advances_clock_past_drained_queue(self):
        env = Environment()
        env.timeout(2)
        env.run(until=50.0)
        assert env.now == 50.0

    def test_run_below_is_strictly_exclusive(self):
        env = Environment()
        log = []

        def worker(env, delay):
            yield env.timeout(delay)
            log.append(env.now)

        for delay in (1, 5, 9):
            env.process(worker(env, delay))
        nxt = env.run_below(5.0)
        assert log == [1.0]
        assert nxt == 5.0  # the t=5 event is still pending
        assert env.run_below(9.5) == float("inf")
        assert log == [1.0, 5.0, 9.0]

    def test_advance_clock_rejects_rewind(self):
        env = Environment()
        env.advance_clock(10.0)
        assert env.now == 10.0
        env.advance_clock(10.0)  # no-op is fine
        with pytest.raises(SimulationError, match="rewind"):
            env.advance_clock(9.0)


class TestCallLater:
    """Pooled timer events behind ``Environment.call_later``."""

    def test_call_later_fires_at_delay(self):
        env = Environment()
        log = []
        env.call_later(3.0, lambda _ev: log.append(env.now))
        env.run()
        assert log == [3.0]

    def test_call_later_recycles_event_objects(self):
        env = Environment()
        seen = []

        def chain(_ev):
            seen.append(id(_ev))
            if len(seen) < 5:
                env.call_later(1.0, chain)

        env.call_later(1.0, chain)
        env.run()
        # The re-arm happens inside the callback, before the firing
        # event returns to the free list, so the chain alternates
        # between exactly two recycled instances — never a fresh
        # allocation per firing.
        assert len(seen) == 5
        assert len(set(seen)) == 2

    def test_call_later_trajectory_matches_timeout_callback(self):
        def run(use_pool):
            env = Environment()
            log = []

            def note(tag):
                return lambda _ev: log.append((env.now, env._eid, tag))

            if use_pool:
                env.call_later(2.0, note("x"))
                env.call_later(2.0, note("y"))
            else:
                for tag in ("x", "y"):
                    ev = env.timeout(2.0)
                    ev.callbacks.append(note(tag))
            env.timeout(1.0)
            env.run()
            return log

        # Same times, same eid counters, same ordering: the pooled
        # path is bit-identical to timeout()+callback.
        assert run(True) == run(False)

    def test_call_later_rejects_negative_delay(self):
        env = Environment()
        with pytest.raises(ValueError, match="negative delay"):
            env.call_later(-1.0, lambda _ev: None)
