"""Differential tests: compiled classad engine vs the interpreter.

The compiled closure engine must be observably identical to the
reference tree-walking interpreter — same values (including exact
Python types, since ``1`` and ``1.0`` differ under ``=?=``), same
UNDEFINED propagation, and same :class:`ClassAdError` diagnostics.
A seeded fuzzer crosses >600 randomized expressions with randomized
ad pairs; hand-written cases pin the edges the fuzzer might only
brush (short-circuit over erroring subtrees, constant folding, list
freshness, recursion bounds, the intern cache, pickling, and the
``REPRO_CLASSAD_INTERP`` escape hatch).
"""

import os
import pickle
import random
import subprocess
import sys

import pytest

from repro.core import classad as ca
from repro.core.classad import (
    UNDEFINED,
    ClassAd,
    Expression,
    Undefined,
    clear_parse_cache,
    equality_key,
    evaluate,
    parse_cache_info,
    use_interpreter,
)
from repro.core.errors import ClassAdError

# ---------------------------------------------------------------------------
# Differential helpers
# ---------------------------------------------------------------------------


def _outcome(fn, ad, other):
    try:
        return ("ok", fn(ad, other))
    except ClassAdError as exc:
        return ("err", str(exc))


def _assert_same_value(compiled, interpreted, context):
    assert type(compiled) is type(interpreted), context
    if isinstance(compiled, list):
        assert len(compiled) == len(interpreted), context
        for c_item, i_item in zip(compiled, interpreted):
            _assert_same_value(c_item, i_item, context)
    elif isinstance(compiled, Undefined):
        assert compiled is interpreted is UNDEFINED, context
    else:
        assert compiled == interpreted, context


def assert_engines_agree(text, ad=None, other=None):
    expr = Expression(text)
    compiled = _outcome(expr.evaluate_compiled, ad, other)
    interpreted = _outcome(expr.evaluate_interpreted, ad, other)
    context = f"expr={text!r} ad={ad!r} other={other!r}"
    assert compiled[0] == interpreted[0], (
        f"{context}: compiled={compiled} interpreted={interpreted}"
    )
    if compiled[0] == "ok":
        _assert_same_value(compiled[1], interpreted[1], context)
    else:
        assert compiled[1] == interpreted[1], context
    return compiled


# ---------------------------------------------------------------------------
# Randomized expression / ad generation
# ---------------------------------------------------------------------------

_ATTRS = ["a", "b", "c", "d", "e", "f"]
_STRINGS = ["Linux", "uml", "x86", "VMware", ""]
_SCALARS = [0, 1, -3, 7, 2.5, 0.0, True, False, "Linux", "x86", "uml"]
_EXPR_ATTR_TEXTS = [
    "b + 1",
    "other.a",
    "a",
    "c && true",
    "undefined",
    "my.d > 2",
]


def random_ad(rng):
    ad = ClassAd()
    for attr in _ATTRS:
        roll = rng.random()
        if roll < 0.25:
            continue  # leave the attribute undefined
        if roll < 0.80:
            ad[attr] = rng.choice(_SCALARS)
        elif roll < 0.92:
            ad[attr] = [
                rng.choice(_SCALARS)
                for _ in range(rng.randrange(0, 4))
            ]
        else:
            ad.set_expression(attr, rng.choice(_EXPR_ATTR_TEXTS))
    return ad


def random_expr(rng, depth=0):
    if depth >= 4 or rng.random() < 0.28:
        leaf = rng.random()
        if leaf < 0.30:
            return str(rng.randrange(-2, 12))
        if leaf < 0.40:
            return f"{rng.uniform(0, 5):.2f}"
        if leaf < 0.50:
            return f'"{rng.choice(_STRINGS)}"'
        if leaf < 0.60:
            return rng.choice(["true", "false", "undefined"])
        scope = rng.choice(["", "", "my.", "other.", "self.", "target."])
        return scope + rng.choice(_ATTRS)
    roll = rng.random()
    if roll < 0.55:
        op = rng.choice(
            [
                "&&", "||", "==", "!=", "<", "<=", ">", ">=",
                "=?=", "=!=", "+", "-", "*", "/", "%",
            ]
        )
        lhs = random_expr(rng, depth + 1)
        rhs = random_expr(rng, depth + 1)
        return f"({lhs} {op} {rhs})"
    if roll < 0.65:
        return "!" + random_expr(rng, depth + 1)
    if roll < 0.72:
        return "-" + random_expr(rng, depth + 1)
    if roll < 0.82:
        cond = random_expr(rng, depth + 1)
        then = random_expr(rng, depth + 1)
        orelse = random_expr(rng, depth + 1)
        return f"({cond} ? {then} : {orelse})"
    if roll < 0.90:
        items = ", ".join(
            random_expr(rng, depth + 2)
            for _ in range(rng.randrange(0, 3))
        )
        return f"member({random_expr(rng, depth + 1)}, [{items}])"
    name = rng.choice(
        ["floor", "ceiling", "round", "min", "max", "size",
         "strcat", "tolower", "toupper"]
    )
    arity = 2 if name in ("min", "max", "strcat") else 1
    args = ", ".join(
        random_expr(rng, depth + 1) for _ in range(arity)
    )
    return f"{name}({args})"


class TestDifferentialFuzz:
    def test_fuzz_600_random_expressions(self):
        rng = random.Random(20040406)
        outcomes = {"ok": 0, "err": 0, "undefined": 0}
        for i in range(600):
            ad = random_ad(rng)
            other = random_ad(rng) if rng.random() < 0.8 else None
            text = random_expr(rng)
            result = assert_engines_agree(text, ad, other)
            if result[0] == "ok" and result[1] is UNDEFINED:
                outcomes["undefined"] += 1
            else:
                outcomes[result[0]] += 1
        # The corpus must actually exercise all three outcome classes.
        assert outcomes["ok"] > 100
        assert outcomes["err"] > 20
        assert outcomes["undefined"] > 20

    def test_fuzz_matches_path(self):
        """a.matches(b) agrees between engines on random ad pairs."""
        rng = random.Random(777)
        flips = 0
        for _ in range(150):
            a = random_ad(rng)
            b = random_ad(rng)
            a.set_expression(
                "requirements",
                random_expr(rng, depth=2),
            )
            try:
                use_interpreter(False)
                compiled = _outcome(
                    lambda x, y: a.matches(y), None, b
                )
                use_interpreter(True)
                interpreted = _outcome(
                    lambda x, y: a.matches(y), None, b
                )
            finally:
                use_interpreter(False)
            assert compiled == interpreted
            if compiled == ("ok", True):
                flips += 1
        assert flips > 5  # some requirements actually accepted


class TestHandWrittenEdges:
    CASES = [
        # UNDEFINED propagation and three-valued logic
        ("undefined == undefined", None, None),
        ("undefined =?= undefined", None, None),
        ("undefined =!= 1", None, None),
        ("undefined && false", None, None),
        ("undefined && true", None, None),
        ("undefined || true", None, None),
        ("undefined || false", None, None),
        ("!undefined", None, None),
        ("-undefined", None, None),
        # non-boolean operands of the logic operators
        ("5 && false", None, None),
        ("5 && true", None, None),
        ("0 || true", None, None),
        ("0 || false", None, None),
        # numeric edge cases
        ("7 / 2", None, None),
        ("6 / 2", None, None),
        ("6 / 2 =?= 3", None, None),
        ("7 / 2.0", None, None),
        ("1 / 0", None, None),
        ("5 % 0", None, None),
        ("1 == 1.0", None, None),
        ("1 =?= 1.0", None, None),
        ("true == 1", None, None),
        ("true == true", None, None),
        ("true < false", None, None),
        # strings
        ('"ABC" == "abc"', None, None),
        ('"abc" < "ABD"', None, None),
        ('"a" + "b"', None, None),
        ('"a" < 1', None, None),
        ('"a" == 1', None, None),
        ('"a" != 1', None, None),
        # ternary
        ("undefined ? 1 : 2", None, None),
        ("1 ? 1 : 2", None, None),
        ("true ? 1 : 1/0", None, None),
        ("false ? 1/0 : 2", None, None),
        # functions
        ("floor(2.7)", None, None),
        ("ceiling(2.1)", None, None),
        ("round(2.5)", None, None),
        ("round(-2.5)", None, None),
        ("min(3, 2.0)", None, None),
        ("strcat(\"a\", 1, true)", None, None),
        ("size([1, 2, 3])", None, None),
        ("size(5)", None, None),
        ("member(\"UML\", [\"uml\", \"vmware\"])", None, None),
        ("member(1, [true, 1.0, 1])", None, None),
        ("member(1, 5)", None, None),
        ("min(1)", None, None),  # bad arity
        ("tolower(5)", None, None),
    ]

    def test_static_cases(self):
        for text, ad, other in self.CASES:
            assert_engines_agree(text, ad, other)

    def test_cross_ad_fallback_cases(self):
        mine = ClassAd({"x": 1, "s": "Plant"})
        theirs = ClassAd({"y": 2, "s": "Client", "memory": 512})
        for text in [
            "x + y",            # bare-name fallback to other
            "s",                # defined in both: own ad wins
            "other.s",
            "my.s",
            "self.x == 1 && target.y == 2",
            "other.missing",
            "missing",          # missing in both
            "memory >= 256",    # only in other
        ]:
            assert_engines_agree(text, mine, theirs)
            assert_engines_agree(text, mine, None)
            assert_engines_agree(text, None, theirs)
            assert_engines_agree(text, None, None)

    def test_expression_valued_attributes(self):
        mine = ClassAd({"base": 10})
        mine.set_expression("derived", "base * 2")
        theirs = ClassAd({"base": 3})
        theirs.set_expression("back", "other.base + 1")
        for text in [
            "derived",
            "other.back",     # evaluates in theirs with mine as other
            "derived + other.back",
        ]:
            assert_engines_agree(text, mine, theirs)

    def test_recursion_bound_identical(self):
        ad = ClassAd()
        ad.set_expression("a", "b")
        ad.set_expression("b", "a")
        result = assert_engines_agree("a", ad, None)
        assert result == ("err", "expression recursion too deep")

    def test_unknown_scope_raises_at_eval(self):
        result = assert_engines_agree("bogus.x", ClassAd(), None)
        assert result[0] == "err"
        assert "unknown scope" in result[1]


class TestCompilation:
    def test_constant_folding_does_not_hoist_errors(self):
        # Construction must not raise even though the subtree is a
        # constant error; evaluation must.
        expr = Expression("(1 / 0) > 1")
        with pytest.raises(ClassAdError):
            expr.evaluate()
        # Short-circuit still protects the erroring branch.
        assert evaluate("false && ((1 / 0) > 1)") is False
        assert evaluate("true || ((1 / 0) > 1)") is True

    def test_folded_constants_evaluate_without_ads(self):
        assert evaluate("2 + 3 * 4") == 14
        assert evaluate("floor(9 / 2)") == 4
        assert evaluate('tolower("ABC")') == "abc"

    def test_list_expressions_return_fresh_lists(self):
        expr = Expression("[1, 2]")
        first = expr.evaluate()
        first.append(3)
        assert expr.evaluate() == [1, 2]

    def test_engine_switch_runtime_toggle(self):
        ad = ClassAd({"x": 2})
        ad.set_expression("requirements", "other.x == 2")
        try:
            use_interpreter(True)
            assert ad.matches(ClassAd({"x": 2})) is True
            assert evaluate("1 + 1") == 2
        finally:
            use_interpreter(False)
        assert ad.matches(ClassAd({"x": 2})) is True

    def test_interpreter_env_var_escape_hatch(self):
        script = (
            "from repro.core import classad\n"
            "assert classad._INTERP is True\n"
            "ad = classad.ClassAd({'x': 1})\n"
            "ad.set_expression('requirements', 'other.x == 1')\n"
            "assert ad.matches(classad.ClassAd({'x': 1}))\n"
            "print('OK')\n"
        )
        env = dict(os.environ)
        env["REPRO_CLASSAD_INTERP"] = "1"
        env["PYTHONPATH"] = "src"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout


class TestInternCache:
    def test_same_text_returns_same_object(self):
        clear_parse_cache()
        assert Expression("a + 1") is Expression("a + 1")
        info = parse_cache_info()
        assert info["hits"] >= 1

    def test_cache_is_bounded_lru(self):
        clear_parse_cache()
        for i in range(ca._EXPR_CACHE_MAX + 50):
            Expression(f"x + {i}")
        assert parse_cache_info()["size"] <= ca._EXPR_CACHE_MAX
        # Oldest entries were evicted; newest retained.
        newest = f"x + {ca._EXPR_CACHE_MAX + 49}"
        assert newest in ca._EXPR_CACHE
        assert "x + 0" not in ca._EXPR_CACHE
        clear_parse_cache()

    def test_set_expression_and_evaluate_share_cache(self):
        clear_parse_cache()
        ad = ClassAd()
        ad.set_expression("requirements", "other.kind == \"vmplant\"")
        before = parse_cache_info()["misses"]
        evaluate("other.kind == \"vmplant\"", ad, None)
        assert parse_cache_info()["misses"] == before  # cache hit

    def test_evaluation_error_text_still_interned(self):
        # Parse succeeds, so the instance interns even though every
        # evaluation raises.
        clear_parse_cache()
        assert Expression("1/0") is Expression("1/0")


class TestSlotsAndPickling:
    def test_classad_hot_classes_have_no_instance_dict(self):
        for cls in (
            ClassAd,
            Expression,
            ca._Scope,
            ca._Parser,
            ca._Literal,
            ca._Ref,
            ca._ListNode,
            ca._Unary,
            ca._Binary,
            ca._Call,
            ca._Ternary,
        ):
            assert hasattr(cls, "__slots__")
            instance = object.__new__(cls)
            assert not hasattr(instance, "__dict__"), cls.__name__

    def test_expression_pickle_roundtrip(self):
        expr = Expression("other.x > 1 && member(os, [\"linux\"])")
        clone = pickle.loads(pickle.dumps(expr))
        assert clone.text == expr.text
        ad = ClassAd({"os": "linux"})
        assert clone.evaluate(ad, ClassAd({"x": 2})) is True

    def test_classad_with_expression_pickle_roundtrip(self):
        ad = ClassAd({"x": 5})
        ad.set_expression("requirements", "other.x == 5")
        clone = pickle.loads(pickle.dumps(ad))
        assert clone.matches(ClassAd({"x": 5})) is True
        assert clone == ad

    def test_lists_accept_nested_expressions(self):
        ad = ClassAd()
        ad["mixed"] = [1, Expression("2 + 3"), "s"]
        stored = ad.lookup("mixed")
        assert isinstance(stored[1], Expression)
        assert "2 + 3" in ad.to_string()
        with pytest.raises(ClassAdError):
            ad["bad"] = [object()]


class TestEqualityConstraints:
    def test_extracts_conjunct_equalities(self):
        expr = Expression(
            'other.kind == "vmplant" && vm_type == "uml" '
            "&& other.active_vms < 8 && 2 == other.cpus"
        )
        constraints = dict(
            ((attr, kind), key)
            for attr, kind, key in expr.equality_constraints()
        )
        assert constraints[("kind", "other")] == ("s", "vmplant")
        assert constraints[("vm_type", "bare")] == ("s", "uml")
        assert constraints[("cpus", "other")] == ("n", 2)
        assert ("active_vms", "other") not in constraints

    def test_disjunctions_extract_nothing(self):
        expr = Expression('other.os == "linux" || other.os == "bsd"')
        assert expr.equality_constraints() == ()

    def test_equality_key_semantics(self):
        assert equality_key(1) == equality_key(1.0)
        assert equality_key(True) != equality_key(1)
        assert equality_key("Linux") == equality_key("linux")
        assert equality_key([1]) is None
        assert equality_key(UNDEFINED) is None
        assert equality_key(Expression("1")) is None
