"""Bit-exact determinism of the whole reproduction pipeline.

DESIGN.md promises that every figure regenerates identically for a
given seed — these tests pin that contract, including across
completely fresh testbeds.
"""

from repro.experiments.costfn import run_costfn
from repro.experiments.runner import run_creation_experiment
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request


class TestDeterminism:
    def test_creation_experiment_bit_identical(self):
        def fingerprint():
            run = run_creation_experiment(32, 16, seed=99)
            return (
                tuple(run.creation_latencies),
                tuple(r.total_time for r in run.clone_records()),
                tuple(s.plant for s in run.successes),
            )

        assert fingerprint() == fingerprint()

    def test_different_seeds_differ(self):
        a = run_creation_experiment(32, 8, seed=1).creation_latencies
        b = run_creation_experiment(32, 8, seed=2).creation_latencies
        assert a != b

    def test_costfn_decisions_identical(self):
        a = run_costfn(seed=99).decisions
        b = run_costfn(seed=99).decisions
        assert a == b

    def test_single_create_classads_identical(self):
        def fingerprint():
            bed = build_testbed(seed=99)
            ad = bed.run(bed.shop.create(experiment_request(64)))
            return ad.to_string()

        assert fingerprint() == fingerprint()

    def test_failure_pattern_deterministic(self):
        def failures():
            run = run_creation_experiment(
                32, 20, seed=99, failure_prob=0.3
            )
            return tuple(s.ok for s in run.samples)

        assert failures() == failures()


class TestGoldenTrajectories:
    """Bit-identity across kernel optimizations.

    The hashes below were captured on the *pre-optimization* kernel
    (before ``__slots__``, the heap micro-optimizations and the
    timer rework in ``sim/network.py``).  The optimized kernel must
    reproduce them exactly: optimizations may only change wall-clock
    time, never the trajectory.
    """

    SUITE_FP = (
        "4419f05b1e2d6032e877b636535242e0e2838c0a68083691788f6be5ebc8e583"
    )
    RUN_FP = (
        "bb8dfdcda74edfa59d5710deef16c0aca77409ddfc9eb48d45a2303c666a2a95"
    )
    FIG4_RENDER = (
        "f6e1906930a1a26b3d9c663949914469b9f4038131fb6173ac1f24ebc766824d"
    )
    FIG5_RENDER = (
        "931d5454ddda497198479d4905ab3f32ff284382786b0f73d9aa1ebf3ffcd132"
    )
    TRACE_FP = (
        "755764023c33c038d44e687a3762a29d032930c5d031becb08ee9a3bf68b4f26"
    )

    @staticmethod
    def _sha(text: str) -> str:
        import hashlib

        return hashlib.sha256(text.encode()).hexdigest()

    def test_paper_suite_samples_match_golden(self):
        import hashlib

        from repro.experiments.runner import run_creation_suite

        suite = run_creation_suite(seed=2004)
        h = hashlib.sha256()
        for memory in sorted(suite):
            run = suite[memory]
            for s in run.samples:
                h.update(
                    repr(
                        (
                            s.index,
                            s.memory_mb,
                            s.ok,
                            s.latency,
                            s.vmid,
                            s.plant,
                            s.error,
                        )
                    ).encode()
                )
            h.update(
                repr(
                    [
                        (
                            r.vmid,
                            r.started_at,
                            r.copy_time,
                            r.resume_time,
                            r.total_time,
                            r.pressure,
                            r.host_vms_before,
                        )
                        for r in run.clone_records()
                    ]
                ).encode()
            )
        assert h.hexdigest() == self.SUITE_FP

    def test_single_run_matches_golden(self):
        run = run_creation_experiment(32, 16, seed=7, failure_prob=0.1)
        fp = self._sha(
            repr(
                [
                    (s.index, s.ok, s.latency, s.vmid, s.plant)
                    for s in run.samples
                ]
            )
        )
        assert fp == self.RUN_FP

    def test_figure_renders_match_golden(self):
        from repro.experiments.figure4 import run_figure4
        from repro.experiments.figure5 import run_figure5
        from repro.experiments.runner import run_creation_suite

        suite = run_creation_suite(seed=2004)
        assert self._sha(run_figure4(suite=suite).render()) == (
            self.FIG4_RENDER
        )
        assert self._sha(run_figure5(suite=suite).render()) == (
            self.FIG5_RENDER
        )

    def test_event_trajectory_matches_golden(self):
        """Traced event stream (times, categories, payloads) is stable."""
        from repro.workloads.requests import request_stream

        bed = build_testbed(seed=11, n_plants=2)
        tracer = bed.attach_tracer()

        def client():
            for request in request_stream(32, 4):
                yield from bed.shop.create(request)

        bed.run(client())
        fp = self._sha(
            repr(
                [
                    (
                        e.time,
                        e.category,
                        e.message,
                        tuple(sorted(e.data.items())),
                    )
                    for e in tracer.events
                ]
            )
        )
        assert fp == self.TRACE_FP
