"""Bit-exact determinism of the whole reproduction pipeline.

DESIGN.md promises that every figure regenerates identically for a
given seed — these tests pin that contract, including across
completely fresh testbeds.
"""

from repro.experiments.costfn import run_costfn
from repro.experiments.runner import run_creation_experiment
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request


class TestDeterminism:
    def test_creation_experiment_bit_identical(self):
        def fingerprint():
            run = run_creation_experiment(32, 16, seed=99)
            return (
                tuple(run.creation_latencies),
                tuple(r.total_time for r in run.clone_records()),
                tuple(s.plant for s in run.successes),
            )

        assert fingerprint() == fingerprint()

    def test_different_seeds_differ(self):
        a = run_creation_experiment(32, 8, seed=1).creation_latencies
        b = run_creation_experiment(32, 8, seed=2).creation_latencies
        assert a != b

    def test_costfn_decisions_identical(self):
        a = run_costfn(seed=99).decisions
        b = run_costfn(seed=99).decisions
        assert a == b

    def test_single_create_classads_identical(self):
        def fingerprint():
            bed = build_testbed(seed=99)
            ad = bed.run(bed.shop.create(experiment_request(64)))
            return ad.to_string()

        assert fingerprint() == fingerprint()

    def test_failure_pattern_deterministic(self):
        def failures():
            run = run_creation_experiment(
                32, 20, seed=99, failure_prob=0.3
            )
            return tuple(s.ok for s in run.samples)

        assert failures() == failures()
