"""Federated multi-site control plane: addressing, registry, spill-over.

Pins the three federation contracts from the PR 8 acceptance list:

* **hierarchical vnet allocation** — site blocks are disjoint pure
  functions of ``(sites, base_octet, subnets_per_site)``, exhaust with
  :class:`VNetError`, reuse released subnets FIFO, and reject foreign
  or double releases;
* **sharded registry equivalence** — a randomized
  :class:`FederatedRegistry` discover (with and without the
  ``may_match`` shard prefilter) returns exactly what one merged
  :class:`ServiceRegistry` holding every site's entries would, in the
  same order;
* **determinism across shard counts** — the ``federation`` scenario's
  merged-trace fingerprint is identical at 1, 2 and 4 shards, and the
  classic single-site testbed is untouched by the federation plumbing.

Plus the grid-mode wiring: rack brokers in front of the shop,
site-prefixed names, and the gateway's local-first / spill-over
placement ladder.
"""

from __future__ import annotations

import random

import pytest

from repro.core.classad import ClassAd
from repro.core.errors import ShopError, VNetError
from repro.faults.recovery import RecoveryPolicy
from repro.federation.addressing import (
    ADDRESSES_PER_SUBNET,
    HierarchicalAddressPlan,
    SubnetBlock,
)
from repro.federation.gateway import FederationGateway
from repro.federation.registry import FederatedRegistry
from repro.federation.site import build_federated_grid
from repro.shop.bidding import Bid
from repro.shop.registry import ServiceRegistry
from repro.sim.cluster import build_testbed
from repro.sim.shard import ShardedTestbed
from repro.workloads.requests import experiment_request


# ---------------------------------------------------------------------------
# Hierarchical vnet allocation
# ---------------------------------------------------------------------------


class TestSubnetBlock:
    def test_sequential_allocation_format(self):
        block = SubnetBlock(site=0, base_octet=10, start=0, count=4)
        assert block.allocate_many(4) == [
            "10.0.0", "10.0.1", "10.0.2", "10.0.3"
        ]

    def test_index_arithmetic_crosses_octet_boundary(self):
        block = SubnetBlock(site=1, base_octet=10, start=255, count=2)
        assert block.allocate_many(2) == ["10.0.255", "10.1.0"]

    def test_exhaustion_raises(self):
        block = SubnetBlock(site=0, base_octet=10, start=0, count=3)
        block.allocate_many(3)
        assert block.remaining == 0
        with pytest.raises(VNetError, match="exhausted"):
            block.allocate()

    def test_release_reuse_is_fifo(self):
        block = SubnetBlock(site=0, base_octet=10, start=0, count=3)
        a, b, c = block.allocate_many(3)
        block.release(b)
        block.release(a)
        # Released subnets come back in release order, before any
        # (here impossible) cursor advance.
        assert block.allocate() == b
        assert block.allocate() == a
        assert block.allocated == 3

    def test_double_release_rejected(self):
        block = SubnetBlock(site=0, base_octet=10, start=0, count=2)
        sub = block.allocate()
        block.release(sub)
        with pytest.raises(VNetError, match="twice"):
            block.release(sub)

    def test_never_allocated_release_rejected(self):
        block = SubnetBlock(site=0, base_octet=10, start=0, count=8)
        block.allocate()
        with pytest.raises(VNetError, match="never allocated"):
            block.release("10.0.5")

    def test_foreign_subnet_release_rejected(self):
        plan = HierarchicalAddressPlan(4, subnets_per_site=16)
        site0, site1 = plan.block(0), plan.block(1)
        stolen = site1.allocate()
        assert stolen not in site0
        with pytest.raises(VNetError, match="another site"):
            site0.release(stolen)

    def test_malformed_subnet_rejected(self):
        block = SubnetBlock(site=0, base_octet=10, start=0, count=2)
        for bad in ("192.168.0", "10.0", "10.x.0", "10.999.0"):
            with pytest.raises(VNetError):
                block.release(bad)
            assert bad not in block


class TestHierarchicalAddressPlan:
    def test_site_blocks_are_disjoint(self):
        plan = HierarchicalAddressPlan(4, subnets_per_site=32)
        seen = set()
        for site in range(4):
            subnets = set(plan.block(site).allocate_many(32))
            assert len(subnets) == 32
            assert not (subnets & seen)
            seen |= subnets

    def test_plan_is_pure_function_of_inputs(self):
        """Two independent plan instances (two forked workers) derive
        the same block for the same site."""
        first = HierarchicalAddressPlan(8).block(5)
        second = HierarchicalAddressPlan(8).block(5)
        assert first.allocate_many(10) == second.allocate_many(10)

    def test_sixteen_sites_pass_the_million_address_rung(self):
        plan = HierarchicalAddressPlan(16)
        assert plan.subnets_per_site == 4096
        assert plan.site_capacity == 4096 * ADDRESSES_PER_SUBNET
        assert plan.site_capacity > 1_000_000
        assert plan.total_capacity == 16 * plan.site_capacity

    def test_site_of_reverse_lookup(self):
        plan = HierarchicalAddressPlan(4, subnets_per_site=256)
        for site in (0, 1, 3):
            sub = plan.block(site).allocate()
            assert plan.site_of(sub) == site
            assert plan.site_of(sub + ".17") == site  # full guest IP
        with pytest.raises(VNetError, match="outside"):
            plan.site_of("10.255.255")  # past site 3's block

    def test_exhaustion_is_per_site(self):
        plan = HierarchicalAddressPlan(2, subnets_per_site=2)
        plan.block(0).allocate_many(2)
        with pytest.raises(VNetError):
            plan.block(0).allocate()
        # Site 1's block is untouched by site 0 running dry.
        assert plan.block(1).allocate() == "10.0.2"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalAddressPlan(0)
        with pytest.raises(ValueError):
            HierarchicalAddressPlan(4, base_octet=0)
        with pytest.raises(ValueError):
            HierarchicalAddressPlan(4, subnets_per_site=65536)
        with pytest.raises(ValueError):
            HierarchicalAddressPlan(2).block(2)


# ---------------------------------------------------------------------------
# Federated registry vs one merged registry
# ---------------------------------------------------------------------------

_OSES = ("linux", "bsd", "Solaris")
_VM_TYPES = ("vmware", "uml")
_KINDS = ("vmplant", "vmbroker", "warehouse")

_QUERIES = (
    (None, None),
    ("vmplant", None),
    ("vmplant", 'other.os == "linux"'),
    ("vmplant", 'other.os == "bsd" && other.vm_type == "uml"'),
    (None, 'other.vm_type == "vmware" && other.slot > 2'),
    ("vmbroker", "other.slot >= 0"),
    ("vmplant", 'other.os == "plan9"'),  # matches nothing anywhere
    ("warehouse", 'other.name == "svc-1-0"'),
)


def _random_description(rng: random.Random, name: str, kind: str) -> ClassAd:
    ad = ClassAd({"name": name, "kind": kind})
    if rng.random() < 0.85:
        ad["os"] = rng.choice(_OSES)
    if rng.random() < 0.8:
        ad["vm_type"] = rng.choice(_VM_TYPES)
    ad["slot"] = rng.randrange(0, 8)
    if rng.random() < 0.1:
        ad.set_expression("os", '"li" + "nux"')
    return ad


def _random_federation(rng: random.Random, sites: int):
    """The same random entries published into a router and one merged
    registry, in identical (site, local insertion) order."""
    fed = FederatedRegistry()
    merged = ServiceRegistry()
    for site in range(sites):
        fed.add_site(site)
    for site in range(sites):
        for i in range(rng.randrange(1, 9)):
            name = f"svc-{site}-{i}"
            kind = rng.choice(_KINDS)
            description = _random_description(rng, name, kind)
            fed.publish(site, name, kind, object(), description)
            merged.publish(name, kind, object(), description)
    return fed, merged


class TestFederatedRegistryEquivalence:
    def test_randomized_discover_matches_merged_registry(self):
        rng = random.Random(2004)
        for trial in range(25):
            fed, merged = _random_federation(rng, rng.randrange(1, 6))
            for kind, query in _QUERIES:
                reference = [
                    e.name
                    for e in merged.discover(kind, query, prefilter=False)
                ]
                for prefilter in (True, False):
                    got = [
                        e.name
                        for e in fed.discover(kind, query, prefilter=prefilter)
                    ]
                    assert got == reference, (
                        f"trial={trial} kind={kind} query={query!r} "
                        f"prefilter={prefilter}"
                    )

    def test_result_order_groups_by_ascending_site(self):
        fed = FederatedRegistry()
        for site in (2, 0, 1):  # attach out of order on purpose
            fed.add_site(site)
        for site in (1, 2, 0):  # publish out of order too
            fed.publish(site, f"p{site}", "vmplant", object())
        assert [e.name for e in fed.discover("vmplant")] == [
            "p0", "p1", "p2"
        ]

    def test_prefilter_actually_prunes_shards(self):
        fed = FederatedRegistry()
        for site in range(4):
            fed.add_site(site)
            os = "bsd" if site == 3 else "linux"
            fed.publish(
                site, f"p{site}", "vmplant", object(),
                ClassAd({"name": f"p{site}", "kind": "vmplant", "os": os}),
            )
        found = fed.discover("vmplant", 'other.os == "bsd"')
        assert [e.name for e in found] == ["p3"]
        # Three shards hold only linux plants: may_match proves no
        # entry can satisfy the equality conjunct, so they are skipped.
        assert fed.shards_pruned == 3
        assert fed.shards_queried == 1

    def test_cross_site_name_collision_rejected(self):
        fed = FederatedRegistry()
        fed.add_site(0)
        fed.add_site(1)
        fed.publish(0, "dup", "vmplant", object())
        with pytest.raises(ShopError, match="already published by site 0"):
            fed.publish(1, "dup", "vmplant", object())
        # Same-site republish is a plain replace, as in one registry.
        fed.publish(0, "dup", "vmshop", object())
        assert fed.site_of("dup") == 0
        assert len(fed) == 1

    def test_router_resyncs_with_direct_shard_publishes(self):
        """Grid-mode shops publish straight into their site shard; the
        router must still route bind/unpublish for those names."""
        fed = FederatedRegistry()
        shard = fed.add_site(2)
        binding = object()
        shard.publish("stealth", "vmplant", binding)
        assert "stealth" in fed
        assert fed.site_of("stealth") == 2
        assert fed.bind("stealth") is binding
        fed.unpublish("stealth")
        assert "stealth" not in shard
        with pytest.raises(ShopError, match="not published"):
            fed.bind("stealth")

    def test_duplicate_site_rejected(self):
        fed = FederatedRegistry()
        fed.add_site(0)
        with pytest.raises(ShopError, match="already federated"):
            fed.add_site(0)
        with pytest.raises(ShopError, match="not federated"):
            fed.shard(9)


# ---------------------------------------------------------------------------
# Grid-mode wiring and the spill-over gateway
# ---------------------------------------------------------------------------


def _bid(cost: float) -> Bid:
    return Bid(bidder_name=f"b{cost}", cost=cost, bidder=object())


class TestFederatedGrid:
    def test_sites_share_one_kernel_with_disjoint_state(self):
        grid = build_federated_grid(2, seed=3, n_plants=2, rack_size=2)
        assert grid.sites[0].bed.env is grid.sites[1].bed.env
        # Site-prefixed service names route through the federated view.
        assert grid.registry.site_of("site0-plant0") == 0
        assert grid.registry.site_of("site1-vmshop") == 1
        plants = grid.registry.discover("vmplant")
        assert [e.name for e in plants] == [
            "site0-plant0", "site0-plant1",
            "site1-plant0", "site1-plant1",
        ]
        # Each site's pools draw from its own subnet block.
        pools0 = {
            net.subnet
            for p in grid.sites[0].bed.plants
            for net in p.network_pool.networks
        }
        pools1 = {
            net.subnet
            for p in grid.sites[1].bed.plants
            for net in p.network_pool.networks
        }
        assert pools0 and pools1 and not (pools0 & pools1)

    def test_rack_brokers_front_the_shop(self):
        grid = build_federated_grid(1, seed=3, n_plants=4, rack_size=2)
        site = grid.sites[0]
        assert [r.name for r in site.racks] == ["site0-rack0", "site0-rack1"]
        # The shop bids against the broker tier, not plants directly.
        assert site.shop.bidders == site.racks
        ad = grid.run(site.shop.create(experiment_request(32)))
        assert str(ad["vmid"]).startswith("site0-vmshop-vm-")

    def test_gateway_spills_when_local_site_declines(self):
        grid = build_federated_grid(
            2, seed=3, n_plants=1, rack_size=1, max_vms_per_plant=1
        )
        gw0 = grid.sites[0].gateway
        # Fill site 0's single slot: the next request gets no local bid.
        ad, site = grid.run(gw0.place(experiment_request(32)))
        assert site == 0 and gw0.local_creates == 1
        ad, site = grid.run(gw0.place(experiment_request(32)))
        assert site == 1
        assert gw0.spill_creates == 1 and gw0.spills_declined == 1
        assert str(ad["vmid"]).startswith("site1-")
        # Both sites full: the placement ladder runs out.
        with pytest.raises(ShopError, match="no local or remote"):
            grid.run(gw0.place(experiment_request(32)))

    def test_should_spill_threshold(self):
        grid = build_federated_grid(
            2, seed=3, n_plants=1, rack_size=1,
            recovery=RecoveryPolicy(spill_threshold=50.0),
        )
        gw = grid.sites[0].gateway
        assert gw.should_spill([])  # decline: no bids at all
        assert not gw.should_spill([_bid(10.0), _bid(60.0)])
        assert gw.should_spill([_bid(51.0)])  # saturated
        # No threshold configured: never spill while the site bids.
        gw_free = FederationGateway(0, grid.sites[0].shop, RecoveryPolicy())
        assert not gw_free.should_spill([_bid(1e9)])
        assert gw_free.should_spill([])

    def test_gateway_rejects_self_as_remote(self):
        grid = build_federated_grid(1, seed=3, n_plants=1, rack_size=1)
        gw = grid.sites[0].gateway
        assert gw.remotes == []
        with pytest.raises(ShopError, match="own spill-over"):
            gw.add_remote(gw)


class TestGatewayFailoverLadder:
    """Regression: a failed remote create must fail over to the next
    ranked remote bid, not abandon the whole spill round."""

    @staticmethod
    def _break_first_create(grid, sites):
        """Whichever remote is tried first raises once, then heals."""
        state = {"broken": 0}

        def wrap(gateway):
            orig = gateway.create

            def create(request, vmid=None, clone_mode=None, _orig=orig):
                if state["broken"] == 0:
                    state["broken"] += 1

                    def boom():
                        raise ShopError("injected remote crash")
                        yield  # pragma: no cover

                    return boom()
                return _orig(request, vmid, clone_mode)

            gateway.create = create

        for s in sites:
            wrap(grid.sites[s].gateway)
        return state

    def test_failed_remote_create_walks_to_next_rung(self):
        grid = build_federated_grid(
            3, seed=3, n_plants=1, rack_size=1, max_vms_per_plant=1
        )
        gw0 = grid.sites[0].gateway
        # Fill site 0 so the next placement must spill.
        grid.run(gw0.place(experiment_request(32)))
        state = self._break_first_create(grid, (1, 2))
        ad, site = grid.run(gw0.place(experiment_request(32)))
        assert state["broken"] == 1
        assert site in (1, 2)  # landed on the *other* remote
        assert gw0.spill_creates == 1
        assert gw0.spill_failures == 1
        assert gw0.spill_retries == 1  # exactly one extra rung
        assert str(ad["vmid"]).startswith(f"site{site}-")

    def test_repeat_failures_trip_the_remote_breaker(self):
        grid = build_federated_grid(
            2, seed=3, n_plants=1, rack_size=1,
            recovery=RecoveryPolicy(
                remote_quarantine_threshold=2,
                remote_quarantine_s=500.0,
            ),
        )
        gw0 = grid.sites[0].gateway
        remote = grid.sites[1].gateway
        assert gw0._open_remotes() == [remote]
        gw0._record_remote(remote, ok=False)
        assert gw0._open_remotes() == [remote]  # below threshold
        gw0._record_remote(remote, ok=False)
        assert gw0._open_remotes() == []  # quarantined
        # A success after the quarantine window closes the breaker.
        health = gw0.remote_health[remote.name]
        assert health.allows(600.0)  # HALF_OPEN probe after expiry
        gw0._record_remote(remote, ok=True)
        assert gw0._open_remotes() == [remote]

    def test_breakers_disabled_by_default(self):
        grid = build_federated_grid(2, seed=3, n_plants=1, rack_size=1)
        gw0 = grid.sites[0].gateway
        for _ in range(10):
            gw0._record_remote(grid.sites[1].gateway, ok=False)
        assert gw0.remote_health == {}
        assert gw0._open_remotes() == [grid.sites[1].gateway]


# ---------------------------------------------------------------------------
# Determinism across shard counts; classic testbed untouched
# ---------------------------------------------------------------------------


class TestFederationDeterminism:
    def test_fingerprint_identical_at_1_2_4_shards(self):
        params = {"plants": 2, "requests": 10, "cross_fraction": 0.3}
        runs = {}
        for shards in (1, 2, 4):
            plan = ShardedTestbed(
                seed=13, sites=4, shards=shards, scenario="federation"
            )
            runs[shards] = plan.run(
                params=params, collect="fingerprint", deadline_s=120.0
            )
        fps = {s: r.fingerprint() for s, r in runs.items()}
        assert len(set(fps.values())) == 1, fps
        events = {s: r.total_events for s, r in runs.items()}
        assert len(set(events.values())) == 1, events
        stats = runs[4].combined_stats()
        assert stats["created"] == 4 * 10
        assert stats["failed"] == 0 and stats["spill_timeout"] == 0

    def test_classic_testbed_is_untouched_by_federation_plumbing(self):
        """Default ``build_testbed`` must keep the golden-trace shape:
        unprefixed names, plants bidding directly, no rack tier."""
        bed = build_testbed(seed=1, n_plants=2)
        assert bed.racks == []
        assert "plant0" in bed.registry and "vmshop" in bed.registry
        assert bed.shop.bidders == bed.plants
        with pytest.raises(ValueError):
            build_testbed(seed=1, n_plants=2, rack_size=0)
