"""Tests: VMArchitect, matchmaking requirements, scalability, caching."""

import pytest

from repro.core.errors import ShopError, VNetError
from repro.experiments.ablations import run_state_cache_ablation
from repro.experiments.scalability import (
    run_matching_scalability,
    run_scalability,
)
from repro.sim.cluster import build_testbed
from repro.vnet.architect import VMArchitect, router_dag
from repro.workloads.requests import experiment_request


class TestRouterDag:
    def test_structure(self):
        dag = router_dag("grid-net")
        order = dag.topological_sort()
        assert order[0] == "install-os"
        assert "start-tunnel-endpoint" in order
        action = dag.action("start-tunnel-endpoint")
        assert "grid-net" in action.rendered_command()

    def test_matches_standard_golden_image(self):
        """A router VM clones from the ordinary Mandrake image."""
        bed = build_testbed(seed=41, n_plants=2)
        architect = VMArchitect(bed.shop)
        net = bed.run(
            architect.build_network("n1", ["d1.example"])
        )
        router = net.router_for("d1.example")
        vm = bed.registry.bind(router.plant).infosys.get(router.vmid)
        assert vm.image.image_id == "vmware-mandrake81-32mb"


class TestVMArchitect:
    def make(self, n_plants=3):
        bed = build_testbed(seed=41, n_plants=n_plants)
        return bed, VMArchitect(bed.shop)

    def test_build_network_creates_one_router_per_domain(self):
        bed, architect = self.make()
        domains = ["cs.ufl.edu", "ece.nwu.edu", "hep.cern.ch"]
        net = bed.run(architect.build_network("grid", domains))
        assert net.domains() == sorted(domains)
        assert len(net.tunnels) == 3  # full mesh over 3 domains
        net.check_mesh()
        vmids = {r.vmid for r in net.routers.values()}
        assert len(vmids) == 3
        for router in net.routers.values():
            assert router.tunnel_port  # output published by the DAG

    def test_duplicate_network_name_rejected(self):
        bed, architect = self.make()
        bed.run(architect.build_network("grid", ["d1"]))
        with pytest.raises(VNetError):
            bed.run(architect.build_network("grid", ["d2"]))

    def test_bad_domain_lists_rejected(self):
        bed, architect = self.make()
        with pytest.raises(VNetError):
            bed.run(architect.build_network("x", []))
        with pytest.raises(VNetError):
            bed.run(architect.build_network("x", ["d", "d"]))

    def test_member_routing_same_domain(self):
        bed, architect = self.make()
        net = bed.run(architect.build_network("grid", ["d1", "d2"]))
        net.attach_member("vm-a", "d1")
        net.attach_member("vm-b", "d1")
        path = net.route("vm-a", "vm-b")
        assert path == ["vm-a", net.routers["d1"].vmid, "vm-b"]

    def test_member_routing_cross_domain(self):
        bed, architect = self.make()
        net = bed.run(architect.build_network("grid", ["d1", "d2"]))
        net.attach_member("vm-a", "d1")
        net.attach_member("vm-b", "d2")
        path = net.route("vm-a", "vm-b")
        assert path == [
            "vm-a",
            net.routers["d1"].vmid,
            net.routers["d2"].vmid,
            "vm-b",
        ]

    def test_routing_unattached_member_rejected(self):
        bed, architect = self.make()
        net = bed.run(architect.build_network("grid", ["d1"]))
        net.attach_member("vm-a", "d1")
        with pytest.raises(VNetError):
            net.route("vm-a", "ghost")

    def test_attach_to_unknown_domain_rejected(self):
        bed, architect = self.make()
        net = bed.run(architect.build_network("grid", ["d1"]))
        with pytest.raises(VNetError):
            net.attach_member("vm-a", "elsewhere")

    def test_teardown_collects_routers(self):
        bed, architect = self.make()
        net = bed.run(architect.build_network("grid", ["d1", "d2"]))
        active_before = sum(p.active_vm_count() for p in bed.plants)
        assert active_before == 2
        collected = bed.run(architect.teardown_network("grid"))
        assert collected == 2
        assert sum(p.active_vm_count() for p in bed.plants) == 0
        with pytest.raises(VNetError):
            bed.run(architect.teardown_network("grid"))


class TestRequirementsMatchmaking:
    def test_requirements_filter_plants(self):
        bed = build_testbed(seed=41, n_plants=2)
        # Occupy plant0 so its active_vms differs.
        bed.run(bed.plants[0].create(experiment_request(32), "warm"))
        request = experiment_request(32)
        from dataclasses import replace

        picky = replace(request, requirements="other.active_vms == 0")
        bids = bed.run(bed.shop.estimate(picky))
        assert [b.bidder_name for b in bids] == ["plant1"]

    def test_unsatisfiable_requirements_no_bids(self):
        bed = build_testbed(seed=41, n_plants=2)
        from dataclasses import replace

        impossible = replace(
            experiment_request(32),
            requirements="other.host_memory_mb > 999999",
        )
        with pytest.raises(ShopError, match="no plant bid"):
            bed.run(bed.shop.create(impossible))

    def test_requirements_survive_xml_roundtrip(self):
        from dataclasses import replace

        from repro.core.dagxml import request_from_xml, request_to_xml

        request = replace(
            experiment_request(32),
            requirements="other.networks_free >= 1",
        )
        back = request_from_xml(request_to_xml(request))
        assert back.requirements == "other.networks_free >= 1"

    def test_description_ad_contents(self):
        bed = build_testbed(seed=41, n_plants=1)
        ad = bed.plants[0].description_ad()
        assert ad["kind"] == "vmplant"
        assert ad["host_memory_mb"] == 1536
        assert ad["networks_free"] == 4
        assert "vmware" in ad["vm_types"]


class TestScalability:
    def test_brokered_bidding_cuts_messages(self):
        result = run_scalability(
            seed=41, sizes=(4, 16), requests=4
        )
        flat4, brok4 = result.calls_per_create[4]
        flat16, brok16 = result.calls_per_create[16]
        assert flat16 > flat4  # linear growth
        assert brok16 < flat16  # brokers cut shop-side traffic
        # Flat cost is one estimate per plant + one create.
        assert flat16 == pytest.approx(17.0)

    def test_latency_not_hurt_by_brokers(self):
        result = run_scalability(seed=41, sizes=(16,), requests=4)
        flat_lat, brok_lat = result.latency[16]
        assert brok_lat < flat_lat * 1.2

    def test_render(self):
        result = run_scalability(seed=41, sizes=(4,), requests=2)
        assert "brokered" in result.render()


class TestMatchingScalability:
    def test_memo_absorbs_repeat_bids(self):
        result = run_matching_scalability(
            seed=41, sizes=(10, 50), requests=3
        )
        small = result.points[10]
        large = result.points[50]
        assert large["images"] == small["images"] + 40
        # All plants bid on each creation; identical requests share
        # the memo, so only the first select per generation pays.
        assert small["selects"] == large["selects"]
        assert small["memo_hits"] == small["selects"] - 1
        assert large["memo_hits"] == large["selects"] - 1
        # Each distinct filler profile is tested at most once.
        assert large["profiles_tested"] <= large["images"]
        assert "matching scalability" in result.render()


class TestStateCacheAblation:
    def test_cache_speeds_steady_state(self):
        result = run_state_cache_ablation(seed=41, count=6)
        assert result.steady_state_speedup > 1.15
        assert "replica" in result.render()

    def test_cache_flag_isolated_per_line(self):
        bed = build_testbed(seed=41, n_plants=1)
        line = bed.lines["vmware"][0]
        assert line.local_state_cache is False
        bed.run(bed.shop.create(experiment_request(32)))
        assert "vmware-mandrake81-32mb" in line._cached_images
