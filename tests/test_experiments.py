"""Smoke/shape tests for the experiment drivers (reduced scales).

The benchmarks run the full paper-scale experiments; here we verify
the drivers' mechanics and the key qualitative shapes at small n so
the test suite stays fast.
"""

import math

import pytest

from repro.experiments.ablations import (
    run_clone_mode_ablation,
    run_cost_model_ablation,
    run_matching_ablation,
    run_speculative_ablation,
)
from repro.experiments.costfn import run_costfn
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6 import run_figure6
from repro.experiments.runner import (
    run_creation_experiment,
    run_creation_suite,
)
from repro.experiments.textnumbers import run_textnumbers
from repro.experiments.uml import run_uml

SMALL_RUNS = {32: (12, 0.0), 64: (12, 0.0), 256: (8, 0.0)}


@pytest.fixture(scope="module")
def small_suite():
    return run_creation_suite(seed=77, runs=SMALL_RUNS)


class TestRunner:
    def test_sample_bookkeeping(self, small_suite):
        run = small_suite[32]
        assert len(run.samples) == 12
        assert len(run.successes) == 12
        assert len(run.clone_times) == 12
        assert all(s.latency > 0 for s in run.successes)

    def test_failures_recorded_not_raised(self):
        run = run_creation_experiment(
            32, 10, seed=77, failure_prob=0.9
        )
        failed = [s for s in run.samples if not s.ok]
        assert failed, "0.9 failure probability must produce failures"
        assert all(math.isnan(s.latency) for s in failed)
        assert all("failed" in s.error for s in failed)

    def test_clone_records_exclude_failures(self):
        run = run_creation_experiment(
            32, 10, seed=77, failure_prob=0.5
        )
        assert len(run.clone_records()) == len(run.successes)

    def test_latency_ordering_across_sizes(self, small_suite):
        import numpy as np

        means = {
            mem: np.mean(run.creation_latencies)
            for mem, run in small_suite.items()
        }
        assert means[32] < means[64] < means[256]


class TestFigures:
    def test_figure4_histograms(self, small_suite):
        result = run_figure4(suite=small_suite)
        assert set(result.histograms) == {"32 MB", "64 MB", "256 MB"}
        for hist in result.histograms.values():
            assert sum(hist.frequencies) == pytest.approx(1.0)
        text = result.render()
        assert "Figure 4" in text and "256 MB" in text

    def test_figure4_mode_shifts_right_with_memory(self, small_suite):
        result = run_figure4(suite=small_suite)
        assert (
            result.histograms["32 MB"].mode_center
            < result.histograms["256 MB"].mode_center
        )

    def test_figure5_cloning_distributions(self, small_suite):
        result = run_figure5(suite=small_suite)
        assert (
            result.summaries["32 MB"].mean
            < result.summaries["256 MB"].mean
        )
        assert "cloning" in result.render()

    def test_figure6_series_and_trend(self, small_suite):
        result = run_figure6(suite=small_suite)
        series = result.series["32 MB"]
        assert series[0][0] == 1
        assert len(series) == 12
        assert "sequence" in result.render()
        # head_tail_ratio well-defined
        assert result.head_tail_ratio("32 MB") > 0

    def test_figure6_pressure_growth_at_scale(self):
        # 40 requests over 2 plants of 64 MB VMs → 20 per host →
        # strong memory pressure by the tail.
        run = run_creation_experiment(64, 40, seed=3, n_plants=2)
        from repro.experiments.figure6 import Figure6Result
        from repro.analysis.stats import sequence_series

        result = Figure6Result(
            series={"64 MB": sequence_series(run.clone_times)},
            runs={64: run},
        )
        assert result.head_tail_ratio("64 MB", k=5) > 1.3
        assert result.trend_slope("64 MB") > 0


class TestUML:
    def test_uml_mean_near_paper(self):
        result = run_uml(seed=77, count=10)
        assert 60 < result.clone_summary.mean < 95  # paper: 76 s
        assert "76" in result.render()

    def test_uml_creation_exceeds_cloning(self):
        result = run_uml(seed=77, count=6)
        assert result.creation_summary.mean > result.clone_summary.mean


class TestCostFn:
    def test_crossover_at_fourteenth_request(self):
        result = run_costfn(seed=5, requests=16)
        assert result.crossover == 14
        first = result.first_plant
        assert all(
            plant == first for _, plant, _, _ in result.decisions[:13]
        )

    def test_bids_follow_formula(self):
        result = run_costfn(seed=5, requests=16)
        first = result.first_plant
        for seq, _, _, bids in result.decisions[1:13]:
            assert bids[first] == pytest.approx(4.0 * (seq - 1))

    def test_render_mentions_crossover(self):
        assert "crossover" in run_costfn(seed=5).render()

    def test_random_first_pick_varies_with_seed(self):
        picks = {run_costfn(seed=s, requests=1).first_plant
                 for s in range(8)}
        assert len(picks) == 2  # both plants seen across seeds


class TestTextNumbers:
    def test_claims_measured(self, small_suite):
        result = run_textnumbers(seed=77, suite=small_suite)
        assert result.creation_min < result.creation_max
        assert 2.0 < result.copy_over_clone_ratio < 7.0
        assert result.full_copy_clone_time > 150
        text = result.render()
        assert "210" in text and "paper" in text


class TestAblations:
    def test_clone_mode(self):
        result = run_clone_mode_ablation(seed=77, count=3)
        assert result.speedup > 3.0
        assert "link" in result.render()

    def test_matching(self):
        result = run_matching_ablation(seed=77, count=3)
        assert result.residual_with == 6
        assert result.residual_without == 9
        assert (
            result.with_matching.mean < result.without_matching.mean
        )

    def test_speculative(self):
        result = run_speculative_ablation(seed=77, count=3)
        assert result.speculative.mean < result.on_demand.mean
        assert result.pool_hits == 3
        assert result.latency_hidden > 0.3

    def test_cost_model(self):
        result = run_cost_model_ablation(
            seed=77, domains=3, vms_per_domain=3
        )
        assert (
            result.fresh_networks["network+compute"]
            <= result.fresh_networks["memory-headroom"]
        )
        assert result.fresh_networks["network+compute"] == 3
