"""Tests for the tracing facility and its instrumentation points."""

import pytest

from repro.sim.cluster import build_testbed
from repro.sim.kernel import Environment
from repro.sim.trace import Tracer, trace
from repro.workloads.requests import experiment_request


class TestTracer:
    def test_record_and_select(self):
        tracer = Tracer()
        tracer.record(1.0, "a", "one")
        tracer.record(2.0, "b", "two", key="v")
        tracer.record(3.0, "a", "three")
        assert len(tracer) == 3
        assert [e.message for e in tracer.select(category="a")] == [
            "one", "three",
        ]
        assert [e.message for e in tracer.select(since=1.5)] == [
            "two", "three",
        ]
        assert tracer.categories() == ["a", "b"]

    def test_capacity_drops_oldest(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.record(float(i), "c", f"m{i}")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        assert [e.message for e in tracer.events] == ["m3", "m4"]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_event_str_includes_data(self):
        tracer = Tracer()
        tracer.record(1.5, "cat", "msg", vmid="vm1")
        assert "vmid=vm1" in str(tracer.events[0])

    def test_trace_noop_without_tracer(self):
        env = Environment()
        trace(env, "x", "nothing happens")  # must not raise

    def test_trace_records_env_time(self):
        env = Environment()
        env.tracer = Tracer()

        def proc(env):
            yield env.timeout(4.5)
            trace(env, "cat", "late")

        env.run(until=env.process(proc(env)))
        assert env.tracer.events[0].time == 4.5


class TestInstrumentation:
    def test_creation_emits_ordered_events(self):
        bed = build_testbed(seed=13, n_plants=2)
        tracer = Tracer()
        bed.env.tracer = tracer
        bed.run(bed.shop.create(experiment_request(32)))
        categories = [e.category for e in tracer.events]
        assert "shop" in categories
        assert "ppp" in categories
        assert "line" in categories
        messages = [e.message for e in tracer.events]
        # Causal order: bids → clone start → cloned → running → created.
        assert messages.index("bids-collected") < messages.index(
            "clone-start"
        )
        assert messages.index("clone-start") < messages.index("cloned")
        assert messages.index("vm-running") < messages.index("created")

    def test_no_tracer_no_overhead_events(self):
        bed = build_testbed(seed=13, n_plants=2)
        bed.run(bed.shop.create(experiment_request(32)))
        assert getattr(bed.env, "tracer", None) is None

    def test_migration_traced(self):
        from repro.plant.migration import MigrationManager

        bed = build_testbed(seed=13, n_plants=2)
        tracer = Tracer()
        bed.env.tracer = tracer
        manager = MigrationManager(bed.env, link=bed.internode)
        bed.run(bed.plants[0].create(experiment_request(32), "vm1"))
        bed.run(manager.migrate(bed.plants[0], bed.plants[1], "vm1"))
        migration = tracer.select(category="migration")
        assert [e.message for e in migration] == ["start", "done"]
