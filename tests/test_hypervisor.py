"""Tests for the simulated VMware/UML production lines."""

import pytest

from repro.core.actions import Action, ActionScope
from repro.core.dag import ConfigDAG
from repro.core.errors import PlantError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.plant.ppp import ProductionOrder, ProductionProcessPlanner
from repro.plant.infosys import VMInformationSystem
from repro.plant.production import CloneMode
from repro.plant.warehouse import VMWarehouse
from repro.sim.host import PhysicalHost
from repro.sim.hypervisor import UMLLine, VMwareLine
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub
from repro.sim.storage import NFSServer
from repro.workloads.requests import (
    MANDRAKE_OS,
    experiment_dag,
    golden_image,
    install_os_action,
)

from tests.helpers import drive


def make_rig(line_cls=VMwareLine, vm_type="vmware", seed=1, **line_kwargs):
    env = Environment()
    rng = RngHub(seed)
    host = PhysicalHost(env, "h0")
    nfs = NFSServer(env, rng=rng)
    line = line_cls(env, host, nfs, rng=rng, **line_kwargs)
    warehouse = VMWarehouse(
        [golden_image(m, vm_type=vm_type) for m in (32, 64, 256)]
    )
    ppp = ProductionProcessPlanner(
        env, warehouse, VMInformationSystem(), {vm_type: line}
    )
    return env, host, line, ppp


def make_request(mem=32, vm_type="vmware"):
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=mem),
        software=SoftwareSpec(os=MANDRAKE_OS, dag=experiment_dag()),
        network=NetworkSpec(domain="d"),
        vm_type=vm_type,
    )


def produce(env, ppp, vmid, mem=32, vm_type="vmware", mode=CloneMode.LINK):
    order = ProductionOrder(
        vmid, make_request(mem, vm_type), clone_mode=mode,
        context={"ip": "10.0.0.9"},
    )
    return drive(env, ppp.produce(order))


class TestVMwareLine:
    def test_clone_time_grows_with_memory(self):
        times = {}
        for mem in (32, 64, 256):
            env, _, line, ppp = make_rig()
            produce(env, ppp, f"vm-{mem}", mem=mem)
            times[mem] = line.clone_records[0].total_time
        assert times[32] < times[64] < times[256]

    def test_link_clone_much_faster_than_copy(self):
        env, _, line, ppp = make_rig()
        produce(env, ppp, "link-vm", mode=CloneMode.LINK)
        env2, _, line2, ppp2 = make_rig()
        produce(env2, ppp2, "copy-vm", mode=CloneMode.COPY)
        link_t = line.clone_records[0].total_time
        copy_t = line2.clone_records[0].total_time
        assert copy_t > 5 * link_t

    def test_memory_admitted_and_released(self):
        env, host, line, ppp = make_rig()
        vm = produce(env, ppp, "vm1", mem=64)
        assert host.committed_guest_mb == 64
        drive(env, line.collect(vm))
        assert host.committed_guest_mb == 0
        assert host.vm_count == 0

    def test_pressure_raises_clone_time(self):
        env, host, line, ppp = make_rig()
        for i in range(16):
            produce(env, ppp, f"vm{i}", mem=64)
        records = line.clone_records
        assert records[-1].pressure > records[0].pressure
        assert records[-1].total_time > records[0].total_time

    def test_clone_failure_releases_memory(self):
        env, host, line, ppp = make_rig(clone_failure_prob=0.999)
        with pytest.raises(PlantError, match="failed to resume"):
            produce(env, ppp, "vm1")
        assert host.committed_guest_mb == 0
        assert line.clone_records == []

    def test_guest_action_charges_cdrom_path(self):
        env, _, line, ppp = make_rig()
        vm = produce(env, ppp, "vm1")
        guest = [r for r in vm.results if r.action == "configure-network"]
        assert guest[0].duration > 1.0  # ISO + connect + mount + script

    def test_host_action_is_cheap(self):
        env, _, line, ppp = make_rig()
        vm = produce(env, ppp, "vm1")

        def run_host_action():
            action = Action("dev-setup", scope=ActionScope.HOST)
            return drive(
                env, line.execute_action(vm, action, {"vmid": "vm1"})
            )

        result = run_host_action()
        assert result.ok
        assert result.duration < 1.0

    def test_action_failure_injection(self):
        env, _, line, ppp = make_rig(action_failure_prob=0.999)
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            produce(env, ppp, "vm1")

    def test_outputs_fabricated_from_context(self):
        env, _, line, ppp = make_rig()
        vm = produce(env, ppp, "vm1")
        assert vm.classad["ip"] == "10.0.0.9"

    def test_full_copy_estimate_matches_paper_scale(self):
        env, _, line, ppp = make_rig()
        estimate = line.full_copy_time_estimate(golden_image(256))
        assert 150 < estimate < 260  # paper: 210 s

    def test_can_host_respects_overcommit(self):
        env, host, line, ppp = make_rig(admission_overcommit=1.0)
        request = make_request(mem=1537)
        assert not line.can_host(request)
        assert line.can_host(make_request(mem=512))

    def test_validation(self):
        env = Environment()
        host = PhysicalHost(env, "h")
        nfs = NFSServer(env)
        with pytest.raises(ValueError):
            VMwareLine(env, host, nfs, clone_failure_prob=1.5)


class TestUMLLine:
    def test_boot_dominates_clone_time(self):
        env, _, line, ppp = make_rig(UMLLine, vm_type="uml")
        produce(env, ppp, "vm1", vm_type="uml")
        record = line.clone_records[0]
        assert record.resume_time > 0.8 * record.total_time

    def test_uml_clone_time_insensitive_to_memory(self):
        times = {}
        for mem in (32, 256):
            env, _, line, ppp = make_rig(UMLLine, vm_type="uml")
            produce(env, ppp, f"vm-{mem}", mem=mem, vm_type="uml")
            times[mem] = line.clone_records[0].total_time
        # No memory state to copy: within 25% of each other.
        assert times[256] < times[32] * 1.25

    def test_uml_slower_than_vmware_resume(self):
        env, _, uml, ppp = make_rig(UMLLine, vm_type="uml")
        produce(env, ppp, "vm1", vm_type="uml")
        env2, _, vmw, ppp2 = make_rig()
        produce(env2, ppp2, "vm2")
        assert (
            uml.clone_records[0].total_time
            > 2 * vmw.clone_records[0].total_time
        )

    def test_uml_boot_failure(self):
        env, host, line, ppp = make_rig(
            UMLLine, vm_type="uml", clone_failure_prob=0.999
        )
        with pytest.raises(PlantError, match="failed to boot"):
            produce(env, ppp, "vm1", vm_type="uml")
        assert host.committed_guest_mb == 0
