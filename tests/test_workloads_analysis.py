"""Tests for workload builders and analysis utilities."""

import math

import pytest

from repro.analysis.histograms import (
    FIG4_BIN_CENTERS,
    FIG5_BIN_CENTERS,
    histogram,
)
from repro.analysis.stats import bucket_means, sequence_series, summarize
from repro.analysis.tables import (
    render_histogram_table,
    render_series,
    render_summary_table,
)
from repro.core.matching import match_image
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage
from repro.workloads.invigo import (
    INVIGO_ACTIONS,
    invigo_cached_prefix,
    invigo_workspace_dag,
)
from repro.workloads.requests import (
    experiment_dag,
    experiment_request,
    golden_image,
    request_stream,
)


class TestInvigo:
    def test_dag_has_nine_actions(self):
        dag = invigo_workspace_dag()
        assert len(dag) == 9
        dag.validate()

    def test_partial_order_matches_figure3(self):
        dag = invigo_workspace_dag()
        a = INVIGO_ACTIONS
        assert dag.is_before(a["A"], a["F"])
        assert dag.is_before(a["G"], a["H"])
        # G and I are unordered siblings under F.
        assert not dag.is_before(a["G"], a["I"])
        assert not dag.is_before(a["I"], a["G"])

    def test_cached_prefix_is_valid_prefix(self):
        dag = invigo_workspace_dag()
        prefix = [a.name for a in invigo_cached_prefix()]
        assert dag.is_prefix_set(prefix)

    def test_cached_prefix_matches_as_golden_image(self):
        dag = invigo_workspace_dag("arijit")
        image = GoldenImage(
            image_id="ws", vm_type="vmware", os="rh8",
            hardware=HardwareSpec(memory_mb=32),
            performed=tuple(invigo_cached_prefix("arijit")),
        )
        result = match_image(image, dag, HardwareSpec(memory_mb=32), "rh8")
        assert result.matches
        assert result.depth == 3
        assert len(result.residual) == 6

    def test_username_parameterizes_actions(self):
        d1 = invigo_workspace_dag("alice")
        d2 = invigo_workspace_dag("bob")
        assert d1 != d2


class TestRequestWorkloads:
    def test_experiment_dag_shape(self):
        dag = experiment_dag()
        assert dag.topological_sort() == [
            "install-os", "configure-network", "setup-user",
        ]

    def test_golden_image_matches_experiment_request(self):
        image = golden_image(64)
        request = experiment_request(64)
        result = match_image(
            image, request.dag, request.hardware, request.software.os,
            "vmware",
        )
        assert result.matches
        assert result.residual == ("configure-network", "setup-user")

    def test_request_stream_round_robins_domains(self):
        stream = request_stream(32, 4, domains=("d1", "d2"))
        assert [r.network.domain for r in stream] == [
            "d1", "d2", "d1", "d2",
        ]

    def test_request_stream_negative_count_rejected(self):
        with pytest.raises(ValueError):
            request_stream(32, -1)


class TestHistogram:
    def test_counts_and_frequencies(self):
        h = histogram([4, 6, 14, 16, 24], centers=[5, 15, 25])
        assert h.counts == (2, 2, 1)
        assert h.total == 5
        assert sum(h.frequencies) == pytest.approx(1.0)

    def test_clamping_at_both_ends(self):
        h = histogram([-100, 0, 1000], centers=[5, 15, 25])
        assert h.counts == (2, 0, 1)

    def test_edges_at_midpoints(self):
        h = histogram([9.99, 10.01], centers=[5, 15])
        assert h.counts == (1, 1)

    def test_paper_bin_layouts(self):
        assert FIG4_BIN_CENTERS == (5, 15, 25, 35, 45, 55, 65, 75, 85)
        assert FIG5_BIN_CENTERS[-2:] == (60, 70.0)

    def test_mode_and_mean_estimate(self):
        h = histogram([24, 26, 25, 44], centers=[5, 15, 25, 35, 45])
        assert h.mode_center == 25
        assert h.mean_estimate() == pytest.approx((25 * 3 + 45) / 4)

    def test_empty_sample(self):
        h = histogram([], centers=[5, 15])
        assert h.total == 0
        assert h.frequencies == (0.0, 0.0)
        assert math.isnan(h.mean_estimate())

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([1], centers=[5])
        with pytest.raises(ValueError):
            histogram([1], centers=[5, 5])


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_summarize_empty(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)

    def test_summarize_rejects_nan(self):
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_sequence_series_one_based(self):
        assert sequence_series([10.0, 20.0]) == [(1, 10.0), (2, 20.0)]

    def test_bucket_means(self):
        means = bucket_means([1, 1, 3, 3, 5], bucket=2)
        assert means == [(2, 1.0), (4, 3.0), (5, 5.0)]
        with pytest.raises(ValueError):
            bucket_means([1], bucket=0)


class TestTables:
    def test_histogram_table_renders_all_series(self):
        series = {
            "32 MB": histogram([10, 20], centers=[5, 15, 25]),
            "64 MB": histogram([20, 30], centers=[5, 15, 25]),
        }
        text = render_histogram_table("T", series)
        assert "32 MB" in text and "64 MB" in text
        assert text.count("\n") > 5

    def test_histogram_table_rejects_mismatched_bins(self):
        series = {
            "a": histogram([1], centers=[5, 15]),
            "b": histogram([1], centers=[5, 25]),
        }
        with pytest.raises(ValueError):
            render_histogram_table("T", series)

    def test_summary_table(self):
        text = render_summary_table("T", {"x": summarize([1.0, 2.0])})
        assert "mean" in text and "x" in text

    def test_series_table_aligns_and_subsamples(self):
        series = {"s": [(i, float(i)) for i in range(1, 101)]}
        text = render_series("T", series, max_rows=10)
        assert text.count("\n") < 20
        assert "100" in text  # last point always kept


class TestPoissonArrivals:
    def test_reproducible_and_increasing(self):
        from repro.sim.rng import RngHub
        from repro.workloads.requests import poisson_arrivals

        a = poisson_arrivals(RngHub(5), rate_per_s=0.5, count=20)
        b = poisson_arrivals(RngHub(5), rate_per_s=0.5, count=20)
        assert a == b
        assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))

    def test_mean_interarrival_near_rate(self):
        from repro.sim.rng import RngHub
        from repro.workloads.requests import poisson_arrivals

        times = poisson_arrivals(RngHub(5), rate_per_s=2.0, count=2000)
        gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert 0.4 < mean < 0.6  # 1/rate = 0.5

    def test_validation(self):
        from repro.sim.rng import RngHub
        from repro.workloads.requests import poisson_arrivals

        with pytest.raises(ValueError):
            poisson_arrivals(RngHub(5), rate_per_s=0.0, count=1)
        with pytest.raises(ValueError):
            poisson_arrivals(RngHub(5), rate_per_s=1.0, count=-1)

    def test_open_loop_drive(self):
        """Arrivals drive an open-loop creation workload end to end."""
        from repro.sim.cluster import build_testbed
        from repro.workloads.requests import (
            poisson_arrivals,
            request_stream,
        )

        bed = build_testbed(seed=73, n_plants=4)
        times = poisson_arrivals(bed.rng, rate_per_s=0.05, count=6)
        done = []

        def arrive(at, request):
            yield bed.env.timeout(at)
            ad = yield from bed.shop.create(request)
            done.append(str(ad["vmid"]))

        for at, request in zip(times, request_stream(32, 6)):
            bed.env.process(arrive(at, request))
        bed.env.run()
        assert len(done) == 6
