"""Every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=lambda p: p.stem
)
def test_example_runs(script):
    if script.stem == "reproduce_paper":
        pytest.skip("covered by the benchmark harness (slow)")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_examples_exist():
    assert len(EXAMPLES) >= 6
