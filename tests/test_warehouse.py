"""Unit tests for golden images and the VM warehouse."""

import pytest

from repro.core.actions import Action
from repro.core.errors import ProtocolError, WarehouseError
from repro.core.spec import HardwareSpec
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.workloads.requests import golden_image, install_os_action


class TestGoldenImage:
    def test_clone_payload_excludes_disk(self):
        image = golden_image(64)
        assert image.clone_payload_mb == pytest.approx(
            0.1 + 16.0 + 64.0
        )
        assert image.disk_state_mb == 2048.0

    def test_uml_image_has_no_memory_state(self):
        image = golden_image(32, vm_type="uml")
        assert image.memory_state_mb == 0.0

    def test_performed_names_ordered(self):
        image = GoldenImage(
            image_id="i",
            vm_type="vmware",
            os="os",
            hardware=HardwareSpec(),
            performed=(Action("b"), Action("a")),
        )
        assert image.performed_names == ("b", "a")

    def test_with_performed_appends(self):
        base = golden_image(32)
        derived = base.with_performed(
            [Action("extra")], image_id="derived"
        )
        assert derived.image_id == "derived"
        assert derived.performed_names == ("install-os", "extra")
        # Original untouched (frozen dataclass).
        assert base.performed_names == ("install-os",)

    def test_validation(self):
        with pytest.raises(ValueError):
            GoldenImage(
                image_id="i", vm_type="v", os="o",
                hardware=HardwareSpec(), disk_state_mb=-1,
            )
        with pytest.raises(ValueError):
            GoldenImage(
                image_id="i", vm_type="v", os="o",
                hardware=HardwareSpec(), disk_files=0,
            )

    def test_xml_roundtrip(self):
        image = GoldenImage(
            image_id="workspace",
            vm_type="vmware",
            os="rh8",
            hardware=HardwareSpec(memory_mb=128, disk_gb=8.0, cpus=2),
            performed=(
                install_os_action("rh8"),
                Action("install-vnc", command="rpm -i {p}",
                       params={"p": "vnc.rpm"}, outputs=("port",)),
            ),
            disk_state_mb=1024.0,
            disk_files=8,
            memory_state_mb=128.0,
            base_redo_mb=32.0,
        )
        back = GoldenImage.from_xml(image.to_xml())
        assert back == image

    def test_xml_strictness(self):
        with pytest.raises(ProtocolError):
            GoldenImage.from_xml("<nope/>")
        with pytest.raises(ProtocolError):
            GoldenImage.from_xml('<golden-image id="x"/>')  # missing attrs

    def test_classad_description(self):
        ad = golden_image(64).to_classad()
        assert ad["memory_mb"] == 64
        assert ad["performed"] == ["install-os"]


class TestVMWarehouse:
    def test_publish_and_get(self):
        wh = VMWarehouse([golden_image(32)])
        assert len(wh) == 1
        assert "vmware-mandrake81-32mb" in wh
        assert wh.get("vmware-mandrake81-32mb").hardware.memory_mb == 32

    def test_duplicate_publish_rejected(self):
        wh = VMWarehouse([golden_image(32)])
        with pytest.raises(WarehouseError):
            wh.publish(golden_image(32))

    def test_unpublish(self):
        wh = VMWarehouse([golden_image(32)])
        image = wh.unpublish("vmware-mandrake81-32mb")
        assert image.hardware.memory_mb == 32
        assert len(wh) == 0
        with pytest.raises(WarehouseError):
            wh.unpublish("vmware-mandrake81-32mb")

    def test_get_missing_raises(self):
        with pytest.raises(WarehouseError):
            VMWarehouse().get("ghost")

    def test_images_filter_by_vm_type(self):
        wh = VMWarehouse(
            [golden_image(32), golden_image(32, vm_type="uml")]
        )
        assert len(wh.images()) == 2
        assert len(wh.images("vmware")) == 1
        assert wh.images("uml")[0].vm_type == "uml"

    def test_dump_load_xml_roundtrip(self):
        wh = VMWarehouse(
            [golden_image(m) for m in (32, 64, 256)]
        )
        back = VMWarehouse.load_xml(wh.dump_xml())
        assert len(back) == 3
        for memory in (32, 64, 256):
            image_id = f"vmware-mandrake81-{memory}mb"
            assert back.get(image_id) == wh.get(image_id)

    def test_load_xml_strictness(self):
        with pytest.raises(ProtocolError):
            VMWarehouse.load_xml("<not-a-warehouse/>")

    def test_to_element_builder_matches_string_api(self):
        import xml.etree.ElementTree as ET

        image = golden_image(64)
        element = image.to_element()
        assert element.tag == "golden-image"
        assert image.to_xml() == ET.tostring(element, encoding="unicode")
        assert GoldenImage.from_xml(
            ET.tostring(element, encoding="unicode")
        ) == image

    def test_dump_xml_appends_elements_without_reparsing(self, monkeypatch):
        import xml.etree.ElementTree as ET

        wh = VMWarehouse([golden_image(32), golden_image(64)])

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("dump_xml must not re-parse strings")

        monkeypatch.setattr(ET, "fromstring", boom)
        text = wh.dump_xml()
        monkeypatch.undo()
        assert len(VMWarehouse.load_xml(text)) == 2
