"""Tests for the peer-to-peer image distribution layer.

Peer stores, broadcast-tree planning, failure fallback, replica
placement, the load-aware warehouse replica selection, the coalescer's
outage semantics, and the guarantee that the whole layer is invisible
when switched off.
"""

import hashlib

import pytest

from repro.core.errors import StorageError
from repro.distribution import DistributionPlanner, ReplicaPlacer
from repro.provisioning import FULL_PROVISIONING, ProvisioningConfig
from repro.sim.cluster import build_testbed
from repro.sim.host import HostStateCache, PhysicalHost
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub
from repro.sim.storage import NFSServer, ReplicatedWarehouseStorage
from repro.workloads.requests import experiment_request, request_stream

from tests.helpers import drive


class TestDistributionConfig:
    def test_defaults_disabled(self):
        config = ProvisioningConfig()
        assert not config.distribution_tree
        assert not config.replica_placement
        assert not config.enabled

    def test_tree_alone_enables_layer(self):
        config = ProvisioningConfig(distribution_tree=True)
        assert config.enabled

    def test_full_provisioning_gains_tree(self):
        assert FULL_PROVISIONING.distribution_tree
        assert FULL_PROVISIONING.replica_placement

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tree_fanout": 0},
            {"peer_store_mb": 0.0},
            {"peer_bandwidth_mbps": 0.0},
            {"placement_period_s": 0.0},
            {"placement_top_k": 0},
            {"placement_seed_hosts": 0},
            {"replica_placement": True},  # requires distribution_tree
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProvisioningConfig(**kwargs)


class TestCachePinning:
    def test_pinned_entry_skipped_by_eviction(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 60.0)
        cache.insert("b", 30.0)
        cache.pin("a")
        # a is LRU, but pinned: b must be the victim instead.
        assert cache.insert("c", 40.0)
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_insert_refused_when_only_pinned_evictable(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 90.0)
        cache.pin("a")
        assert not cache.insert("d", 50.0)
        assert cache.eviction_refusals == 1
        assert "a" in cache and cache.used_mb == pytest.approx(90.0)

    def test_refused_refresh_restores_previous_entry(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 50.0)
        cache.insert("b", 40.0)
        cache.pin("b")
        # Refreshing a to a size that cannot fit without evicting the
        # pinned b must put the old a back untouched.
        assert not cache.insert("a", 70.0)
        assert "a" in cache
        assert cache.used_mb == pytest.approx(90.0)

    def test_unpin_reenables_eviction(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 90.0)
        cache.pin("a")
        cache.pin("a")
        cache.unpin("a")
        assert cache.pinned("a")  # one pin still held
        cache.unpin("a")
        assert not cache.pinned("a")
        assert cache.insert("d", 50.0)
        assert "a" not in cache

    def test_clear_drops_pins(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 10.0)
        cache.pin("a")
        cache.clear()
        assert not cache.pinned("a")
        cache.unpin("a")  # missing pins are ignored (crash unwinding)

    def test_unpinned_behaviour_is_plain_lru(self):
        cache = HostStateCache(100.0)
        cache.insert("a", 40.0)
        cache.insert("b", 40.0)
        cache.lookup("a")
        cache.insert("c", 40.0)
        assert "b" not in cache and "a" in cache
        assert cache.eviction_refusals == 0


def _site(n_hosts: int, fanout: int = 2, cache_mb: float = 1024.0):
    """A bare planner site: hosts + NFS + planner, no plants."""
    env = Environment()
    nfs = NFSServer(env, rng=RngHub(7))
    planner = DistributionPlanner(env, nfs, fanout=fanout)
    hosts = []
    for i in range(n_hosts):
        host = PhysicalHost(
            env, f"node{i}", state_cache=HostStateCache(cache_mb)
        )
        planner.register_host(host)
        hosts.append(host)
    return env, nfs, planner, hosts


class TestDistributionPlanner:
    PAYLOAD = 80.1

    def test_first_fetch_seeds_from_nfs_then_peers_take_over(self):
        env, nfs, planner, hosts = _site(3)
        assert drive(
            env, planner.fetch(hosts[0], "img", self.PAYLOAD, files=3)
        ) == "nfs"
        nfs_mb = nfs.mb_served
        assert drive(
            env, planner.fetch(hosts[1], "img", self.PAYLOAD)
        ) == "peer"
        assert drive(
            env, planner.fetch(hosts[2], "img", self.PAYLOAD)
        ) == "peer"
        assert nfs.mb_served == nfs_mb  # no further warehouse bytes
        assert planner.peer_hops == 2
        assert planner.stores["node0"].serves >= 1

    def test_refetch_on_seeded_host_is_local(self):
        env, nfs, planner, hosts = _site(2)
        drive(env, planner.fetch(hosts[0], "img", self.PAYLOAD))
        assert drive(
            env, planner.fetch(hosts[0], "img", self.PAYLOAD)
        ) == "local"
        assert planner.local_hits == 1

    def test_concurrent_burst_builds_tree_one_nfs_seed(self):
        env, nfs, planner, hosts = _site(8)
        results = []

        def one(host):
            source = yield from planner.fetch(host, "img", self.PAYLOAD)
            results.append(source)

        def burst():
            procs = [env.process(one(h)) for h in hosts]
            yield env.all_of(procs)

        drive(env, burst())
        assert sorted(results).count("nfs") == 1
        assert results.count("peer") == 7
        assert planner.nfs_seeds == 1
        assert planner.attaches > 0  # late arrivals rode in-flight legs
        assert nfs.mb_served == pytest.approx(self.PAYLOAD)
        assert planner._flights == {}  # nothing orphaned

    def test_fanout_bound_respected(self):
        env, nfs, planner, hosts = _site(6, fanout=1)
        drive(env, planner.fetch(hosts[0], "img", self.PAYLOAD))
        peak = [0]

        orig = planner._peer_copy

        def spy(source, dest, image_id, payload_mb):
            peak[0] = max(
                peak[0],
                max(
                    s.active_serves + (1 if s is source else 0)
                    for s in planner.stores.values()
                ),
            )
            return orig(source, dest, image_id, payload_mb)

        planner._peer_copy = spy

        def burst():
            procs = [
                env.process(planner.fetch(h, "img", self.PAYLOAD))
                for h in hosts[1:]
            ]
            yield env.all_of(procs)

        drive(env, burst())
        assert peak[0] <= 1

    def test_source_crash_falls_back_to_nfs(self):
        env, nfs, planner, hosts = _site(2)
        drive(env, planner.fetch(hosts[0], "img", self.PAYLOAD))
        nfs_before = nfs.mb_served
        outcome = []

        def fetch():
            source = yield from planner.fetch(
                hosts[1], "img", self.PAYLOAD
            )
            outcome.append(source)

        def crash_source():
            yield env.timeout(0.3)  # mid peer transfer (~0.73 s)
            hosts[0].crash()
            hosts[0].state_cache.clear()
            planner.on_host_crashed(hosts[0])

        def both():
            procs = [env.process(fetch()), env.process(crash_source())]
            yield env.all_of(procs)

        drive(env, both())
        assert outcome == ["nfs"]
        assert planner.fallbacks == 1
        assert nfs.mb_served > nfs_before  # fell back to the warehouse
        assert planner._flights == {}
        # The dead host serves nothing and holds no pins.
        assert planner.stores["node0"].active_serves == 0

    def test_serve_pins_entry_against_eviction(self):
        env, nfs, planner, hosts = _site(2, cache_mb=100.0)
        drive(env, planner.fetch(hosts[0], "img", 90.0))
        cache = hosts[0].state_cache
        seen = []

        def fetch():
            source = yield from planner.fetch(hosts[1], "img", 90.0)
            seen.append(source)

        def evict_mid_serve():
            yield env.timeout(0.3)
            assert cache.pinned("img")
            # A competing insert cannot push the served entry out.
            assert not cache.insert("other", 50.0)
            assert "img" in cache

        def both():
            procs = [env.process(fetch()), env.process(evict_mid_serve())]
            yield env.all_of(procs)

        drive(env, both())
        assert seen == ["peer"]
        assert not cache.pinned("img")  # pin released with the serve
        assert cache.insert("other", 50.0)  # and eviction works again

    def test_trace_events_cover_tree_hops_and_attaches(self):
        from repro.sim.trace import Tracer

        env, nfs, planner, hosts = _site(4)
        env.tracer = Tracer()

        def burst():
            procs = [
                env.process(planner.fetch(h, "img", self.PAYLOAD))
                for h in hosts
            ]
            yield env.all_of(procs)

        drive(env, burst())
        events = [e for e in env.tracer.events if e.category == "storage"]
        hops = [e for e in events if e.message == "tree-hop"]
        attaches = [e for e in events if e.message == "tree-attach"]
        assert any(e.data["source"] == "nfs" for e in hops)
        assert any(e.data["source"] != "nfs" for e in hops)
        assert {e.data["dest"] for e in hops} == {h.name for h in hosts}
        assert attaches and all(
            {"follower", "leader", "kind"} <= set(e.data) for e in attaches
        )

    def test_register_requires_state_cache(self):
        env = Environment()
        planner = DistributionPlanner(env, NFSServer(env))
        with pytest.raises(ValueError):
            planner.register_host(PhysicalHost(env, "bare"))


class TestCoalescerOutage:
    """Satellite: NFS outage beginning mid-coalesced-copy."""

    def _race_into_outage(self, mode: str):
        env = Environment()
        nfs = NFSServer(env, rng=RngHub(3))
        host = PhysicalHost(env, "node0")
        errors = []

        def one(idx):
            try:
                yield from nfs.copy_to_host_coalesced(
                    ("node0", "img"), 48.1, host, files=3
                )
            except StorageError as exc:
                errors.append((idx, str(exc)))

        def outage():
            yield env.timeout(2.0)  # both callers mid-transfer
            nfs.begin_outage(mode)

        def script():
            procs = [
                env.process(one(0)),
                env.process(one(1)),
                env.process(outage()),
            ]
            yield env.all_of(procs)

        drive(env, script())
        return nfs, errors

    def test_abort_fails_leader_and_followers_together(self):
        nfs, errors = self._race_into_outage("abort")
        assert len(errors) == 2
        leader_error = dict(errors)[0]
        follower_error = dict(errors)[1]
        assert "outage" in leader_error
        # The follower observes the same root cause, via the leader.
        assert "leader" in follower_error
        assert "outage" in follower_error
        # No orphaned in-flight entries: the table fully unwound.
        assert nfs.coalescer.inflight == 0
        assert nfs.coalescer.requests_coalesced == 1

    def test_leader_abort_emits_coalesce_attach_trace(self):
        from repro.sim.trace import Tracer

        env = Environment()
        env.tracer = Tracer()
        nfs = NFSServer(env, rng=RngHub(3))
        host = PhysicalHost(env, "node0")

        def both():
            procs = [
                env.process(
                    nfs.copy_to_host_coalesced(("n", "img"), 48.1, host)
                )
                for _ in range(2)
            ]
            yield env.all_of(procs)

        drive(env, both())
        attaches = [
            e
            for e in env.tracer.events
            if e.category == "storage" and e.message == "coalesce-attach"
        ]
        assert len(attaches) == 1
        assert attaches[0].data["host"] == "node0"


class TestLoadAwareReplicaPick:
    """Satellite: least-in-flight-MB replica selection."""

    def _replicated(self, n=3):
        env = Environment()
        replicas = [
            NFSServer(env, f"nfs{i}", rng=RngHub(i)) for i in range(n)
        ]
        return env, ReplicatedWarehouseStorage(replicas)

    def test_idle_tie_breaks_to_first_replica(self):
        env, storage = self._replicated()
        assert storage._pick() is storage.replicas[0]

    def test_big_transfer_steers_next_op_away(self):
        env, storage = self._replicated(2)
        host = PhysicalHost(env, "node0")
        order = []

        def big():
            order.append("big-start")
            yield from storage.copy_to_host(2048.0, host, files=16)

        def small():
            yield env.timeout(1.0)  # the big copy is in flight
            # replica0 carries ~2 GB in flight; replica1 must win even
            # though replica0 would win the index tie-break.
            assert storage._pick() is storage.replicas[1]
            yield from storage.read_file(16.0)

        def script():
            procs = [env.process(big()), env.process(small())]
            yield env.all_of(procs)

        drive(env, script())
        assert storage.replicas[1].requests_served == 1
        # In-flight accounting fully unwound on completion.
        assert all(v == 0.0 for v in storage._inflight_mb.values())

    def test_inflight_mb_beats_flow_count(self):
        """A burst of small reads must not pile onto a replica that is
        mid-way through one multi-GB copy (the flow-count failure)."""
        env, storage = self._replicated(2)
        host = PhysicalHost(env, "node0")
        served = []

        def big():
            yield from storage.copy_to_host(4096.0, host, files=16)

        def smalls():
            yield env.timeout(1.0)
            for _ in range(3):
                # Sequential small reads: each sees replica0 still
                # loaded with the big copy and goes to replica1.
                yield from storage.read_file(8.0)
                served.append(
                    tuple(r.requests_served for r in storage.replicas)
                )

        def script():
            procs = [env.process(big()), env.process(smalls())]
            yield env.all_of(procs)

        drive(env, script())
        assert storage.replicas[1].requests_served == 3


class TestReplicaPlacer:
    def _bed(self, n_plants=4, **overrides):
        params = dict(
            distribution_tree=True,
            replica_placement=True,
            placement_top_k=1,
            placement_seed_hosts=2,
            placement_period_s=50.0,
        )
        params.update(overrides)
        return build_testbed(
            seed=9,
            n_plants=n_plants,
            provisioning=ProvisioningConfig(**params),
        )

    def test_popularity_counts_memo_hits(self):
        bed = self._bed()
        request = experiment_request(32)
        # Two plants bidding on identical requests: the second select
        # is a memo hit yet still counts toward popularity.
        drive(bed.env, bed.shop.create(request))
        drive(bed.env, bed.shop.create(experiment_request(32)))
        popularity = bed.warehouse.popularity
        winner, count = max(popularity.items(), key=lambda kv: kv[1])
        assert count >= 2
        assert bed.warehouse.match_stats["memo_hits"] > 0

    def test_place_once_seeds_hot_image_on_seed_hosts(self):
        bed = self._bed()
        drive(bed.env, bed.shop.create(experiment_request(32)))
        placer = bed.placer
        launched = placer.place_once()
        assert launched > 0
        bed.env.run()  # drain the background pushes
        hot = placer.hot_images()[0]
        seeded = [
            s
            for s in bed.distribution.stores.values()
            if s.holds(hot.image_id)
        ]
        assert len(seeded) >= 2
        assert placer.pushes_failed == 0
        # Re-planning with nothing changed launches nothing.
        assert placer.place_once() == 0

    def test_clone_on_seeded_host_skips_all_network(self):
        bed = self._bed()
        drive(bed.env, bed.plants[0].create(experiment_request(32), "v0"))
        bed.placer.place_once()
        bed.env.run()
        nfs_mb = bed.nfs.mb_served
        hot = bed.placer.hot_images()[0]
        seeded_host = next(
            s.host.name
            for s in bed.distribution.stores.values()
            if s.holds(hot.image_id) and s.host.name != "node0"
        )
        index = int(seeded_host.removeprefix("node"))
        drive(
            bed.env,
            bed.plants[index].create(experiment_request(32), "v1"),
        )
        record = bed.clone_records()[-1]
        assert record.copy_source in ("host-cache", "local")
        assert bed.nfs.mb_served == nfs_mb

    def test_daemon_start_stop(self):
        bed = self._bed()
        drive(bed.env, bed.shop.create(experiment_request(32)))
        placer = bed.placer
        placer.start()

        def wait():
            yield bed.env.timeout(120.0)

        drive(bed.env, wait())
        assert placer.sweeps >= 2
        placer.stop()
        bed.env.run()
        sweeps = placer.sweeps
        drive(bed.env, wait())
        assert placer.sweeps == sweeps

    def test_placer_validation(self):
        bed = self._bed()
        with pytest.raises(ValueError):
            ReplicaPlacer(
                bed.env, bed.distribution, bed.warehouse, period_s=0.0
            )


class TestTreeTestbedIntegration:
    def test_burst_one_nfs_seed_and_faster_than_star(self):
        def burst(bed):
            request = experiment_request(64)

            def one(i):
                yield from bed.plants[i].create(request, f"vm-{i}")

            def script():
                procs = [
                    bed.env.process(one(i))
                    for i in range(len(bed.plants))
                ]
                yield bed.env.all_of(procs)

            drive(bed.env, script())
            return bed.env.now

        tree_bed = build_testbed(
            seed=5,
            n_plants=8,
            provisioning=ProvisioningConfig(distribution_tree=True),
        )
        star_bed = build_testbed(seed=5, n_plants=8)
        tree_time = burst(tree_bed)
        star_time = burst(star_bed)
        assert tree_time < star_time / 2
        sources = [r.copy_source for r in tree_bed.clone_records()]
        assert sources.count("nfs") == 1
        assert sources.count("peer") == 7
        assert tree_bed.nfs.mb_served < star_bed.nfs.mb_served / 4

    def test_host_crash_mid_tree_recovers_via_nfs(self):
        bed = build_testbed(
            seed=5,
            n_plants=3,
            provisioning=ProvisioningConfig(distribution_tree=True),
        )
        request = experiment_request(64)
        drive(bed.env, bed.plants[0].create(request, "v0"))
        line = bed.lines["vmware"][0]

        def fetcher():
            yield from bed.plants[1].create(request, "v1")

        def killer():
            yield bed.env.timeout(0.3)
            line.host_crashed()

        def script():
            procs = [
                bed.env.process(fetcher()),
                bed.env.process(killer()),
            ]
            yield bed.env.all_of(procs)

        drive(bed.env, script())
        assert bed.distribution.fallbacks >= 1
        record = bed.clone_records()[-1]
        assert record.copy_source == "nfs"


class TestDisabledTreeIsInvisible:
    def test_all_off_testbed_has_no_distribution_machinery(self):
        bed = build_testbed(seed=11, n_plants=2)
        assert bed.distribution is None
        assert bed.placer is None
        for line_list in bed.lines.values():
            assert all(l.distribution is None for l in line_list)

    def test_golden_trace_fingerprint_unchanged(self):
        """Regression pin for the load-aware `_pick` and planner work:
        the all-off site still reproduces the seed golden trajectory
        (same workload and hash as tests/test_determinism.py)."""
        from tests.test_determinism import TestGoldenTrajectories

        bed = build_testbed(
            seed=11, n_plants=2, provisioning=ProvisioningConfig()
        )
        tracer = bed.attach_tracer()

        def client():
            for request in request_stream(32, 4):
                yield from bed.shop.create(request)

        bed.run(client())
        fp = hashlib.sha256(
            repr(
                [
                    (
                        e.time,
                        e.category,
                        e.message,
                        tuple(sorted(e.data.items())),
                    )
                    for e in tracer.events
                ]
            ).encode()
        ).hexdigest()
        assert fp == TestGoldenTrajectories.TRACE_FP
