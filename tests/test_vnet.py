"""Unit tests for the virtual-networking subsystem."""

import pytest

from repro.core.errors import VNetError
from repro.vnet.hostonly import HostOnlyNetworkPool, IPAllocator
from repro.vnet.tunnels import Gateway
from repro.vnet.vnetd import VirtualNetworkService, VNetProxy, VNetServer


class TestIPAllocator:
    def test_sequential_allocation(self):
        alloc = IPAllocator("10.0.0")
        assert alloc.allocate() == "10.0.0.2"
        assert alloc.allocate() == "10.0.0.3"

    def test_release_and_reuse(self):
        alloc = IPAllocator("10.0.0")
        first = alloc.allocate()
        alloc.allocate()
        alloc.release(first)
        assert alloc.allocate() == first

    def test_exhaustion(self):
        alloc = IPAllocator("10.0.0", first_host=2, last_host=3)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(VNetError):
            alloc.allocate()

    def test_foreign_release_rejected(self):
        alloc = IPAllocator("10.0.0")
        with pytest.raises(VNetError):
            alloc.release("10.9.9.2")

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            IPAllocator("10.0.0", first_host=200, last_host=100)


class TestHostOnlyNetworkPool:
    def test_attach_allocates_fresh_network(self):
        pool = HostOnlyNetworkPool("p", count=4)
        assignment = pool.attach("d1", "vm1")
        assert assignment.fresh_allocation
        assert pool.free_count == 3
        assert pool.network_of("d1").network_id == assignment.network_id

    def test_same_domain_shares_network(self):
        pool = HostOnlyNetworkPool("p", count=4)
        a1 = pool.attach("d1", "vm1")
        a2 = pool.attach("d1", "vm2")
        assert a1.network_id == a2.network_id
        assert not a2.fresh_allocation
        assert a1.ip_address != a2.ip_address

    def test_domains_never_share(self):
        pool = HostOnlyNetworkPool("p", count=4)
        ids = {
            pool.attach(f"d{i}", f"vm{i}").network_id for i in range(4)
        }
        assert len(ids) == 4
        pool.check_isolation()

    def test_exhaustion_for_new_domain(self):
        pool = HostOnlyNetworkPool("p", count=2)
        pool.attach("d1", "vm1")
        pool.attach("d2", "vm2")
        with pytest.raises(VNetError, match="no free host-only"):
            pool.attach("d3", "vm3")
        # Existing domains unaffected.
        pool.attach("d1", "vm4")

    def test_double_attach_same_vm_rejected(self):
        pool = HostOnlyNetworkPool("p")
        pool.attach("d1", "vm1")
        with pytest.raises(VNetError):
            pool.attach("d1", "vm1")

    def test_sticky_policy_keeps_assignment(self):
        pool = HostOnlyNetworkPool("p", count=1, release_policy="sticky")
        pool.attach("d1", "vm1")
        pool.detach("vm1")
        assert pool.network_of("d1") is not None
        with pytest.raises(VNetError):
            pool.attach("d2", "vm2")

    def test_refcount_policy_frees_on_last_detach(self):
        pool = HostOnlyNetworkPool(
            "p", count=1, release_policy="refcount"
        )
        pool.attach("d1", "vm1")
        pool.attach("d1", "vm2")
        pool.detach("vm1")
        assert pool.network_of("d1") is not None
        pool.detach("vm2")
        assert pool.network_of("d1") is None
        pool.attach("d2", "vm3")  # now allowed

    def test_detach_unknown_vm_is_noop(self):
        pool = HostOnlyNetworkPool("p")
        pool.detach("ghost")

    def test_would_be_fresh_and_capacity_queries(self):
        pool = HostOnlyNetworkPool("p", count=1)
        assert pool.would_be_fresh("d1")
        assert pool.has_capacity_for("d1")
        pool.attach("d1", "vm1")
        assert not pool.would_be_fresh("d1")
        assert pool.has_capacity_for("d1")
        assert not pool.has_capacity_for("d2")

    def test_ip_released_on_detach(self):
        pool = HostOnlyNetworkPool("p")
        a1 = pool.attach("d1", "vm1")
        pool.detach("vm1")
        a2 = pool.attach("d1", "vm2")
        assert a2.ip_address == a1.ip_address

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            HostOnlyNetworkPool("p", count=0)
        with pytest.raises(ValueError):
            HostOnlyNetworkPool("p", release_policy="whenever")


class TestVirtualNetworkService:
    def make(self):
        service = VirtualNetworkService()
        service.register_server(VNetServer("p0", host="node0"))
        return service

    def test_register_and_lookup(self):
        service = self.make()
        assert service.server_for("p0").host == "node0"
        with pytest.raises(VNetError):
            service.server_for("ghost")

    def test_duplicate_server_rejected(self):
        service = self.make()
        with pytest.raises(VNetError):
            service.register_server(VNetServer("p0", host="other"))

    def test_bridge_refcounting(self):
        service = self.make()
        proxy = VNetProxy("d1", "proxy.d1", 4000)
        b1 = service.setup_bridge("p0", "p0/vmnet0", proxy)
        b2 = service.setup_bridge("p0", "p0/vmnet0", proxy)
        assert b1.bridge_id == b2.bridge_id
        assert not service.teardown_bridge("p0", "d1")
        assert service.teardown_bridge("p0", "d1")
        assert service.bridges() == []

    def test_domain_network_conflict_rejected(self):
        service = self.make()
        proxy = VNetProxy("d1", "proxy.d1", 4000)
        service.setup_bridge("p0", "p0/vmnet0", proxy)
        with pytest.raises(VNetError):
            service.setup_bridge("p0", "p0/vmnet1", proxy)

    def test_teardown_unknown_bridge_rejected(self):
        service = self.make()
        with pytest.raises(VNetError):
            service.teardown_bridge("p0", "ghost-domain")

    def test_isolation_check(self):
        service = self.make()
        service.register_server(VNetServer("p1", host="node1"))
        service.setup_bridge(
            "p0", "p0/vmnet0", VNetProxy("d1", "proxy.d1", 1)
        )
        service.setup_bridge(
            "p1", "p1/vmnet0", VNetProxy("d2", "proxy.d2", 2)
        )
        service.check_isolation()  # distinct plants: fine


class TestGateway:
    def test_tunnel_establishment_idempotent(self):
        gateway = Gateway("gw.example")
        server = VNetServer("p0", host="node0", port=1087)
        t1 = gateway.establish_tunnel(server)
        t2 = gateway.establish_tunnel(server)
        assert t1 is t2
        assert gateway.endpoint_for("p0") == f"gw.example:{t1.public_port}"

    def test_distinct_plants_distinct_ports(self):
        gateway = Gateway("gw.example")
        t0 = gateway.establish_tunnel(VNetServer("p0", host="n0"))
        t1 = gateway.establish_tunnel(VNetServer("p1", host="n1"))
        assert t0.public_port != t1.public_port
        assert len(gateway.tunnels()) == 2

    def test_resolve(self):
        gateway = Gateway("gw.example")
        tunnel = gateway.establish_tunnel(VNetServer("p0", host="n0"))
        assert gateway.resolve(tunnel.public_port).plant_name == "p0"
        with pytest.raises(VNetError):
            gateway.resolve(1)

    def test_unknown_plant_endpoint_none(self):
        assert Gateway("gw").endpoint_for("ghost") is None
