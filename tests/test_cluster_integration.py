"""Testbed construction and cross-module integration scenarios."""

import pytest

from repro.core.errors import ShopError
from repro.cost.models import NetworkComputeCost
from repro.plant.production import CloneMode
from repro.sim.cluster import build_testbed
from repro.workloads.requests import experiment_request


class TestBuildTestbed:
    def test_default_reproduces_paper_setup(self):
        bed = build_testbed(seed=1)
        assert len(bed.plants) == 8
        assert len(bed.hosts) == 8
        assert bed.hosts[0].memory_mb == 1536.0
        assert len(bed.warehouse) == 3  # 32/64/256 MB golden machines
        assert len(bed.shop.bidders) == 8

    def test_plants_published_in_registry(self):
        bed = build_testbed(seed=1, n_plants=2)
        assert "plant0" in bed.registry
        assert "vmshop" in bed.registry
        assert bed.registry.bind("plant1") is bed.plants[1]

    def test_vnet_servers_registered(self):
        bed = build_testbed(seed=1, n_plants=2)
        assert bed.vnet.server_for("plant0") is not None

    def test_uml_testbed(self):
        bed = build_testbed(seed=1, vm_types=("uml",))
        assert all(img.vm_type == "uml" for img in bed.warehouse.images())
        assert "uml" in bed.lines

    def test_dual_technology_testbed(self):
        bed = build_testbed(seed=1, vm_types=("vmware", "uml"))
        assert len(bed.warehouse) == 6
        ad = bed.run(bed.shop.create(experiment_request(32, vm_type="uml")))
        assert ad["vm_type"] == "uml"

    def test_bad_plant_count_rejected(self):
        with pytest.raises(ValueError):
            build_testbed(n_plants=0)

    def test_clone_records_sorted_by_start(self):
        bed = build_testbed(seed=1, n_plants=2)
        for _ in range(4):
            bed.run(bed.shop.create(experiment_request(32)))
        records = bed.clone_records()
        starts = [r.started_at for r in records]
        assert starts == sorted(starts)
        assert len(records) == 4


class TestIntegration:
    def test_sequential_stream_balances_across_plants(self):
        bed = build_testbed(seed=4, n_plants=4)
        for _ in range(8):
            bed.run(bed.shop.create(experiment_request(32)))
        counts = sorted(p.active_vm_count() for p in bed.plants)
        assert counts == [2, 2, 2, 2]

    def test_mixed_memory_sizes_share_site(self):
        bed = build_testbed(seed=4, n_plants=2)
        for mem in (32, 64, 256, 32):
            ad = bed.run(bed.shop.create(experiment_request(mem)))
            assert ad["memory_mb"] == mem

    def test_full_lifecycle_frees_all_resources(self):
        bed = build_testbed(seed=4, n_plants=2)
        vmids = []
        for _ in range(4):
            ad = bed.run(bed.shop.create(experiment_request(32)))
            vmids.append(str(ad["vmid"]))
        for vmid in vmids:
            bed.run(bed.shop.destroy(vmid))
        assert all(p.active_vm_count() == 0 for p in bed.plants)
        assert all(h.committed_guest_mb == 0 for h in bed.hosts)
        assert bed.shop.active_vmids() == []

    def test_shop_restart_recovery_end_to_end(self):
        bed = build_testbed(seed=4, n_plants=2)
        ad = bed.run(bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        # "Restart" the shop: fresh instance, same plants discovered
        # through the registry; no VM state was lost because plants
        # hold it.
        from repro.shop.vmshop import VMShop

        shop2 = VMShop(bed.env, "vmshop2", registry=bed.registry)
        shop2.discover_plants()
        assert shop2.recover() == 1
        queried = bed.run(shop2.query(vmid))
        assert queried["vmid"] == vmid
        bed.run(shop2.destroy(vmid))

    def test_commit_publish_then_deeper_match_via_shop(self):
        bed = build_testbed(seed=4, n_plants=2)
        request = experiment_request(32)
        ad = bed.run(bed.shop.create(request))
        bed.run(
            bed.shop.destroy(
                str(ad["vmid"]), commit=True, publish_as="warmed"
            )
        )
        ad2 = bed.run(bed.shop.create(request))
        # The shop may land on either plant; if it lands on the one
        # with the published image, the match is deeper.
        assert ad2["image_id"] in ("warmed", "vmware-mandrake81-32mb")
        assert "warmed" in bed.warehouse

    def test_cost_model_override_changes_placement(self):
        bed = build_testbed(
            seed=4,
            n_plants=2,
            cost_model=NetworkComputeCost(50.0, 4.0),
        )
        plants_used = set()
        for _ in range(6):
            ad = bed.run(bed.shop.create(experiment_request(32)))
            plants_used.add(str(ad["plant"]))
        # Sticky behaviour: all six stay on the first plant.
        assert len(plants_used) == 1

    def test_copy_mode_respects_request_path(self):
        bed = build_testbed(seed=4, n_plants=1)
        ad = bed.run(
            bed.shop.create(experiment_request(32), CloneMode.COPY)
        )
        assert ad["clone_mode"] == "copy"
        assert ad["clone_time"] > 100  # full 2 GB disk copy

    def test_no_bidder_for_oversized_request(self):
        bed = build_testbed(seed=4, n_plants=2)
        with pytest.raises(ShopError):
            bed.run(bed.shop.create(experiment_request(2048)))

    def test_monitor_updates_visible_through_shop(self):
        bed = build_testbed(seed=4, n_plants=1)
        plant = bed.plants[0]
        plant.monitor.start()
        ad = bed.run(bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])

        def wait_then_query():
            yield bed.env.timeout(120.0)
            result = yield from bed.shop.query(vmid)
            return result

        queried = bed.run(wait_then_query())
        assert queried["uptime"] > 0
        assert queried["actions_completed"] == 3


class TestTestbedConveniences:
    def test_attach_tracer(self):
        bed = build_testbed(seed=81, n_plants=1)
        tracer = bed.attach_tracer()
        bed.run(bed.shop.create(experiment_request(32)))
        assert len(tracer) > 0
        assert "shop" in tracer.categories()

    def test_query_cache_invalidated_by_migration(self):
        from repro.plant.migration import MigrationManager

        bed = build_testbed(seed=81, n_plants=2)
        ad = bed.run(bed.shop.create(experiment_request(32)))
        vmid = str(ad["vmid"])
        # Warm the cache.
        bed.run(bed.shop.query(vmid))
        src = bed.registry.bind(str(ad["plant"]))
        dst = next(p for p in bed.plants if p is not src)
        manager = MigrationManager(bed.env, link=bed.internode)
        bed.run(manager.migrate(src, dst, vmid, shop=bed.shop))
        cached = bed.run(bed.shop.query(vmid, use_cache=True))
        # Reroute dropped the stale entry: the fresh plant answers.
        assert cached["plant"] == dst.name
