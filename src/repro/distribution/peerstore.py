"""Per-host registry of golden-image payloads servable to peers.

Every :class:`~repro.sim.host.PhysicalHost` in a distribution-enabled
site carries a :class:`PeerImageStore`: a thin serving façade over the
host's :class:`~repro.sim.host.HostStateCache`.  The first warehouse
fetch of an image *seeds* the store (the bytes land on the local disk
and enter the LRU cache); from then on the host can serve that state
to peers over its cluster uplink, subject to the planner's fan-out
bound.

Because the store shares the host cache it is capacity-bounded by the
same budget and evicted by the same LRU policy — an image pushed out
by newer clone state silently stops being advertised.  Entries being
read by an in-progress peer serve are pinned in the cache so the
eviction scan passes over them (see ``HostStateCache.pin``): the race
between an eviction-heavy clone burst and a peer transfer resolves as
"the transfer completes, something else is evicted".
"""

from __future__ import annotations

from repro.sim.host import HostStateCache, PhysicalHost

__all__ = ["PeerImageStore"]


class PeerImageStore:
    """Serving view of one host's cached golden-image state."""

    __slots__ = (
        "host",
        "cache",
        "index",
        "site",
        "active_serves",
        "serves",
        "mb_served",
    )

    def __init__(
        self,
        host: PhysicalHost,
        cache: HostStateCache,
        index: int,
        site: int = 0,
    ):
        self.host = host
        self.cache = cache
        #: Registration position; the planner's deterministic
        #: tie-break when several sources are equally loaded.
        self.index = index
        #: Grid site the host belongs to; the planner prefers
        #: same-site sources before crossing an inter-site boundary.
        self.site = site
        #: Peer transfers currently reading from this host.
        self.active_serves = 0
        self.serves = 0
        self.mb_served = 0.0

    def holds(self, image_id: str) -> bool:
        """Can this host serve the image right now?

        Requires the bytes in the local cache and the host up; a
        crashed host's disk state is gone (``HostStateCache.clear``)
        so both conditions usually flip together.
        """
        return not self.host.down and image_id in self.cache

    def seed(self, image_id: str, size_mb: float) -> bool:
        """Admit freshly landed image state into the serving cache."""
        return self.cache.insert(image_id, size_mb)

    def begin_serve(self, image_id: str) -> None:
        """Pin the entry for the duration of a peer transfer."""
        self.cache.pin(image_id)
        self.active_serves += 1

    def end_serve(self, image_id: str, size_mb: float, ok: bool) -> None:
        """Release the pin and account for the transfer."""
        self.cache.unpin(image_id)
        self.active_serves -= 1
        if ok:
            self.serves += 1
            self.mb_served += size_mb

    def __repr__(self) -> str:
        return (
            f"<PeerImageStore {self.host.name} entries={len(self.cache)}"
            f" serving={self.active_serves} served={self.serves}>"
        )
