"""Peer-to-peer broadcast trees for golden-image delivery.

The baseline topology is a star: every host pulls clone state over the
one shared warehouse link, so delivering one image to N hosts costs N
serialized (fair-shared) transfers and creation p95 grows linearly
with the fleet.  The :class:`DistributionPlanner` turns delivery into
a broadcast *tree*: the first fetch seeds the image over NFS, every
subsequent host copies from an already-seeded peer over that peer's
cluster uplink, and each freshly seeded host immediately becomes a
source itself.  With a fan-out bound of *k* the population of sources
multiplies by (k+1) per transfer round, so total delivery time grows
with tree depth — O(log N) — instead of fleet size.

The planner also generalizes PR 3's :class:`TransferCoalescer`:
instead of only attaching to an in-flight *warehouse* copy, a caller
may attach to **any** in-flight transfer of the image — peer or NFS —
wait for it to land, and then resolve against the newly enlarged
source set.  Followers therefore never duplicate bytes on any link,
and the attach/retry loop is what threads new arrivals into the tree.

Failure model: a source host crashing mid-serve aborts the flows on
its uplink (:meth:`on_host_crashed`), the receiving fetch observes a
:class:`~repro.core.errors.StorageError` and falls back one rung —
another peer if one exists, the warehouse otherwise.  The NFS rung
inherits the warehouse outage semantics unchanged.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.core.errors import StorageError
from repro.distribution.peerstore import PeerImageStore
from repro.sim.host import PhysicalHost
from repro.sim.kernel import Environment, Event
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.sim.network import FairShareLink
from repro.sim.trace import trace

__all__ = ["DistributionPlanner"]

#: Attach/retry rungs a fetch climbs before forcing the NFS path.
#: Purely a liveness backstop — a healthy tree resolves in one or two.
_MAX_RETRIES = 8


class _Flight:
    """One in-flight delivery of an image onto one host."""

    __slots__ = ("image_id", "store", "kind", "seq", "done", "error", "waiters")

    def __init__(
        self,
        image_id: str,
        store: PeerImageStore,
        kind: str,
        seq: int,
        done: Event,
    ):
        self.image_id = image_id
        self.store = store
        #: ``"peer"`` or ``"nfs"`` — where the bytes are coming from.
        self.kind = kind
        self.seq = seq
        self.done = done
        self.error: Optional[BaseException] = None
        self.waiters = 0


class DistributionPlanner:
    """Assembles k-ary broadcast trees over per-host cluster uplinks.

    The tree is not planned ahead of time; it *emerges* from three
    deterministic local rules applied by each :meth:`fetch`:

    1. prefer the least-busy seeded peer whose fan-out budget
       (``fanout`` concurrent serves) is not exhausted;
    2. otherwise attach to the least-subscribed in-flight delivery of
       the image (peer or NFS) and retry once it lands;
    3. otherwise seed from the warehouse.

    Rule 2 is the generalized coalescer; rule 1 + the fan-out bound
    yield chained trees at ``fanout=1``, binary at 2, k-ary above.
    All choices tie-break on registration order, so trajectories are
    reproducible run-to-run.
    """

    def __init__(
        self,
        env: Environment,
        nfs,
        latency: LatencyModel = DEFAULT_LATENCY,
        fanout: int = 2,
        peer_bandwidth_mbps: float = 110.0,
    ):
        if fanout < 1:
            raise ValueError("fanout must be at least 1")
        if peer_bandwidth_mbps <= 0:
            raise ValueError("peer bandwidth must be positive")
        self.env = env
        self.nfs = nfs
        self.latency = latency
        self.fanout = fanout
        self.peer_bandwidth_mbps = peer_bandwidth_mbps
        #: host name → serving store, in registration order.
        self.stores: "Dict[str, PeerImageStore]" = {}
        #: host name → lazily created serving uplink.
        self._uplinks: Dict[str, FairShareLink] = {}
        self._flights: Dict[str, List[_Flight]] = {}
        self._seq = 0
        # Counters surfaced by experiments and benchmarks.
        self.local_hits = 0
        self.peer_hops = 0
        self.attaches = 0
        self.fallbacks = 0
        self.nfs_seeds = 0
        self.mb_peered = 0.0

    # -- membership ----------------------------------------------------------
    def register_host(
        self, host: PhysicalHost, site: int = 0
    ) -> PeerImageStore:
        """Enroll a host (idempotent); requires a state cache to serve.

        ``site`` tags the host with its grid site: source picking
        prefers same-site seeded peers over peers that would pull the
        bytes across an inter-site boundary (all hosts default to
        site 0, which leaves single-site behaviour unchanged).
        """
        store = self.stores.get(host.name)
        if store is not None:
            return store
        if host.state_cache is None:
            raise ValueError(
                f"host {host.name} has no state cache; the distribution "
                f"layer serves peers from it (set peer_store_mb)"
            )
        store = PeerImageStore(
            host, host.state_cache, len(self.stores), site
        )
        self.stores[host.name] = store
        return store

    def _uplink(self, host: PhysicalHost) -> FairShareLink:
        link = self._uplinks.get(host.name)
        if link is None:
            link = FairShareLink(
                self.env,
                f"{host.name}-peer-uplink",
                self.peer_bandwidth_mbps,
            )
            self._uplinks[host.name] = link
        return link

    def on_host_crashed(self, host: PhysicalHost) -> int:
        """Abort every serve in flight on the dead host's uplink.

        The receivers' fetches observe a :class:`StorageError` and fall
        back down the recovery ladder (another peer, then NFS).  The
        host's own cache has been cleared by the crash, so ``holds``
        already answers False.  Idempotent; returns aborted flows.
        """
        link = self._uplinks.get(host.name)
        if link is None or link.active_flows == 0:
            return 0
        return link.abort_flows(
            lambda: StorageError(
                f"peer {host.name} died mid-transfer"
            )
        )

    # -- fetch ----------------------------------------------------------------
    def fetch(
        self,
        host: PhysicalHost,
        image_id: str,
        payload_mb: float,
        files: int = 1,
    ) -> Generator:
        """Deliver ``image_id``'s clone state onto ``host``.

        Returns how the bytes arrived: ``"local"`` (already seeded
        here), ``"peer"`` (tree hop), ``"coalesced"`` (attached to an
        in-flight delivery, then resolved locally/from a peer) or
        ``"nfs"`` (seeded from the warehouse).
        """
        store = self.stores.get(host.name)
        if store is None:
            store = self.register_host(host)
        attached = False
        for _ in range(_MAX_RETRIES):
            if store.holds(image_id):
                # Seeded while we waited (or by an earlier clone):
                # replicate locally, off every network link.
                self.local_hits += 1
                yield from host.disk_read(payload_mb)
                yield from host.disk_write(payload_mb)
                return "coalesced" if attached else "local"
            source = self._pick_source(image_id, exclude=store)
            if source is not None:
                try:
                    yield from self._peer_copy(
                        source, store, image_id, payload_mb
                    )
                except StorageError as exc:
                    # Source died (or its uplink was aborted) mid-hop:
                    # drop a rung and retry — next peer, else NFS.
                    self.fallbacks += 1
                    trace(
                        self.env, "storage", "tree-fallback",
                        host=host.name, source=source.host.name,
                        image=image_id, error=str(exc),
                    )
                    continue
                return "peer"
            flight = self._pick_flight(image_id, store)
            if flight is not None:
                attached = True
                self.attaches += 1
                flight.waiters += 1
                trace(
                    self.env, "storage", "tree-attach",
                    follower=host.name, leader=flight.store.host.name,
                    image=image_id, kind=flight.kind,
                )
                try:
                    yield flight.done
                finally:
                    flight.waiters -= 1
                # Errors are not terminal for followers: the retry
                # loop resolves against whatever sources now exist and
                # bottoms out at the warehouse rung.
                continue
            result = yield from self._nfs_seed(
                store, image_id, payload_mb, files
            )
            return result
        # Pathological churn (every rung failed repeatedly): take the
        # warehouse path unconditionally rather than loop forever.
        result = yield from self._nfs_seed(store, image_id, payload_mb, files)
        return result

    # -- source selection -----------------------------------------------------
    def _pick_source(
        self, image_id: str, exclude: PeerImageStore
    ) -> Optional[PeerImageStore]:
        """Least-busy seeded peer under the fan-out budget.

        Site-aware: a seeded peer on the requester's own site always
        outranks one whose bytes would cross an inter-site boundary
        link, however idle the remote peer is; within a site class the
        (active_serves, registration index) order is unchanged.  The
        cross-site rung still exists — it is simply last before NFS —
        and all rungs stay deterministic.
        """
        best = None
        best_key = None
        for store in self.stores.values():
            if store is exclude or not store.holds(image_id):
                continue
            if store.active_serves >= self.fanout:
                continue
            key = (
                0 if store.site == exclude.site else 1,
                store.active_serves,
                store.index,
            )
            if best_key is None or key < best_key:
                best, best_key = store, key
        return best

    def _pick_flight(
        self, image_id: str, exclude: PeerImageStore
    ) -> Optional[_Flight]:
        flights = self._flights.get(image_id)
        if not flights:
            return None
        candidates = [f for f in flights if f.store is not exclude]
        if not candidates:
            return None
        # Same-site in-flight deliveries win for the same reason as
        # same-site sources: the follower's eventual re-resolve then
        # finds a local peer instead of crossing a boundary link.
        return min(
            candidates,
            key=lambda f: (
                0 if f.store.site == exclude.site else 1,
                f.waiters,
                f.seq,
            ),
        )

    # -- transfer legs --------------------------------------------------------
    def _register_flight(
        self, image_id: str, store: PeerImageStore, kind: str
    ) -> _Flight:
        self._seq += 1
        flight = _Flight(
            image_id, store, kind, self._seq, self.env.event()
        )
        self._flights.setdefault(image_id, []).append(flight)
        return flight

    def _retire_flight(self, flight: _Flight) -> None:
        flights = self._flights.get(flight.image_id)
        if flights is not None:
            flights.remove(flight)
            if not flights:
                del self._flights[flight.image_id]
        # Waiters always wake through `done` and re-resolve; failing
        # the event would blow up unwaited in the kernel.
        flight.done.succeed()

    def _peer_copy(
        self,
        source: PeerImageStore,
        dest: PeerImageStore,
        image_id: str,
        payload_mb: float,
    ) -> Generator:
        """One tree hop: stream state from a seeded peer's disk.

        The network stage is pipelined with the destination's local
        write (same charging rule as ``NFSServer.copy_to_host``): the
        uplink transfer is paid in full, plus only the *excess* write
        time beyond it under memory pressure.
        """
        flight = self._register_flight(image_id, dest, "peer")
        source.begin_serve(image_id)
        ok = False
        start = self.env.now
        try:
            yield self._uplink(source.host).transfer(payload_mb)
            network_time = self.env.now - start
            write_time = (
                payload_mb
                / self.latency.host_disk_write_mbps
                * dest.host.pressure_factor()
            )
            if write_time > network_time:
                yield self.env.timeout(write_time - network_time)
            ok = True
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            source.end_serve(image_id, payload_mb, ok)
            self._retire_flight(flight)
        self.peer_hops += 1
        self.mb_peered += payload_mb
        if not dest.host.down:
            dest.seed(image_id, payload_mb)
        trace(
            self.env, "storage", "tree-hop",
            source=source.host.name, dest=dest.host.name,
            image=image_id, mb=payload_mb,
        )

    def _nfs_seed(
        self,
        store: PeerImageStore,
        image_id: str,
        payload_mb: float,
        files: int,
    ) -> Generator:
        """Root rung: seed the image from the warehouse.

        Registered as a flight so later arrivals attach to it instead
        of opening parallel warehouse pulls — the planner's flights
        subsume the per-host :class:`TransferCoalescer` on this path.
        Warehouse outage errors propagate to the caller exactly as the
        baseline star topology would surface them.
        """
        flight = self._register_flight(image_id, store, "nfs")
        try:
            yield from self.nfs.copy_to_host(
                payload_mb, store.host, files=files
            )
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            self._retire_flight(flight)
        self.nfs_seeds += 1
        if not store.host.down:
            store.seed(image_id, payload_mb)
        trace(
            self.env, "storage", "tree-hop",
            source="nfs", dest=store.host.name,
            image=image_id, mb=payload_mb,
        )
        return "nfs"

    def __repr__(self) -> str:
        return (
            f"<DistributionPlanner hosts={len(self.stores)} "
            f"fanout={self.fanout} hops={self.peer_hops} "
            f"attaches={self.attaches} nfs={self.nfs_seeds}>"
        )
