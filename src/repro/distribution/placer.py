"""Popularity-driven proactive replica placement.

The broadcast tree makes the *second* and later fetches of an image
cheap, but the first clone in a cluster still pays the warehouse pull
at request time.  The :class:`ReplicaPlacer` moves that cost off the
critical path: a small daemon (same start/stop shape as the plant's
``VMMonitor``) periodically ranks the published images by their
selection-win counters — maintained by the warehouse's
:class:`~repro.core.matchindex.MatchIndex` and including memo hits,
so they track demand, not index traffic — and pushes the hottest
state onto a handful of evenly spaced *seed hosts* through the
planner's ordinary :meth:`~DistributionPlanner.fetch` path.  Seeded
hosts immediately serve as tree roots, so a popular image is already
one hop away from everything when the next request burst arrives.

Warehouse *generation* epochs gate the work: a sweep re-plans only
when something was published/unpublished or the popularity ranking
changed since the previous sweep, so an idle site costs nothing but
the timer.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Set, Tuple

from repro.core.errors import ReproError
from repro.distribution.peerstore import PeerImageStore
from repro.distribution.planner import DistributionPlanner
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.sim.kernel import Environment, Interrupt, Process
from repro.sim.trace import trace

__all__ = ["ReplicaPlacer"]


class ReplicaPlacer:
    """Background pusher of hot images onto per-cluster seed hosts."""

    def __init__(
        self,
        env: Environment,
        planner: DistributionPlanner,
        warehouse: VMWarehouse,
        period_s: float = 120.0,
        top_k: int = 2,
        seed_hosts: int = 2,
    ):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if top_k < 1 or seed_hosts < 1:
            raise ValueError("top_k and seed_hosts must be at least 1")
        self.env = env
        self.planner = planner
        self.warehouse = warehouse
        self.period_s = period_s
        self.top_k = top_k
        self.seed_hosts = seed_hosts
        self.sweeps = 0
        self.pushes_started = 0
        self.pushes_failed = 0
        #: (host name, image id) pairs with a push in flight, so one
        #: slow transfer is not re-launched by the next sweep.
        self._inflight: Set[Tuple[str, str]] = set()
        #: (generation, ranking) that produced the last plan.
        self._planned: Optional[tuple] = None
        self._proc: Optional[Process] = None

    # -- daemon lifecycle ---------------------------------------------------
    def start(self) -> Process:
        """Launch the placement daemon."""
        if self._proc is not None and self._proc.is_alive:
            return self._proc
        self._proc = self.env.process(self._run())
        return self._proc

    def stop(self) -> None:
        """Terminate the placement daemon."""
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("placer stopped")

    def _run(self) -> Generator:
        try:
            while True:
                yield self.env.timeout(self.period_s)
                self.place_once()
        except Interrupt:
            pass

    # -- placement ----------------------------------------------------------
    def hot_images(self) -> List[GoldenImage]:
        """The ``top_k`` most-selected published images.

        Images never selected are not "hot" regardless of rank; ties
        break on image id so the plan is reproducible.
        """
        popularity = self.warehouse.popularity
        ranked = sorted(
            (
                img
                for img in self.warehouse.images()
                if popularity.get(img.image_id, 0) > 0
            ),
            key=lambda img: (-popularity[img.image_id], img.image_id),
        )
        return ranked[: self.top_k]

    def _seed_stores(self) -> List[PeerImageStore]:
        """``seed_hosts`` stores spread evenly over registration order.

        Even spacing puts a root in each region of the host list (the
        testbed registers hosts cluster-by-cluster), approximating a
        per-cluster seed without the planner knowing cluster bounds.
        """
        stores = list(self.planner.stores.values())
        if not stores:
            return []
        n = len(stores)
        count = min(self.seed_hosts, n)
        picked = []
        seen = set()
        for i in range(count):
            idx = i * n // count
            if idx not in seen:
                seen.add(idx)
                picked.append(stores[idx])
        return picked

    def place_once(self) -> int:
        """One placement sweep; returns the number of pushes launched.

        Cheap when nothing changed: the (warehouse generation, hot
        ranking) pair is compared against the previous sweep's and the
        sweep exits early on a match with no pushes outstanding.
        """
        self.sweeps += 1
        hot = self.hot_images()
        plan_key = (
            self.warehouse.generation,
            tuple(img.image_id for img in hot),
        )
        if plan_key == self._planned and not self._inflight:
            return 0
        launched = 0
        for image in hot:
            files = 3 if image.memory_state_mb > 0 else 2
            for store in self._seed_stores():
                pair = (store.host.name, image.image_id)
                if (
                    store.holds(image.image_id)
                    or store.host.down
                    or pair in self._inflight
                ):
                    continue
                self._inflight.add(pair)
                self.pushes_started += 1
                launched += 1
                self.env.process(
                    self._push(store, image, files)
                )
        self._planned = plan_key
        return launched

    def _push(
        self, store: PeerImageStore, image: GoldenImage, files: int
    ) -> Generator:
        pair = (store.host.name, image.image_id)
        try:
            source = yield from self.planner.fetch(
                store.host,
                image.image_id,
                image.clone_payload_mb,
                files=files,
            )
        except ReproError as exc:
            # Best-effort: a failed push costs nothing but the retry
            # on a later sweep (demand fetches still work).
            self.pushes_failed += 1
            trace(
                self.env, "storage", "replica-push-failed",
                host=store.host.name, image=image.image_id,
                error=str(exc),
            )
        else:
            trace(
                self.env, "storage", "replica-push",
                host=store.host.name, image=image.image_id,
                mb=image.clone_payload_mb, source=source,
            )
        finally:
            self._inflight.discard(pair)

    def __repr__(self) -> str:
        return (
            f"<ReplicaPlacer top_k={self.top_k} seeds={self.seed_hosts}"
            f" sweeps={self.sweeps} pushes={self.pushes_started}>"
        )
