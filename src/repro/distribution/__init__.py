"""Peer-to-peer golden-image distribution (broadcast trees).

Replaces the star-topology warehouse pull with k-ary broadcast trees
over per-host cluster uplinks, plus popularity-driven proactive
replica placement.  See ``DESIGN.md`` ("Image distribution") for the
construction and failure-fallback rules.
"""

from repro.distribution.peerstore import PeerImageStore
from repro.distribution.placer import ReplicaPlacer
from repro.distribution.planner import DistributionPlanner

__all__ = ["PeerImageStore", "DistributionPlanner", "ReplicaPlacer"]
