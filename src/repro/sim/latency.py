"""Calibration constants for the simulated SC'04 testbed.

Derived from the numbers the paper reports rather than guessed:

* the 2 GB golden disk (16 files) takes 210 s to copy in full over the
  100 Mbit/s NFS path — an effective ~11 MB/s link plus per-file
  overheads and the host-side write;
* 32 MB clones average ~15 s, 64 MB ~20 s and 256 MB ~52 s (Figure 5
  and the "around 4 times slower" comparison in Section 4.3), which
  the VMware fixed costs + memory-state copy + resume model below
  reproduces;
* cloning slows markedly once a host's committed VM memory approaches
  physical memory (Figure 6) — the pressure model;
* a 32 MB UML clone instantiated via full reboot averages 76 s.

All values are plain module constants so ablation benches can build
variant :class:`LatencyModel` instances.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LatencyModel", "DEFAULT_LATENCY"]


@dataclass(frozen=True)
class LatencyModel:
    """Tunable constants of the simulated substrate (seconds, MB/s)."""

    # -- NFS warehouse path ------------------------------------------------
    #: Effective NFS link throughput (100 Mbit/s minus protocol cost).
    nfs_link_mbps: float = 11.0
    #: Per-file open/attribute overhead on the NFS server.
    nfs_request_overhead_s: float = 0.25

    # -- physical host ----------------------------------------------------
    host_disk_write_mbps: float = 60.0
    host_disk_read_mbps: float = 80.0
    #: Host memory consumed by the host OS + VMM baseline.
    host_os_reserve_mb: float = 128.0
    #: VMM bookkeeping overhead per hosted VM.
    vmm_overhead_per_vm_mb: float = 24.0
    #: Committed-fraction beyond which cloning operations slow down.
    pressure_threshold: float = 0.80
    #: Slowdown slope: factor = 1 + slope * (utilization - threshold).
    pressure_slope: float = 7.0

    # -- VMware GSX production line -------------------------------------------
    #: Registration/config parsing/device setup per clone.
    vmware_clone_fixed_s: float = 2.5
    #: Fixed part of resuming a suspended VM.
    vmware_resume_fixed_s: float = 7.0
    #: Rate at which the resumed VM's memory image is re-read.
    vmware_resume_mbps: float = 25.0

    # -- UML production line -----------------------------------------------------
    #: Full guest boot after cloning (no checkpoint resume in the
    #: prototype's UML line).
    uml_boot_fixed_s: float = 72.0
    #: CoW backing-file setup per clone.
    uml_cow_setup_s: float = 0.8
    #: SBUML checkpoint resume (ongoing work in §4.1/§4.3): fixed part
    #: and memory re-read rate when cloning from a snapshot.
    uml_resume_fixed_s: float = 5.0
    uml_resume_mbps: float = 20.0

    # -- migration (Section 6 future work) ----------------------------------------
    #: Fixed suspend/resume machinery cost during a live migration.
    migrate_suspend_fixed_s: float = 2.0
    migrate_resume_fixed_s: float = 3.0

    # -- guest configuration path -----------------------------------------------
    iso_build_s: float = 0.6
    iso_connect_s: float = 0.4
    guest_mount_s: float = 0.5
    #: Mean execution time of one configuration script in the guest.
    guest_script_mean_s: float = 2.3

    # -- messaging ---------------------------------------------------------------
    #: One-way shop↔plant / client↔shop message latency.
    transport_latency_s: float = 0.05

    # -- stochastic variation ------------------------------------------------------
    #: Log-normal sigma applied to mechanical operations.
    op_jitter_sigma: float = 0.24
    #: Log-normal sigma for guest script execution.
    script_jitter_sigma: float = 0.5


#: The calibration used by all paper-reproduction experiments.
DEFAULT_LATENCY = LatencyModel()
