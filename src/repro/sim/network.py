"""Bandwidth-shared network links (processor-sharing flow model).

The testbed's 100 Mbit/s NFS path and gigabit inter-node switch are
modelled as :class:`FairShareLink` instances: concurrent transfers
share the link bandwidth equally, and a flow's completion time is
recomputed whenever the flow population changes — the standard
processor-sharing fluid approximation, implemented event-driven so it
is exact for piecewise-constant populations.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Optional

from repro.sim.kernel import Environment, Event

__all__ = ["FairShareLink", "BoundaryLink"]


class _Flow:
    __slots__ = ("flow_id", "remaining", "event", "size")

    def __init__(self, flow_id: int, size: float, event: Event):
        self.flow_id = flow_id
        self.size = size
        self.remaining = size
        self.event = event


class FairShareLink:
    """A link of ``bandwidth_mbps`` MB/s shared fairly among flows."""

    #: Completion slack for floating-point drain arithmetic.
    _EPS = 1e-9

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_mbps: float,
        latency_s: float = 0.0,
    ):
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.env = env
        self.name = name
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_s = latency_s
        self._flows: Dict[int, _Flow] = {}
        self._next_id = 0
        self._last_update = env.now
        #: While paused (partition fault) flows make zero progress.
        self._paused = False
        self._timer_gen = 0
        #: Absolute fire time of the valid pending timer (None if idle).
        self._timer_deadline: Optional[float] = None
        # Accounting for utilization reports.
        self.total_mb = 0.0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    # -- public API --------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Number of in-flight transfers."""
        return len(self._flows)

    @property
    def remaining_mb(self) -> float:
        """Undelivered megabytes across all in-flight flows, at *now*.

        Load metric for replica selection and the peer-distribution
        planner: flows are drained to the current instant first, so
        the figure is exact, not the stale value from the last
        population change.
        """
        self._drain()
        return sum(f.remaining for f in self._flows.values())

    def transfer(self, size_mb: float) -> Event:
        """Start a transfer; the returned event fires at completion."""
        if size_mb < 0:
            raise ValueError("size must be non-negative")
        done = self.env.event()
        if self.latency_s > 0:
            self.env.process(self._delayed_start(size_mb, done))
        else:
            self._start_flow(size_mb, done)
        return done

    def transfer_proc(self, size_mb: float) -> Generator:
        """Generator form for ``yield from`` composition."""
        yield self.transfer(size_mb)

    @property
    def paused(self) -> bool:
        """True while the link is partitioned (flows frozen)."""
        return self._paused

    def set_bandwidth(self, mbps: float) -> None:
        """Change the link rate; in-flight flows keep their progress.

        Used by the fault injector to degrade (and later restore) the
        link: flows are drained at the old rate up to *now*, then the
        completion timer is re-armed at the new rate.
        """
        if mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self._drain()
        self.bandwidth_mbps = mbps
        if self._flows and not self._paused:
            self._timer_gen += 1
            self._timer_deadline = None
            self._reschedule()

    def pause(self) -> None:
        """Partition the link: in-flight flows freeze in place."""
        if self._paused:
            return
        self._drain()
        self._paused = True
        self._timer_gen += 1
        self._timer_deadline = None

    def resume(self) -> None:
        """Heal a partition: frozen flows resume from where they were."""
        if not self._paused:
            return
        self._paused = False
        self._last_update = self.env.now
        self._reschedule()

    def abort_flows(
        self, exc_factory: Callable[[], BaseException]
    ) -> int:
        """Fail every in-flight flow (outage semantics); returns count.

        Each flow's completion event fails with a fresh exception from
        ``exc_factory`` — waiters see it as an aborted transfer.
        """
        self._drain()
        flows = list(self._flows.values())
        self._flows.clear()
        self._timer_gen += 1
        self._timer_deadline = None
        if self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None
        for flow in flows:
            flow.event.fail(exc_factory())
        return len(flows)

    def utilization(self) -> float:
        """Fraction of elapsed time the link was busy."""
        now = self.env.now
        busy = self.busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return busy / now if now > 0 else 0.0

    # -- internals -------------------------------------------------------------
    def _delayed_start(self, size_mb: float, done: Event) -> Generator:
        yield self.env.timeout(self.latency_s)
        self._start_flow(size_mb, done)

    def _start_flow(self, size_mb: float, done: Event) -> None:
        self._drain()
        if size_mb <= self._EPS:
            done.succeed()
            return
        self._next_id += 1
        flow = _Flow(self._next_id, size_mb, done)
        if not self._flows:
            self._busy_since = self.env.now
        self._flows[flow.flow_id] = flow
        self.total_mb += size_mb
        self._reschedule()

    def _rate(self) -> float:
        return self.bandwidth_mbps / len(self._flows)

    def _drain(self) -> None:
        """Advance all flows to the current time."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if not self._flows or elapsed <= 0 or self._paused:
            return
        rate = self._rate()
        for flow in self._flows.values():
            flow.remaining -= rate * elapsed

    def _complete_due(self) -> None:
        done = [
            f for f in self._flows.values() if f.remaining <= self._EPS
        ]
        for flow in done:
            del self._flows[flow.flow_id]
            flow.event.succeed()
        if not self._flows and self._busy_since is not None:
            self.busy_time += self.env.now - self._busy_since
            self._busy_since = None

    def _reschedule(self) -> None:
        """(Re)arm the completion timer for the earliest-finishing flow.

        The timer is a bare :class:`~repro.sim.kernel.Timeout` with a
        direct callback — no generator/process machinery on this hot
        path.  Population changes that leave the next completion time
        unchanged are *batched*: the already-armed timer is kept
        instead of being superseded, so a burst of same-instant
        arrivals costs one timer, not one per arrival.
        """
        if not self._flows or self._paused:
            # Invalidate any pending timer; the link went idle (or is
            # partitioned — resume() re-arms it).
            self._timer_gen += 1
            self._timer_deadline = None
            return
        min_remaining = min(f.remaining for f in self._flows.values())
        deadline = self.env.now + max(0.0, min_remaining / self._rate())
        if self._timer_deadline is not None and self._timer_deadline == deadline:
            return  # batched: the armed timer already fires then
        self._timer_gen += 1
        gen = self._timer_gen
        self._timer_deadline = deadline
        # Pooled timer: same single schedule() as a Timeout (so the
        # trajectory is bit-identical) without the per-re-arm alloc.
        self.env.call_later(
            deadline - self.env.now,
            lambda _ev, gen=gen: self._on_timer(gen),
        )

    def _on_timer(self, gen: int) -> None:
        if gen != self._timer_gen:
            return  # superseded by a population change
        self._timer_deadline = None
        self._drain()
        self._complete_due()
        self._reschedule()

    def __repr__(self) -> str:
        return (
            f"<FairShareLink {self.name} {self.bandwidth_mbps}MB/s"
            f" flows={len(self._flows)}>"
        )


class BoundaryLink(FairShareLink):
    """An inter-site link whose deliveries cross a shard boundary.

    The send side is an ordinary fair-shared link living in the
    *source* site's environment: concurrent sends share
    ``bandwidth_mbps``.  When a send's last byte clears the link, the
    message is *staged* into an outbox — a batched, struct-packed
    event ring when the destination site runs in another worker
    process, or the destination's in-process inbox when it does not —
    and is delivered to the destination endpoint exactly
    ``latency_s`` later.

    ``latency_s`` is the link's propagation delay **and** the
    conservative-sync lookahead: the destination shard may safely
    simulate up to (source clock + latency) because no message can
    arrive earlier.  A zero latency would force the shards into
    lockstep, so it is rejected outright.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        bandwidth_mbps: float,
        latency_s: float,
        src_site: int,
        dst_site: int,
        endpoint: int,
        outbox,
    ):
        if src_site == dst_site:
            raise ValueError(
                f"boundary link {name!r} connects site {src_site} to "
                f"itself; use a FairShareLink for intra-site traffic"
            )
        if latency_s <= 0:
            raise ValueError(
                f"boundary link {name!r} ({src_site}->{dst_site}) has "
                f"zero lookahead: conservative parallel sync requires "
                f"a positive inter-site latency_s (got {latency_s})"
            )
        super().__init__(env, name, bandwidth_mbps, latency_s=0.0)
        self.latency_s = latency_s
        self.src_site = src_site
        self.dst_site = dst_site
        self.endpoint = endpoint
        #: Staging target; duck-typed — see ``repro.sim.shard.ring``.
        self.outbox = outbox

    def send(self, payload: tuple = (), size_mb: float = 0.0) -> Event:
        """Send ``payload`` (up to 4 numbers) across the boundary.

        The returned event fires in the *source* environment when the
        message has fully cleared the shared link; the destination
        endpoint fires ``latency_s`` later in its own environment.
        """
        if len(payload) > 4:
            raise ValueError(
                "boundary payloads are at most 4 numeric fields"
            )
        values = tuple(float(v) for v in payload)
        done = self.env.event()
        done.callbacks.append(lambda _ev: self._stage(values))
        self._start_flow(size_mb, done)
        return done

    def _stage(self, payload: tuple) -> None:
        # Fence marker for the shard runner: a boundary send makes any
        # horizon computed from this site's pre-send state stale.
        self.env.boundary_emits += 1
        self.outbox.emit(
            dst_site=self.dst_site,
            deliver_time=self.env.now + self.latency_s,
            src_site=self.src_site,
            endpoint=self.endpoint,
            payload=payload,
        )

    def __repr__(self) -> str:
        return (
            f"<BoundaryLink {self.name} site{self.src_site}->"
            f"site{self.dst_site} lookahead={self.latency_s}s>"
        )
