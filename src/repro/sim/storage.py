"""The NFS warehouse server and its shared network path.

The paper's warehouse is an NFS mount served by a RAID5 storage server
over 100 Mbit/s switched Ethernet.  Cloning a golden machine reads its
per-clone state (configuration file, base redo log, suspended memory
image) across this path; the full-disk-copy ablation reads all 16 disk
files too.  Transfers from all eight plants share the link fairly.
"""

from __future__ import annotations

from typing import Dict, Generator, Hashable, Optional

from repro.core.errors import StorageError
from repro.sim.host import PhysicalHost
from repro.sim.kernel import Environment, Event
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.sim.network import FairShareLink
from repro.sim.rng import RngHub
from repro.sim.trace import trace

__all__ = [
    "TransferCoalescer",
    "NFSServer",
    "ReplicatedWarehouseStorage",
]


class _InflightTransfer:
    __slots__ = ("done", "followers", "error")

    def __init__(self, done: Event):
        self.done = done
        self.followers = 0
        #: The leader's failure, if any — followers fail with it.
        self.error: Optional[BaseException] = None


class TransferCoalescer:
    """Shares in-flight warehouse→host copies among same-key callers.

    Ten concurrent clones of one image onto one host need the bytes on
    that host exactly once: the first caller (the *leader*) runs the
    real :meth:`copy_to_host`; everyone else arriving before it
    completes waits on the same completion event and then pays only a
    local read+write to materialize a private replica from the data
    the leader just landed — one flow on the shared link instead of N
    contending ones.
    """

    __slots__ = ("env", "_inflight", "requests_coalesced", "mb_saved")

    def __init__(self, env: Environment):
        self.env = env
        self._inflight: Dict[Hashable, _InflightTransfer] = {}
        self.requests_coalesced = 0
        self.mb_saved = 0.0

    @property
    def inflight(self) -> int:
        """Distinct transfers currently being led."""
        return len(self._inflight)

    def copy(
        self,
        storage,
        key: Hashable,
        size_mb: float,
        host: PhysicalHost,
        files: int = 1,
        pressured: bool = True,
    ) -> Generator:
        """Coalesced copy; returns ``"nfs"`` (led) or ``"coalesced"``."""
        entry = self._inflight.get(key)
        if entry is not None:
            entry.followers += 1
            self.requests_coalesced += 1
            self.mb_saved += size_mb
            trace(
                self.env, "storage", "coalesce-attach",
                host=host.name, key=repr(key),
                follower=entry.followers, mb=size_mb,
            )
            yield entry.done
            if entry.error is not None:
                # The leader's transfer never landed: every coalesced
                # follower fails with it (there are no bytes to copy).
                raise StorageError(
                    f"coalesced transfer failed with its leader: "
                    f"{entry.error}"
                ) from entry.error
            # The leader's bytes are on this host's disk already:
            # replicate them locally, off the shared link.
            yield from host.disk_read(size_mb)
            yield from host.disk_write(size_mb)
            return "coalesced"
        entry = _InflightTransfer(self.env.event())
        self._inflight[key] = entry
        try:
            yield from storage.copy_to_host(
                size_mb, host, files=files, pressured=pressured
            )
        except BaseException as exc:
            entry.error = exc
            raise
        finally:
            del self._inflight[key]
            # Followers always wake through `done` and check `error`;
            # failing the event instead would blow up in the kernel if
            # a follower had already been interrupted away.
            entry.done.succeed()
        return "nfs"


class NFSServer:
    """Warehouse storage server with a fair-shared uplink."""

    def __init__(
        self,
        env: Environment,
        name: str = "nfs",
        latency: LatencyModel = DEFAULT_LATENCY,
        rng: Optional[RngHub] = None,
        link: Optional[FairShareLink] = None,
    ):
        self.env = env
        self.name = name
        self.latency = latency
        self.rng = rng or RngHub(0)
        self.link = link or FairShareLink(
            env, f"{name}-uplink", latency.nfs_link_mbps
        )
        self.requests_served = 0
        self.mb_served = 0.0
        self.coalescer = TransferCoalescer(env)
        #: Active outage mode: None (healthy), "abort" or "stall".
        self.outage_mode: Optional[str] = None
        self._outage_cleared: Optional[Event] = None
        self.outages = 0
        self.aborted_transfers = 0

    # -- fault injection -----------------------------------------------------
    def begin_outage(self, mode: str = "stall") -> bool:
        """Take the warehouse path down.

        ``"abort"`` fails every in-flight transfer and rejects new
        operations immediately; ``"stall"`` freezes in-flight flows
        and parks new operations until :meth:`end_outage`.  Returns
        False when an outage is already active (overlap is ignored).
        """
        if mode not in ("abort", "stall"):
            raise ValueError(f"unknown outage mode {mode!r}")
        if self.outage_mode is not None:
            return False
        self.outage_mode = mode
        self.outages += 1
        self._outage_cleared = self.env.event()
        if mode == "stall":
            self.link.pause()
        else:
            self.aborted_transfers += self.link.abort_flows(
                lambda: StorageError(
                    f"{self.name}: transfer aborted by warehouse outage"
                )
            )
        return True

    def end_outage(self) -> None:
        """Bring the warehouse path back; stalled callers resume."""
        if self.outage_mode is None:
            return
        if self.outage_mode == "stall":
            self.link.resume()
        self.outage_mode = None
        cleared = self._outage_cleared
        self._outage_cleared = None
        if cleared is not None:
            cleared.succeed()

    def _outage_gate(self) -> Generator:
        """Reject (abort) or park (stall) an operation during an outage.

        Zero-yield when healthy, so the default trajectory is
        untouched.
        """
        while self.outage_mode is not None:
            if self.outage_mode == "abort":
                raise StorageError(
                    f"{self.name}: warehouse unavailable (outage)"
                )
            yield self._outage_cleared

    def _overhead(self) -> float:
        base = self.latency.nfs_request_overhead_s
        sigma = self.latency.op_jitter_sigma
        return base * self.rng.lognormal(f"{self.name}/overhead", 0.0, sigma)

    def read_file(self, size_mb: float) -> Generator:
        """Serve one file read: request overhead + shared transfer."""
        yield from self._outage_gate()
        yield self.env.timeout(self._overhead())
        yield self.link.transfer(size_mb)
        self.requests_served += 1
        self.mb_served += size_mb

    def copy_to_host(
        self,
        size_mb: float,
        host: PhysicalHost,
        files: int = 1,
        pressured: bool = True,
    ) -> Generator:
        """Copy warehouse state to a node's local disk.

        The transfer is pipelined with the local write, so the elapsed
        time is dominated by the slower stage; we charge the network
        stage in full and only the *excess* write time beyond it —
        which is what makes memory pressure visible even though the
        NFS link is nominally the bottleneck.
        """
        yield from self._outage_gate()
        start = self.env.now
        for _ in range(max(1, files)):
            yield self.env.timeout(self._overhead())
        yield self.link.transfer(size_mb)
        self.requests_served += max(1, files)
        self.mb_served += size_mb
        network_time = self.env.now - start
        factor = host.pressure_factor() if pressured else 1.0
        write_time = (
            size_mb / self.latency.host_disk_write_mbps * factor
        )
        if write_time > network_time:
            yield self.env.timeout(write_time - network_time)

    def copy_to_host_coalesced(
        self,
        key: Hashable,
        size_mb: float,
        host: PhysicalHost,
        files: int = 1,
        pressured: bool = True,
    ) -> Generator:
        """Copy with in-flight sharing per ``key`` (host, image)."""
        result = yield from self.coalescer.copy(
            self, key, size_mb, host, files=files, pressured=pressured
        )
        return result

    def __repr__(self) -> str:
        return (
            f"<NFSServer {self.name} served={self.requests_served}req/"
            f"{self.mb_served:.0f}MB>"
        )


class ReplicatedWarehouseStorage:
    """Warehouse state served from several replica servers.

    Section 3.2 points to "a VM-Warehouse based on virtualized
    distributed file systems" as ongoing work; the observable effect
    is that clone-state reads spread over replicas instead of queueing
    on one NFS path.  Each transfer goes to the replica that currently
    has the fewest in-flight megabytes committed to it — undelivered
    bytes on its uplink plus the payloads of requests still in their
    per-file overhead phase — with ties broken deterministically by
    replica position.  Flow *counts* alone would route a burst of
    small reads onto a replica mid-way through a multi-GB disk copy.

    Drop-in for :class:`NFSServer` wherever only ``read_file`` /
    ``copy_to_host`` are used (the production lines).
    """

    def __init__(self, replicas: "list[NFSServer]"):
        if not replicas:
            raise ValueError("at least one replica is required")
        self.replicas = list(replicas)
        self.env = self.replicas[0].env
        # In-flight megabytes per replica: link.remaining_mb alone
        # misses requests still in their per-file overhead phase, so
        # each operation registers its payload here for its full span.
        self._inflight_mb = {id(r): 0.0 for r in self.replicas}
        self._order = {id(r): i for i, r in enumerate(self.replicas)}
        # Replica-set-wide coalescing: the leader still load-balances
        # across replicas, followers never hit any uplink.
        self.coalescer = TransferCoalescer(self.env)

    def _pick(self) -> NFSServer:
        return min(
            self.replicas,
            key=lambda r: (self._inflight_mb[id(r)], self._order[id(r)]),
        )

    def begin_outage(self, mode: str = "stall") -> bool:
        """Take every replica down (site-wide warehouse outage)."""
        changed = False
        for replica in self.replicas:
            changed = replica.begin_outage(mode) or changed
        return changed

    def end_outage(self) -> None:
        """Bring every replica back."""
        for replica in self.replicas:
            replica.end_outage()

    @property
    def outage_mode(self) -> Optional[str]:
        """The replicas' common outage mode (first replica's view)."""
        return self.replicas[0].outage_mode

    @property
    def requests_served(self) -> int:
        """Aggregate request count across replicas."""
        return sum(r.requests_served for r in self.replicas)

    @property
    def mb_served(self) -> float:
        """Aggregate data served across replicas."""
        return sum(r.mb_served for r in self.replicas)

    def read_file(self, size_mb: float) -> Generator:
        """Serve one file read from the least-loaded replica."""
        replica = self._pick()
        self._inflight_mb[id(replica)] += size_mb
        try:
            yield from replica.read_file(size_mb)
        finally:
            self._inflight_mb[id(replica)] -= size_mb

    def copy_to_host(
        self,
        size_mb: float,
        host: PhysicalHost,
        files: int = 1,
        pressured: bool = True,
    ) -> Generator:
        """Copy state to a node from the least-loaded replica."""
        replica = self._pick()
        self._inflight_mb[id(replica)] += size_mb
        try:
            yield from replica.copy_to_host(
                size_mb, host, files=files, pressured=pressured
            )
        finally:
            self._inflight_mb[id(replica)] -= size_mb

    def copy_to_host_coalesced(
        self,
        key: Hashable,
        size_mb: float,
        host: PhysicalHost,
        files: int = 1,
        pressured: bool = True,
    ) -> Generator:
        """Copy with in-flight sharing per ``key`` (host, image)."""
        result = yield from self.coalescer.copy(
            self, key, size_mb, host, files=files, pressured=pressured
        )
        return result

    def __repr__(self) -> str:
        return f"<ReplicatedWarehouseStorage x{len(self.replicas)}>"
