"""Structured event tracing for simulations.

A :class:`Tracer` records (time, category, message, data) events.
Attach one to an environment (``env.tracer = Tracer()``) and every
instrumented component — shop, PPP, production lines — emits through
:func:`trace`; without a tracer attached the call is a cheap no-op, so
experiments pay nothing by default.

Traces are the raw material for debugging latency anomalies and for
custom analyses beyond the canned experiments::

    bed = build_testbed(seed=1)
    tracer = Tracer()
    bed.env.tracer = tracer
    bed.run(bed.shop.create(experiment_request(32)))
    for event in tracer.select(category="ppp"):
        print(event)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional

from repro.sim.kernel import Environment

__all__ = ["TraceEvent", "Tracer", "trace"]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event."""

    time: float
    category: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.data.items()))
            if self.data
            else ""
        )
        return f"[{self.time:10.3f}] {self.category:<10} {self.message}{extra}"


class Tracer:
    """Append-only event log with simple filtering.

    With ``capacity`` set the log is a fixed-size ring buffer: the
    oldest events are dropped in O(1) once the buffer is full, so a
    long load-test run can stay instrumented without growing memory
    unboundedly.  The default (``capacity=None``) keeps every event —
    the behaviour the seed experiments and golden trajectories pin.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events, oldest first (a fresh list)."""
        return list(self._events)

    def record(
        self,
        time: float,
        category: str,
        message: str,
        **data: Any,
    ) -> None:
        """Append an event (oldest dropped beyond capacity)."""
        events = self._events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped += 1
        events.append(TraceEvent(time, category, message, dict(data)))

    def select(
        self,
        category: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceEvent]:
        """Events filtered by category and time window."""
        return [
            e
            for e in self._events
            if (category is None or e.category == category)
            and since <= e.time <= until
        ]

    def categories(self) -> List[str]:
        """Distinct categories seen, sorted."""
        return sorted({e.category for e in self._events})

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


def trace(
    env: Environment, category: str, message: str, **data: Any
) -> None:
    """Record an event on ``env``'s tracer, if one is attached."""
    tracer = getattr(env, "tracer", None)
    if tracer is not None:
        tracer.record(env.now, category, message, **data)
