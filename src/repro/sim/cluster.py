"""Builder for the simulated SC'04 experimental testbed.

Section 4.2: an 8-node IBM e1350 cluster (dual 2.4 GHz P4, 1.5 GB RAM
per node), each node running a VMPlant with a VMware GSX production
line; the warehouse is NFS-mounted from a RAID5 storage server over
100 Mbit/s switched Ethernet; the VMShop runs on a cluster node.

:func:`build_testbed` assembles the whole site — hosts, shared NFS
path, warehouse with the paper's golden machines, plants, shop — and
returns a :class:`Testbed` handle the experiments drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cost.models import CostModel, MemoryAvailableCost
from repro.faults.recovery import RecoveryPolicy
from repro.plant.vmplant import VMPlant
from repro.provisioning import ProvisioningConfig
from repro.plant.warehouse import GoldenImage, VMWarehouse
from repro.shop.broker import VMBroker
from repro.shop.protocol import Transport
from repro.shop.registry import ServiceRegistry
from repro.shop.vmshop import VMShop
from repro.sim.host import HostStateCache, PhysicalHost
from repro.sim.hypervisor import CloneRecord, UMLLine, VMwareLine
from repro.sim.kernel import Environment
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.sim.network import FairShareLink
from repro.sim.rng import RngHub
from repro.sim.storage import NFSServer, ReplicatedWarehouseStorage
from repro.vnet.hostonly import HostOnlyNetworkPool
from repro.vnet.vnetd import VirtualNetworkService
from repro.workloads.requests import golden_image

__all__ = ["Testbed", "build_testbed", "run_process"]


def run_process(env: Environment, generator) -> object:
    """Drive one process generator to completion; return its value."""
    proc = env.process(generator)
    return env.run(until=proc)


@dataclass
class Testbed:
    """Handle to an assembled simulated site."""

    env: Environment
    rng: RngHub
    latency: LatencyModel
    shop: VMShop
    plants: List[VMPlant]
    hosts: List[PhysicalHost]
    nfs: NFSServer
    warehouse: VMWarehouse
    registry: ServiceRegistry
    vnet: VirtualNetworkService
    #: Gigabit inter-node network (used by VM migration).
    internode: FairShareLink = None
    lines: Dict[str, List[object]] = field(default_factory=dict)
    #: Provisioning-throughput switches this site was built with.
    provisioning: ProvisioningConfig = field(
        default_factory=ProvisioningConfig
    )
    #: Per-plant adaptive speculative pool managers (when enabled).
    pools: List[object] = field(default_factory=list)
    #: Peer distribution-tree planner (None unless enabled).
    distribution: Optional[object] = None
    #: Popularity-driven replica placer (None unless enabled; not
    #: auto-started — call ``placer.start()`` like the VM monitor).
    placer: Optional[object] = None
    #: Rack-level :class:`~repro.shop.broker.VMBroker` tier (empty
    #: unless built with ``rack_size``); when present the shop bids
    #: against these brokers, not the plants directly.
    racks: List[VMBroker] = field(default_factory=list)

    def run(self, generator) -> object:
        """Drive one process generator to completion on this env."""
        return run_process(self.env, generator)

    def attach_tracer(self, capacity: Optional[int] = None):
        """Attach (and return) a structured event tracer."""
        from repro.sim.trace import Tracer

        tracer = Tracer(capacity=capacity)
        self.env.tracer = tracer
        return tracer

    def clone_records(self, vm_type: Optional[str] = None) -> List[CloneRecord]:
        """All clone records across plants, in start order."""
        records: List[CloneRecord] = []
        for vt, line_list in self.lines.items():
            if vm_type is not None and vt != vm_type:
                continue
            for line in line_list:
                records.extend(line.clone_records)
        records.sort(key=lambda r: r.started_at)
        return records


def build_testbed(
    seed: int = 0,
    n_plants: int = 8,
    memory_sizes: Sequence[int] = (32, 64, 256),
    vm_types: Sequence[str] = ("vmware",),
    latency: LatencyModel = DEFAULT_LATENCY,
    cost_model: Optional[CostModel] = None,
    clone_failure_prob: float = 0.0,
    action_failure_prob: float = 0.0,
    host_memory_mb: float = 1536.0,
    networks_per_plant: int = 4,
    max_vms_per_plant: Optional[int] = None,
    extra_images: Sequence[GoldenImage] = (),
    retry_other_plants: bool = False,
    nfs_replicas: int = 1,
    provisioning: Optional[ProvisioningConfig] = None,
    recovery: Optional["RecoveryPolicy"] = None,
    env: Optional[Environment] = None,
    sites: int = 1,
    shards: int = 1,
    rack_size: Optional[int] = None,
    address_block: Optional[object] = None,
    name_prefix: str = "",
    site: int = 0,
):
    """Assemble the simulated site.

    The default arguments reproduce the paper's setup; experiments
    override ``clone_failure_prob`` (per-run), ``vm_types`` (the UML
    study) and the cost model (Section 3.4 illustration).
    ``provisioning`` switches on the throughput layer (host-side
    golden-state caches, transfer coalescing, speculative pools, peer
    distribution trees with optional replica placement); omitted or
    defaulted it changes nothing.  ``recovery`` configures
    the shop's fault-recovery ladder (deadlines, backoff re-bids,
    plant quarantine); omitted, every knob is off.

    ``env`` lets a caller supply the environment the site lives in —
    the shard runner uses this to place each site in its own kernel.
    ``sites``/``shards`` switch to *sharded* mode: with either above
    1, no testbed is built here; instead a
    :class:`~repro.sim.shard.plan.ShardedTestbed` plan is returned
    describing ``sites`` independent copies of this testbed, packed
    into ``shards`` worker processes (see ``repro.sim.shard``).  The
    classic single-site path is untouched when both are 1.

    Federation knobs (all inert by default): ``rack_size`` inserts a
    rack-level :class:`~repro.shop.broker.VMBroker` tier — plants are
    grouped into brokers of that size and the shop bids against the
    brokers (one transport call per rack, not per plant), the §3.1
    "indirectly through VMBrokers" path.  ``address_block`` (a
    :class:`~repro.federation.addressing.SubnetBlock`) makes every
    plant pool draw its host-only subnets from the site's block of
    the grid address plan instead of the flat ``192.168/16`` default.
    ``name_prefix`` disambiguates service/host names when several
    sites share a federated registry; ``site`` tags the site index
    onto site-aware components (the distribution planner's peer
    stores).
    """
    if sites != 1 or shards != 1:
        from repro.sim.shard.plan import ShardedTestbed

        if env is not None:
            raise ValueError(
                "env= cannot be combined with sites/shards; the shard "
                "runner creates one environment per site"
            )
        return ShardedTestbed(
            seed=seed,
            sites=sites,
            shards=shards,
            params={"plants": n_plants},
        )
    if n_plants <= 0:
        raise ValueError("n_plants must be positive")
    if rack_size is not None and rack_size <= 0:
        raise ValueError("rack_size must be positive")
    prov = provisioning or ProvisioningConfig()
    if env is None:
        env = Environment()
    rng = RngHub(seed)
    registry = ServiceRegistry()
    vnet = VirtualNetworkService()
    if nfs_replicas < 1:
        raise ValueError("nfs_replicas must be >= 1")
    if nfs_replicas == 1:
        nfs = NFSServer(env, f"{name_prefix}nfs", latency=latency, rng=rng)
    else:
        nfs = ReplicatedWarehouseStorage(
            [
                NFSServer(
                    env, f"{name_prefix}nfs{i}", latency=latency, rng=rng
                )
                for i in range(nfs_replicas)
            ]
        )
    # The cluster nodes are interconnected by a gigabit switch
    # (Section 4.2); migrations move VM state across it.
    internode = FairShareLink(env, "internode", bandwidth_mbps=110.0)

    distribution = None
    if prov.distribution_tree:
        from repro.distribution import DistributionPlanner

        distribution = DistributionPlanner(
            env,
            nfs,
            latency=latency,
            fanout=prov.tree_fanout,
            peer_bandwidth_mbps=prov.peer_bandwidth_mbps,
        )

    warehouse = VMWarehouse()
    for vm_type in vm_types:
        for memory in memory_sizes:
            warehouse.publish(golden_image(memory, vm_type=vm_type))
    for image in extra_images:
        warehouse.publish(image)

    transport = Transport(
        env, rng, latency_s=latency.transport_latency_s
    )
    shop = VMShop(
        env,
        f"{name_prefix}vmshop",
        transport=transport,
        rng=rng,
        registry=registry,
        retry_other_plants=retry_other_plants,
        recovery=recovery,
    )

    hosts: List[PhysicalHost] = []
    plants: List[VMPlant] = []
    lines_by_type: Dict[str, List[object]] = {vt: [] for vt in vm_types}
    pools: List[object] = []
    # The peer store serves from the host cache, so the tree layer
    # forces one into existence even when host_cache_mb is 0.
    cache_mb = prov.host_cache_mb
    if prov.distribution_tree:
        cache_mb = max(cache_mb, prov.peer_store_mb)
    for i in range(n_plants):
        host = PhysicalHost(
            env,
            f"{name_prefix}node{i}",
            memory_mb=host_memory_mb,
            latency=latency,
            state_cache=(
                HostStateCache(cache_mb) if cache_mb > 0 else None
            ),
        )
        hosts.append(host)
        if distribution is not None:
            distribution.register_host(host, site=site)
        lines = {}
        for vm_type in vm_types:
            line_cls = VMwareLine if vm_type == "vmware" else UMLLine
            line = line_cls(
                env,
                host,
                nfs,
                rng=rng,
                latency=latency,
                clone_failure_prob=clone_failure_prob,
                action_failure_prob=action_failure_prob,
                coalesce_transfers=prov.coalesce_transfers,
                distribution=distribution,
            )
            lines[vm_type] = line
            lines_by_type[vm_type].append(line)
        plant = VMPlant(
            env,
            f"{name_prefix}plant{i}",
            warehouse,
            lines,
            cost_model=cost_model or MemoryAvailableCost(),
            host_memory_mb=int(host_memory_mb),
            max_vms=max_vms_per_plant,
            network_pool=HostOnlyNetworkPool(
                f"{name_prefix}plant{i}",
                count=networks_per_plant,
                subnets=(
                    address_block.allocate_many(networks_per_plant)
                    if address_block is not None
                    else None
                ),
            ),
            vnet_service=vnet,
        )
        plants.append(plant)
        if rack_size is None:
            shop.register_plant(plant)
        else:
            # Plants stay discoverable, but the shop bids through the
            # rack broker tier built below.
            describe = getattr(plant, "description_ad", None)
            registry.publish(
                plant.name,
                "vmplant",
                plant,
                description=describe() if describe else None,
            )
        if prov.speculative_pools:
            from repro.plant.speculative import AdaptiveSpeculativePool

            manager = AdaptiveSpeculativePool(
                plant,
                target_hit_rate=prov.pool_target_hit_rate,
                min_target=prov.pool_min_target,
                max_target=prov.pool_max_target,
                window=prov.pool_window,
                lead_time_s=prov.pool_lead_time_s,
                bid_discount=prov.pool_bid_discount,
            )
            plant.attach_speculative(manager)
            pools.append(manager)

    racks: List[VMBroker] = []
    if rack_size is not None:
        for j in range(0, n_plants, rack_size):
            rack = VMBroker(
                f"{name_prefix}rack{j // rack_size}",
                plants[j : j + rack_size],
            )
            racks.append(rack)
            shop.bidders.append(rack)
            registry.publish(rack.name, "vmbroker", rack)

    placer = None
    if prov.replica_placement and distribution is not None:
        from repro.distribution import ReplicaPlacer

        placer = ReplicaPlacer(
            env,
            distribution,
            warehouse,
            period_s=prov.placement_period_s,
            top_k=prov.placement_top_k,
            seed_hosts=prov.placement_seed_hosts,
        )

    return Testbed(
        env=env,
        rng=rng,
        latency=latency,
        shop=shop,
        plants=plants,
        hosts=hosts,
        nfs=nfs,
        warehouse=warehouse,
        registry=registry,
        vnet=vnet,
        internode=internode,
        lines=lines_by_type,
        provisioning=prov,
        pools=pools,
        distribution=distribution,
        placer=placer,
        racks=racks,
    )
