"""Deterministic discrete-event simulation kernel.

A small, self-contained process-based DES kernel in the style of SimPy,
built from scratch for this reproduction.  Simulation *processes* are
Python generators that ``yield`` :class:`Event` objects; the kernel
resumes a process when the event it waits on fires.  Event ordering is
fully deterministic: ties in time are broken by priority and then by a
monotonically increasing event id, so a given seed always produces the
same trajectory.

Typical usage::

    env = Environment()

    def worker(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(worker(env))
    env.run()
    assert env.now == 3.0 and proc.value == "done"
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

_heappush = heapq.heappush
_heappop = heapq.heappop

__all__ = [
    "SimulationError",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Environment",
]

#: Default priority for ordinary events.
PRIORITY_NORMAL = 1
#: Priority used for urgent bookkeeping events (process resumption).
PRIORITY_URGENT = 0


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, running a dead process)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* when :meth:`succeed`
    or :meth:`fail` schedules it, and *processed* once the kernel has
    invoked its callbacks.  Each event may be triggered exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: True once failure has been delivered to at least one waiter.
        self.defused = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire as a failure carrying ``exception``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (triggered) event."""
        if event._ok is None:
            raise SimulationError("source event not triggered")
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "pending"
            if self._ok is None
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self.defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay}>"


class _PooledTimeout(Event):
    """A recycled timer event for :meth:`Environment.call_later`.

    Never handed to user code: after its callbacks run the instance
    is reset and returned to the environment's free list, so hot
    timer paths (e.g. :class:`~repro.sim.network.FairShareLink`
    completion timers) stop allocating one event per re-arm.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks = None
        self.defused = False
        self.delay = 0.0
        self._ok = True
        self._value = None

    def _release(self, _event: Event) -> None:
        self.env._timeout_pool.append(self)

    def __repr__(self) -> str:
        return f"<_PooledTimeout delay={self.delay}>"


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        env.schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that fires when the generator
    returns (value = the generator's return value) or raises (failure
    carrying the exception).
    """

    __slots__ = ("_generator", "_target", "_generation")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Each registered wait carries a generation number; interrupts
        # bump it, so a stale resumption (e.g. from an event processed
        # in the same time step as the interrupt) is silently dropped.
        self._generation = 0
        Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._ok is None

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (None if running)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process that is waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError("cannot interrupt a terminated process")
        if self._generator.gi_frame is not None and self._generator.gi_running:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.env)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev.defused = True
        # Invalidate any pending resumption registered for the event we
        # were waiting on; its later firing is dropped by the
        # generation check in _resume.
        self._generation += 1
        gen = self._generation
        interrupt_ev.callbacks = [
            lambda ev, gen=gen: self._resume(ev, gen)
        ]
        self.env.schedule(interrupt_ev, priority=PRIORITY_URGENT)

    def _resume(self, event: Event, generation: Optional[int] = None) -> None:
        """Advance the generator with the outcome of ``event``."""
        if generation is not None and generation != self._generation:
            # Stale wake-up superseded by an interrupt.
            if not event._ok:
                event.defused = True
            return
        if not self.is_alive:
            if not event._ok:
                event.defused = True
            return
        self.env._active_proc = self
        self._target = None
        try:
            if event._ok:
                next_ev = self._generator.send(event._value)
            else:
                event.defused = True
                next_ev = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_proc = None
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self.env._active_proc = None
            self.fail(exc)
            return
        self.env._active_proc = None

        if not isinstance(next_ev, Event):
            # Ill-typed yield: kill the process with a clear error.
            err = SimulationError(
                f"process yielded non-event {next_ev!r}"
            )
            try:
                self._generator.close()
            finally:
                self.fail(err)
            return
        if next_ev.env is not self.env:
            self._generator.close()
            self.fail(SimulationError("event from a different environment"))
            return

        self._generation += 1
        gen = self._generation
        waiter = lambda ev, gen=gen: self._resume(ev, gen)  # noqa: E731
        if next_ev.callbacks is not None:
            # Pending: register for resumption when it fires.
            self._target = next_ev
            next_ev.callbacks.append(waiter)
        else:
            # Already processed: resume immediately at the current time.
            resume_ev = Event(self.env)
            resume_ev._ok = next_ev._ok
            resume_ev._value = next_ev._value
            if not next_ev._ok:
                next_ev.defused = True
                resume_ev.defused = True
            resume_ev.callbacks = [waiter]
            self._target = next_ev
            self.env.schedule(resume_ev, priority=PRIORITY_URGENT)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", "process")
        state = "alive" if self.is_alive else "dead"
        return f"<Process {name} {state}>"


class _Condition(Event):
    """Base for AllOf/AnyOf composition events."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events: Tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.env is not env:
                raise SimulationError("event from a different environment")
        self._count = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _satisfied(self, count: int, total: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied(self._count, len(self.events)):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        # Only events whose callbacks already ran count as "fired":
        # a Timeout pre-sets its ok flag at creation, so .triggered
        # alone would leak not-yet-elapsed timeouts into the result.
        return {
            ev: ev._value
            for ev in self.events
            if ev.processed and ev._ok
        }


class AllOf(_Condition):
    """Fires when *all* component events have fired successfully."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count == total


class AnyOf(_Condition):
    """Fires when *any* component event has fired successfully."""

    __slots__ = ()

    def _satisfied(self, count: int, total: int) -> bool:
        return count >= 1


def _defuse(event: Event) -> None:
    """Callback marking a failure as handled by an external waiter."""
    event.defused = True


class EmptySchedule(Exception):
    """Internal: the event queue ran dry."""


class Environment:
    """Execution environment: clock plus the pending-event queue."""

    __slots__ = (
        "_now",
        "_queue",
        "_eid",
        "_executed",
        "_active_proc",
        "tracer",
        "_timeout_pool",
        "boundary_emits",
    )

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = 0
        self._executed = 0
        self._active_proc: Optional[Process] = None
        #: Optional structured tracer (see :mod:`repro.sim.trace`).
        self.tracer = None
        #: Free list of recycled :class:`_PooledTimeout` instances.
        self._timeout_pool: List[_PooledTimeout] = []
        #: Boundary messages staged from this environment; bumped by
        #: ``BoundaryLink._stage`` and fenced on by the shard runner
        #: (see :meth:`run_below_fenced`).
        self.boundary_emits = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being advanced, if any."""
        return self._active_proc

    @property
    def executed_events(self) -> int:
        """Events actually processed (popped and fired) so far.

        Distinct from the schedule counter: events still sitting in
        the queue — e.g. beyond a ``run(until=...)`` horizon — are
        scheduled but never executed.
        """
        return self._executed

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after ``delay`` time units."""
        return Timeout(self, delay, value)

    def call_later(
        self, delay: float, fn: Callable[[Event], None]
    ) -> None:
        """Invoke ``fn`` after ``delay`` using a pooled timer event.

        Equivalent to appending ``fn`` to a fresh ``timeout(delay)``
        — one ``schedule()`` call, normal priority, so the event
        trajectory is bit-identical — but the underlying event object
        is recycled through a free list instead of allocated anew.
        The event is internal: ``fn`` receives it but must not retain
        it past the callback.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        pool = self._timeout_pool
        ev = pool.pop() if pool else _PooledTimeout(self)
        ev.delay = delay
        ev.callbacks = [fn, ev._release]
        self.schedule(ev, delay=delay)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: int = PRIORITY_NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Enqueue ``event`` to fire ``delay`` after the current time."""
        self._eid = eid = self._eid + 1
        _heappush(self._queue, (self._now + delay, priority, eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def advance_clock(self, time: float) -> None:
        """Advance the clock to ``time`` without processing an event.

        Used by the shard runner to deliver boundary messages at their
        exact timestamp and to land precisely on a ``run(until=...)``
        horizon.  Rewinding is kernel misuse.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot rewind clock from {self._now} to {time}"
            )
        self._now = time

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise EmptySchedule()
        self._now, _, _, event = _heappop(self._queue)
        self._executed += 1
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._ok is False and not event.defused:
            # An un-waited-for failure must not pass silently.
            raise event._value

    def run_below(self, limit: float) -> float:
        """Process every event with time *strictly below* ``limit``.

        The conservative-sync primitive: a shard may only execute
        events below its lookahead horizon, and an event *at* the
        horizon must wait (a boundary message could still arrive
        exactly then).  The clock is left at the last processed event;
        returns the time of the next pending event (``inf`` if none).
        """
        queue = self._queue
        pop = _heappop
        while queue and queue[0][0] < limit:
            self._now, _, _, event = pop(queue)
            self._executed += 1
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if event._ok is False and not event.defused:
                raise event._value
        return queue[0][0] if queue else float("inf")

    def run_below_fenced(self, limit: float) -> float:
        """:meth:`run_below`, stopping early after a boundary send.

        Executes events strictly below ``limit`` but returns as soon
        as a *timestamp* finishes during which :attr:`boundary_emits`
        changed.  Conservative sync needs this: a horizon computed
        from a peer's next event time is invalidated the moment this
        site sends the peer a message (the peer may now wake earlier
        and reply), so the site must stop and let the co-scheduler
        recompute.  Finishing the emitting timestamp itself is safe —
        any causal reply is at least one round-trip of (positive)
        link latency away.
        """
        queue = self._queue
        pop = _heappop
        emits = self.boundary_emits
        while queue and queue[0][0] < limit:
            t = queue[0][0]
            while queue and queue[0][0] == t:
                self._now, _, _, event = pop(queue)
                self._executed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
            if self.boundary_emits != emits:
                break
        return queue[0][0] if queue else float("inf")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulation time), or an :class:`Event` (run
        until it fires, returning its value).

        With a numeric ``until`` the run is *exact at the boundary*:
        every event scheduled at exactly that time is processed (in
        priority/eid order, like any other time step) and the clock
        always ends at ``until`` — including when the queue drains
        early.
        """
        stop_at: Optional[float] = None
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise ValueError(
                    f"until ({stop_at}) must not be before now ({self._now})"
                )
        if stop_event is not None and stop_event.callbacks is not None:
            # run() itself is the waiter: a failure is re-raised below
            # rather than at step() time.
            stop_event.callbacks.append(_defuse)

        # Three specialized loops keep the per-event overhead of the
        # common cases minimal: the step body is inlined so each event
        # costs one heap pop and one tuple unpack, no method call.
        queue = self._queue
        pop = _heappop
        if stop_event is not None:
            while stop_event.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "run(until=event): queue empty before event fired"
                    )
                self._now, _, _, event = pop(queue)
                self._executed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if stop_at is None:
            while queue:
                self._now, _, _, event = pop(queue)
                self._executed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._ok is False and not event.defused:
                    raise event._value
            return None
        while queue and queue[0][0] <= stop_at:
            self._now, _, _, event = pop(queue)
            self._executed += 1
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if event._ok is False and not event.defused:
                raise event._value
        # Exact at the boundary: the clock lands on ``until`` whether
        # the queue drained early or the next event lies beyond it.
        self._now = stop_at
        return None

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
