"""Shared-resource primitives for the simulation kernel.

Three classic DES resources, mirroring the SimPy trio:

* :class:`Resource` — a pool of identical servers claimed/released by
  processes (used for CPU slots and NFS service threads);
* :class:`Container` — a continuous level with put/get (used for host
  RAM accounting);
* :class:`Store` — a FIFO queue of Python objects (used for message
  queues between services).

All waiting is strictly FIFO, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = ["Request", "Release", "Resource", "Container", "Store"]


class Request(Event):
    """Pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the slot ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def cancel(self) -> None:
        """Withdraw the claim (waiting or granted)."""
        self.resource.release(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_val, exc_tb) -> None:
        self.cancel()


class Release(Event):
    """Immediate event confirming a slot release."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        resource._do_release(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO wait queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.users: List[Request] = []
        self.queue: Deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently claimed."""
        return len(self.users)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Release a granted slot (or withdraw a waiting claim)."""
        return Release(self, request)

    def _do_request(self, request: Request) -> None:
        if len(self.users) < self.capacity:
            self.users.append(request)
            request.succeed()
        else:
            self.queue.append(request)

    def _do_release(self, request: Request) -> None:
        if request in self.users:
            self.users.remove(request)
            self._grant_next()
        else:
            try:
                self.queue.remove(request)
            except ValueError:
                pass  # releasing twice is a no-op

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()

    def __repr__(self) -> str:
        return (
            f"<Resource {self.count}/{self.capacity} used,"
            f" {len(self.queue)} queued>"
        )


class _ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount


class _ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.amount = amount


class Container:
    """A continuous stock between 0 and ``capacity``.

    ``put`` blocks while the stock would overflow; ``get`` blocks while
    the stock is insufficient.
    """

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._puts: Deque[_ContainerPut] = deque()
        self._gets: Deque[_ContainerGet] = deque()

    @property
    def level(self) -> float:
        """Current stock."""
        return self._level

    def put(self, amount: float) -> Event:
        """Add ``amount`` to the stock; fires once it fits."""
        ev = _ContainerPut(self, amount)
        self._puts.append(ev)
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        """Remove ``amount`` from the stock; fires once available."""
        ev = _ContainerGet(self, amount)
        self._gets.append(ev)
        self._settle()
        return ev

    def cancel(self, event: Event) -> None:
        """Withdraw a pending put/get."""
        if isinstance(event, _ContainerPut):
            try:
                self._puts.remove(event)
            except ValueError:
                pass
        elif isinstance(event, _ContainerGet):
            try:
                self._gets.remove(event)
            except ValueError:
                pass
        else:
            raise SimulationError("not a container event")

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._puts and not self._puts[0].triggered:
                head = self._puts[0]
                if self._level + head.amount <= self.capacity:
                    self._level += head.amount
                    self._puts.popleft()
                    head.succeed()
                    progressed = True
            if self._gets and not self._gets[0].triggered:
                head = self._gets[0]
                if self._level >= head.amount:
                    self._level -= head.amount
                    self._gets.popleft()
                    head.succeed()
                    progressed = True

    def __repr__(self) -> str:
        return f"<Container level={self._level}/{self.capacity}>"


class _StoreGet(Event):
    __slots__ = ()


class Store:
    """FIFO queue of arbitrary items with blocking get."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: Deque[Any] = deque()
        self._getters: Deque[_StoreGet] = deque()
        self._putters: Deque[Event] = deque()
        self._put_items: Deque[Any] = deque()

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; fires once there is room."""
        ev = Event(self.env)
        self._putters.append(ev)
        self._put_items.append(item)
        self._settle()
        return ev

    def get(self) -> _StoreGet:
        """Dequeue the oldest item; fires with it once available."""
        ev = _StoreGet(self.env)
        self._getters.append(ev)
        self._settle()
        return ev

    def cancel_get(self, event: _StoreGet) -> None:
        """Withdraw a pending get."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                put_ev = self._putters.popleft()
                self.items.append(self._put_items.popleft())
                put_ev.succeed()
                progressed = True
            while self._getters and self.items:
                get_ev = self._getters.popleft()
                get_ev.succeed(self.items.popleft())
                progressed = True

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        return f"<Store {len(self.items)} items>"
