"""Named deterministic random-number streams.

Every stochastic element of the simulation (transport jitter, script
execution variation, NFS service noise) draws from its own named
stream.  Streams are derived from a single experiment seed via SHA-256,
so adding a new consumer never perturbs the draws seen by existing
ones — figures regenerate bit-identically across runs and versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngHub"]


class RngHub:
    """Factory and cache of named :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw ``U[low, high)`` from the named stream."""
        return self.stream(name).uniform(low, high)

    def expovariate(self, name: str, rate: float) -> float:
        """Draw an exponential inter-arrival with the given rate."""
        return self.stream(name).expovariate(rate)

    def lognormal(self, name: str, mu: float, sigma: float) -> float:
        """Draw a log-normal variate (natural-log parameters)."""
        return self.stream(name).lognormvariate(mu, sigma)

    def choice(self, name: str, seq):
        """Pick a uniformly random element of ``seq``."""
        return self.stream(name).choice(seq)

    def __repr__(self) -> str:
        return f"<RngHub seed={self.seed} streams={len(self._streams)}>"
