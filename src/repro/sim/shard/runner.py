"""Sharded kernel execution: conservative (null-message) PDES.

The runner executes a :class:`~repro.sim.shard.plan.ShardedTestbed`
plan.  Every *site* is its own :class:`~repro.sim.kernel.Environment`
in **all** modes; what varies with the shard count is only process
placement:

* ``shards == 1`` — all site environments are co-scheduled in this
  process (no fork, no pipes); boundary messages go through an
  in-process :class:`~repro.sim.shard.ring.LocalOutbox`.
* ``shards > 1`` — sites are packed into forked worker processes;
  cross-shard messages travel over batched struct-packed event rings
  and channels carry null-message lookahead promises.

Both modes enforce one causality rule (classic Chandy–Misra–Bryant
conservative synchronization): a site may execute events *strictly
below* its horizon

    ``min( limit,
           min over local in-links (src -> site) of
               next_time(src) + latency,
           min over remote in-channels of their promise )``

where a channel's *promise* is the sending shard's guarantee that no
future delivery will occur earlier.  Deliveries at time *t* execute
before local events at *t*, ordered among themselves by
``(deliver_time, src_site, channel seq)`` — so per-site trajectories,
and therefore merged-trace fingerprints, are identical for every
shard count.

Termination is parent-coordinated: the coordinator probes workers,
each of which drains its in-rings before replying with an idle flag
and per-channel sent/received message counts; two consecutive
identical all-idle, count-matched rounds prove no event or message
remains in flight.  A worker crash (exception or hard exit) aborts
the whole run with :class:`ShardWorkerError` instead of hanging.
"""

from __future__ import annotations

import gc
import math
import multiprocessing
import multiprocessing.connection as mpconn
import os
import select
import selectors
import time
import traceback

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.profiling import maybe_profile
from repro.sim.kernel import Environment
from repro.sim.network import BoundaryLink
from repro.sim.shard.plan import (
    LinkSpec,
    ShardedTestbed,
    endpoint_ids,
    validate_link_specs,
)
from repro.sim.shard.ring import (
    LocalOutbox,
    RingOutbox,
    RingReader,
    RouterOutbox,
    SiteInbox,
)
from repro.sim.shard.scenarios import ShardScenario, get_scenario
from repro.sim.shard.tracemerge import (
    merge_traces,
    merged_fingerprint,
    site_trace_fingerprint,
)

__all__ = ["ShardRunResult", "ShardWorkerError", "run_sharded"]

_INF = float("inf")


def _maxrss_kb() -> int:
    """Peak RSS of this process in KiB (0 where unavailable)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


class ShardWorkerError(RuntimeError):
    """A shard worker crashed or disappeared; the run was aborted."""


# ---------------------------------------------------------------------------
# Site co-scheduling under the conservative-sync rule
# ---------------------------------------------------------------------------


class SiteRuntime:
    """One site: its environment, inbox, handle and endpoint handlers."""

    __slots__ = ("site", "env", "inbox", "handle", "handlers")

    def __init__(
        self,
        site: int,
        env: Environment,
        inbox: SiteInbox,
        handle,
        handlers: List,
    ):
        self.site = site
        self.env = env
        self.inbox = inbox
        self.handle = handle
        self.handlers = handlers


def next_time(rt: SiteRuntime) -> float:
    """When this site would next execute something (``inf`` if idle)."""
    t = rt.env.peek()
    td = rt.inbox.peek_time()
    return td if td < t else t


class SiteGroup:
    """Co-schedules the sites living in one process.

    ``local_in[site]`` lists ``(src_site, latency)`` for boundary
    links whose endpoints are both in this group; ``remote_in[site]``
    lists the source *shards* of links arriving from other processes
    (their current promises are passed into :meth:`advance`).
    """

    __slots__ = ("runtimes", "order", "local_in", "remote_in")

    def __init__(
        self,
        runtimes: Dict[int, SiteRuntime],
        local_in: Dict[int, List[Tuple[int, float]]],
        remote_in: Dict[int, List[int]],
    ):
        self.runtimes = runtimes
        self.order = sorted(runtimes)
        self.local_in = local_in
        self.remote_in = remote_in

    def horizon(
        self, site: int, limit: float, promises: Dict[int, float]
    ) -> float:
        h = limit
        for src, latency in self.local_in.get(site, ()):
            bound = next_time(self.runtimes[src]) + latency
            if bound < h:
                h = bound
        for shard in self.remote_in.get(site, ()):
            p = promises[shard]
            if p < h:
                h = p
        return h

    def idle(self, limit: float) -> bool:
        """True when no site has anything to execute below ``limit``."""
        return all(
            next_time(rt) >= limit for rt in self.runtimes.values()
        )

    def advance(self, limit: float, promises: Dict[int, float]) -> bool:
        """Run sites until every one is blocked at its horizon.

        Repeatedly picks the site with the earliest pending work (tie:
        lowest site index) whose horizon lets it move, and advances it
        in one batch.  Returns True if anything was executed.  The
        pick order does not affect trajectories — sites only interact
        through inboxes, and inbox pops are gated by the horizon rule
        — it only affects batching.
        """
        progressed = False
        runtimes = self.runtimes
        while True:
            pending = sorted(
                (next_time(rt), site)
                for site, rt in runtimes.items()
            )
            moved = False
            for t, site in pending:
                if t >= limit:
                    break
                h = self.horizon(site, limit, promises)
                if t < h:
                    self._advance_site(runtimes[site], h)
                    moved = progressed = True
                    break
            if not moved:
                return progressed

    @staticmethod
    def _advance_site(rt: SiteRuntime, horizon: float) -> None:
        """Advance one site strictly below ``horizon``.

        Boundary deliveries at time *t* are handed to their endpoint
        handlers *before* local events at *t* run; deliveries at the
        horizon itself wait (another channel could still deliver at
        exactly that time with a lower ``(src, seq)`` rank).

        The batch stops at the first boundary *send*: ``horizon`` was
        derived from the peers' pre-send next event times, and a send
        can wake an idle peer into replying earlier than that bound —
        the group loop must recompute before this site runs further.
        (Without the fence, bursty workloads with long local gaps let
        a site overshoot and a reply lands in its past.)
        """
        env = rt.env
        inbox = rt.inbox
        handlers = rt.handlers
        emits = env.boundary_emits
        while True:
            td = inbox.peek_time()
            tn = env.peek()
            if td < horizon and td <= tn:
                env.advance_clock(td)
                for _, _, _, endpoint, payload in inbox.pop_at(td):
                    handlers[endpoint](payload)
            elif tn < horizon:
                env.run_below_fenced(td if td < horizon else horizon)
            else:
                return
            if env.boundary_emits != emits:
                return


# ---------------------------------------------------------------------------
# Building the per-process slice of a plan
# ---------------------------------------------------------------------------


class _SiteWorld:
    """The sites of one process: built models, links, and the group."""

    def __init__(
        self,
        plan: ShardedTestbed,
        scenario: ShardScenario,
        params: Dict[str, Any],
        specs: Sequence[LinkSpec],
        eids: Dict[Tuple[int, str], int],
        site_list: Sequence[int],
        collect: Optional[str],
        outbox,
        inboxes: Dict[int, SiteInbox],
        trace_capacity: Optional[int] = None,
    ):
        self.scenario = scenario
        self.collect = collect
        local = set(site_list)
        n_handlers: Dict[int, int] = {}
        for (dst, _name), idx in eids.items():
            n_handlers[dst] = max(n_handlers.get(dst, 0), idx + 1)

        self.runtimes: Dict[int, SiteRuntime] = {}
        for site in sorted(site_list):
            env = Environment()
            if collect:
                from repro.sim.trace import Tracer

                env.tracer = Tracer(capacity=trace_capacity)
            handle = scenario.build_site(
                env, site, plan.sites, plan.seed, params
            )
            handlers: List = [None] * n_handlers.get(site, 0)
            for name, fn in scenario.endpoints(handle).items():
                key = (site, name)
                if key in eids:
                    handlers[eids[key]] = fn
            self.runtimes[site] = SiteRuntime(
                site, env, inboxes[site], handle, handlers
            )

        for (dst, name), idx in eids.items():
            if dst in local and self.runtimes[dst].handlers[idx] is None:
                raise ValueError(
                    f"site {dst} has an inbound {name!r} link but the "
                    f"scenario provides no such endpoint handler"
                )

        links_by_site: Dict[int, Dict[str, BoundaryLink]] = {
            site: {} for site in site_list
        }
        local_in: Dict[int, List[Tuple[int, float]]] = {}
        remote_in: Dict[int, set] = {}
        for spec in specs:
            if spec.src in local:
                links_by_site[spec.src][spec.name] = BoundaryLink(
                    self.runtimes[spec.src].env,
                    spec.name,
                    spec.bandwidth_mbps,
                    spec.latency_s,
                    spec.src,
                    spec.dst,
                    eids[(spec.dst, spec.endpoint)],
                    outbox,
                )
            if spec.dst in local:
                if spec.src in local:
                    local_in.setdefault(spec.dst, []).append(
                        (spec.src, spec.latency_s)
                    )
                else:
                    remote_in.setdefault(spec.dst, set()).add(
                        plan.partition[spec.src]
                    )
        for site in sorted(site_list):
            scenario.start(
                self.runtimes[site].handle, links_by_site[site]
            )
        self.group = SiteGroup(
            self.runtimes,
            local_in,
            {k: sorted(v) for k, v in remote_in.items()},
        )

    def site_result(self, site: int) -> Dict[str, Any]:
        rt = self.runtimes[site]
        out: Dict[str, Any] = {
            "site": site,
            "events": rt.env.executed_events,
            "now": rt.env.now,
            "stats": self.scenario.collect(rt.handle),
        }
        if self.collect:
            events = rt.env.tracer.events
            out["trace_len"] = len(events)
            out["trace_dropped"] = rt.env.tracer.dropped
            out["trace_fp"] = site_trace_fingerprint(events)
            if self.collect == "trace":
                out["trace"] = events
        return out


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------


@dataclass
class ShardRunResult:
    """Outcome of one sharded run (any shard count)."""

    sites: int
    shards: int
    partition: Tuple[int, ...]
    scenario: str
    params: Dict[str, Any]
    until: Optional[float]
    collect: Optional[str]
    #: Coordinator wall-clock for the whole run (build + sim + sync).
    wall_s: float
    #: Per-site outcomes, in site order.
    site_results: List[Dict[str, Any]]
    #: Per-worker outcomes, in shard order.
    shard_results: List[Dict[str, Any]]

    @property
    def total_events(self) -> int:
        """Kernel events executed, summed over all sites."""
        return sum(r["events"] for r in self.site_results)

    @property
    def wall_events_per_sec(self) -> float:
        """Events per second of coordinator wall-clock."""
        return self.total_events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def agg_events_per_sec(self) -> float:
        """Aggregate throughput: sum over shards of events / CPU-time.

        On a machine with at least ``shards`` free cores this
        coincides with wall-clock events/sec; on smaller machines it
        measures what the sharded kernel *delivers per core* — i.e.
        parallel efficiency net of synchronization overhead — which
        is the comparable number across environments.
        """
        total = 0.0
        for s in self.shard_results:
            if s["cpu_s"] > 0:
                total += s["events"] / s["cpu_s"]
        return total

    @property
    def trace_dropped(self) -> int:
        """Trace events dropped by bounded tracers, over all sites.

        Non-zero only when the run was collected with a finite
        ``trace_capacity``; per-site trajectories are unaffected, so
        fingerprints still agree across shard counts as long as every
        run uses the *same* capacity — but a non-zero count means the
        retained window (and hence the fingerprint) covers only the
        tail of the run, which reports must say out loud.
        """
        return sum(
            int(r.get("trace_dropped", 0)) for r in self.site_results
        )

    @property
    def peak_rss_kb(self) -> int:
        """Largest per-process peak RSS across shard workers (KiB)."""
        return max(
            (int(s.get("maxrss_kb", 0)) for s in self.shard_results),
            default=0,
        )

    def fingerprint(self) -> str:
        """Merged-trace fingerprint (requires trace collection)."""
        if self.collect not in ("trace", "fingerprint"):
            raise ValueError(
                "run was executed without trace collection"
            )
        return merged_fingerprint(
            [r["trace_fp"] for r in self.site_results]
        )

    def merged_trace(self):
        """Shard-tagged merged timeline (requires ``collect='trace'``)."""
        if self.collect != "trace":
            raise ValueError("run was executed with collect!='trace'")
        return merge_traces(
            {r["site"]: r["trace"] for r in self.site_results}
        )

    def combined_stats(self) -> Dict[str, float]:
        """Scenario stats summed across sites (numeric fields only)."""
        total: Dict[str, float] = {}
        for r in self.site_results:
            for k, v in r["stats"].items():
                if isinstance(v, (int, float)):
                    total[k] = total.get(k, 0) + v
        return total


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_sharded(
    plan: ShardedTestbed,
    scenario: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
    until: Optional[float] = None,
    collect: Optional[str] = "fingerprint",
    profile_dir: Optional[str] = None,
    deadline_s: Optional[float] = None,
    trace_capacity: Optional[int] = None,
) -> ShardRunResult:
    """Execute a sharding plan; see :class:`ShardRunResult`.

    ``trace_capacity`` bounds each site's tracer to a ring buffer of
    that many events (``None`` — the default every existing caller
    and golden trajectory uses — keeps every event).  Dropped counts
    surface via :attr:`ShardRunResult.trace_dropped`.
    """
    if collect not in (None, "trace", "fingerprint"):
        raise ValueError(
            f"collect must be None, 'trace' or 'fingerprint': {collect!r}"
        )
    if trace_capacity is not None and trace_capacity <= 0:
        raise ValueError("trace_capacity must be positive")
    if until is not None:
        until = float(until)
        if until < 0:
            raise ValueError("until must be non-negative")
    name = scenario or plan.scenario
    sc = get_scenario(name)
    merged = dict(plan.params)
    merged.update(params or {})
    prm = sc.resolve(merged)
    specs = sc.link_specs(plan.sites, prm)
    validate_link_specs(specs, plan.sites)
    eids = endpoint_ids(specs)

    if plan.shards == 1:
        result = _run_inprocess(
            plan,
            sc,
            name,
            prm,
            specs,
            eids,
            until,
            collect,
            profile_dir,
            trace_capacity,
        )
    else:
        result = _run_forked(
            plan,
            name,
            prm,
            specs,
            eids,
            until,
            collect,
            profile_dir,
            deadline_s,
            trace_capacity,
        )
    return result


def _limit_for(until: Optional[float]) -> float:
    # Events at exactly `until` must run (inclusive boundary, same as
    # Environment.run), so the strict execution limit is the next
    # representable float.
    return _INF if until is None else math.nextafter(until, _INF)


def _run_inprocess(
    plan: ShardedTestbed,
    sc: ShardScenario,
    name: str,
    prm: Dict[str, Any],
    specs: Sequence[LinkSpec],
    eids: Dict[Tuple[int, str], int],
    until: Optional[float],
    collect: Optional[str],
    profile_dir: Optional[str],
    trace_capacity: Optional[int] = None,
) -> ShardRunResult:
    wall0 = time.perf_counter()
    site_list = list(range(plan.sites))
    inboxes = {s: SiteInbox() for s in site_list}
    outbox = LocalOutbox(inboxes)
    world = _SiteWorld(
        plan,
        sc,
        prm,
        specs,
        eids,
        site_list,
        collect,
        outbox,
        inboxes,
        trace_capacity,
    )
    limit = _limit_for(until)
    path = (
        os.path.join(profile_dir, "profile_shard0.pstats")
        if profile_dir
        else None
    )
    # Like the forked workers, the measured window covers simulation
    # only — model construction is excluded in every mode.
    sim_wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with maybe_profile(path):
        world.group.advance(limit, {})
    if until is not None:
        for rt in world.runtimes.values():
            rt.env.advance_clock(until)
    wall = time.perf_counter() - wall0
    cpu = time.process_time() - cpu0
    sim_wall = time.perf_counter() - sim_wall0
    site_results = [world.site_result(s) for s in site_list]
    shard_results = [
        {
            "shard": 0,
            "sites": site_list,
            "wall_s": sim_wall,
            "cpu_s": cpu,
            "events": sum(r["events"] for r in site_results),
            "sent": {},
            "recv": {},
            "maxrss_kb": _maxrss_kb(),
        }
    ]
    return ShardRunResult(
        sites=plan.sites,
        shards=1,
        partition=tuple(plan.partition),
        scenario=name,
        params=prm,
        until=until,
        collect=collect,
        wall_s=wall,
        site_results=site_results,
        shard_results=shard_results,
    )


# ---------------------------------------------------------------------------
# Forked multi-shard execution
# ---------------------------------------------------------------------------


def _cross_channels(
    specs: Sequence[LinkSpec], partition: Tuple[int, ...]
) -> Dict[Tuple[int, int], float]:
    """Directed cross-shard channels -> minimum lookahead on each."""
    channels: Dict[Tuple[int, int], float] = {}
    for spec in specs:
        a, b = partition[spec.src], partition[spec.dst]
        if a == b:
            continue
        prev = channels.get((a, b))
        if prev is None or spec.latency_s < prev:
            channels[(a, b)] = spec.latency_s
    return channels


def _run_forked(
    plan: ShardedTestbed,
    name: str,
    prm: Dict[str, Any],
    specs: Sequence[LinkSpec],
    eids: Dict[Tuple[int, str], int],
    until: Optional[float],
    collect: Optional[str],
    profile_dir: Optional[str],
    deadline_s: Optional[float],
    trace_capacity: Optional[int] = None,
) -> ShardRunResult:
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        raise NotImplementedError(
            "sharded execution requires the fork start method"
        )
    wall0 = time.perf_counter()
    # Collect before forking so garbage isn't duplicated into every
    # child; each worker then freezes the inherited heap (see
    # _worker_main) so its GC never traverses — and so never
    # copy-on-writes — objects it can't free anyway.
    gc.collect()
    channels = _cross_channels(specs, tuple(plan.partition))
    pipes = {pair: os.pipe() for pair in sorted(channels)}
    conn_pairs = [ctx.Pipe() for _ in range(plan.shards)]
    parent_conns = [p for p, _ in conn_pairs]
    child_conns = [c for _, c in conn_pairs]

    procs = []
    for shard in range(plan.shards):
        p = ctx.Process(
            target=_worker_main,
            args=(
                shard,
                plan,
                name,
                prm,
                specs,
                eids,
                until,
                collect,
                profile_dir,
                channels,
                pipes,
                parent_conns,
                child_conns,
                trace_capacity,
            ),
            daemon=True,
        )
        p.start()
        procs.append(p)
    # The parent takes no part in the rings: close its copies so a
    # dead worker's channels actually reach EOF at the readers.
    for rfd, wfd in pipes.values():
        os.close(rfd)
        os.close(wfd)
    for c in child_conns:
        c.close()

    deadline = (
        time.monotonic() + deadline_s if deadline_s is not None else None
    )
    results: Dict[int, Dict[str, Any]] = {}
    conn_of = {c: i for i, c in enumerate(parent_conns)}
    sentinel_of = {p.sentinel: i for i, p in enumerate(procs)}

    def abort(message: str) -> None:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=5)
        raise ShardWorkerError(message)

    # One crash usually produces a cascade: the dying worker reports
    # its exception, then peers observe its closed rings and report
    # BrokenShardError.  Collect reports for a short grace window and
    # surface the root cause, not whichever arrived first.
    errors: Dict[int, Tuple[str, str]] = {}
    error_grace: Optional[float] = None

    def fail_with_errors() -> None:
        ordered = sorted(errors.items())
        primary = [
            (s, r, tb)
            for s, (r, tb) in ordered
            if "BrokenShardError" not in r
        ] or [(s, r, tb) for s, (r, tb) in ordered]
        s, r, tb = primary[0]
        abort(f"shard {s} worker failed: {r}\n{tb}")

    def send_all(msg: tuple) -> None:
        for c in parent_conns:
            try:
                c.send(msg)
            except (BrokenPipeError, OSError):
                pass  # death surfaces via the sentinel

    round_id = 0
    replies: Dict[int, tuple] = {}
    prev_snapshot = None
    stopping = False
    send_all(("probe", round_id))

    try:
        while len(results) < plan.shards:
            ready = mpconn.wait(
                list(parent_conns) + list(sentinel_of), timeout=0.5
            )
            if deadline is not None and time.monotonic() > deadline:
                abort(
                    f"sharded run exceeded deadline of {deadline_s}s"
                )
            if error_grace is not None and time.monotonic() > error_grace:
                fail_with_errors()
            for obj in ready:
                if obj in conn_of:
                    shard = conn_of[obj]
                    try:
                        while obj.poll():
                            msg = obj.recv()
                            kind = msg[0]
                            if kind == "probe_reply":
                                if msg[1] == round_id:
                                    replies[shard] = msg[2:]
                            elif kind == "result":
                                results[msg[1]] = msg[2]
                            elif kind == "error":
                                errors[msg[1]] = (msg[2], msg[3])
                                if error_grace is None:
                                    error_grace = time.monotonic() + 0.25
                    except (EOFError, OSError):
                        if shard not in results and not errors:
                            abort(
                                f"shard {shard} control channel closed "
                                f"unexpectedly"
                            )
                else:
                    shard = sentinel_of[obj]
                    if shard not in results and not errors:
                        abort(
                            f"shard {shard} worker died without a result "
                            f"(exit code {procs[shard].exitcode})"
                        )
            if not stopping and len(replies) == plan.shards:
                stopping = _evaluate_probe(
                    replies, channels, prev_snapshot
                )
                if stopping:
                    send_all(("stop",))
                else:
                    all_idle = all(r[0] for r in replies.values())
                    matched = _counts_match(replies, channels)
                    prev_snapshot = (
                        _snapshot(replies)
                        if (all_idle and matched)
                        else None
                    )
                    round_id += 1
                    replies = {}
                    time.sleep(0.02)
                    send_all(("probe", round_id))
        send_all(("exit",))
        for p in procs:
            p.join(timeout=10)
    except ShardWorkerError:
        raise
    except BaseException:
        for p in procs:
            if p.is_alive():
                p.terminate()
        raise

    wall = time.perf_counter() - wall0
    site_results = sorted(
        (
            sr
            for payload in results.values()
            for sr in payload["site_results"]
        ),
        key=lambda r: r["site"],
    )
    shard_results = [
        {
            k: v
            for k, v in results[shard].items()
            if k != "site_results"
        }
        for shard in range(plan.shards)
    ]
    return ShardRunResult(
        sites=plan.sites,
        shards=plan.shards,
        partition=tuple(plan.partition),
        scenario=name,
        params=prm,
        until=until,
        collect=collect,
        wall_s=wall,
        site_results=site_results,
        shard_results=shard_results,
    )


def _snapshot(replies: Dict[int, tuple]):
    return tuple(
        (shard, idle, tuple(sorted(sent.items())), tuple(sorted(recv.items())))
        for shard, (idle, sent, recv) in sorted(replies.items())
    )


def _counts_match(
    replies: Dict[int, tuple],
    channels: Dict[Tuple[int, int], float],
) -> bool:
    for (a, b) in channels:
        sent = replies[a][1].get(b, 0)
        recv = replies[b][2].get(a, 0)
        if sent != recv:
            return False
    return True


def _evaluate_probe(
    replies: Dict[int, tuple],
    channels: Dict[Tuple[int, int], float],
    prev_snapshot,
) -> bool:
    """Terminate after two consecutive identical clean rounds.

    A clean round: every worker idle and every channel's sent count
    equal to the peer's received count.  Workers drain their in-rings
    before replying, so two identical clean rounds imply nothing is
    in flight anywhere.
    """
    if not all(r[0] for r in replies.values()):
        return False
    if not _counts_match(replies, channels):
        return False
    return prev_snapshot is not None and _snapshot(replies) == prev_snapshot


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(
    shard: int,
    plan: ShardedTestbed,
    name: str,
    prm: Dict[str, Any],
    specs: Sequence[LinkSpec],
    eids: Dict[Tuple[int, str], int],
    until: Optional[float],
    collect: Optional[str],
    profile_dir: Optional[str],
    channels: Dict[Tuple[int, int], float],
    pipes: Dict[Tuple[int, int], Tuple[int, int]],
    parent_conns,
    child_conns,
    trace_capacity: Optional[int] = None,
) -> None:
    # Move the inherited heap to the permanent generation: a worker
    # can never free its parent's objects, but collecting them would
    # fault copy-on-write pages and bill heap-proportional CPU to
    # whichever shard GC happens to fire in — noise that scales with
    # the *parent's* import surface, not the shard's workload.
    gc.freeze()
    conn = child_conns[shard]
    # Drop every inherited descriptor that is not ours, so peer EOFs
    # are observable and a dead worker cannot be masked by our copies.
    for c in parent_conns:
        c.close()
    for i, c in enumerate(child_conns):
        if i != shard:
            c.close()
    read_fds: Dict[int, int] = {}
    write_fds: Dict[int, int] = {}
    for (a, b), (rfd, wfd) in pipes.items():
        if b == shard:
            read_fds[a] = rfd
        else:
            os.close(rfd)
        if a == shard:
            write_fds[b] = wfd
        else:
            os.close(wfd)
    try:
        worker = _ShardWorker(
            shard,
            plan,
            get_scenario(name),
            prm,
            specs,
            eids,
            until,
            collect,
            profile_dir,
            channels,
            read_fds,
            write_fds,
            conn,
            trace_capacity,
        )
        worker.run()
    except BaseException as exc:  # noqa: BLE001 - forwarded to parent
        try:
            conn.send(
                ("error", shard, repr(exc), traceback.format_exc())
            )
        except Exception:
            pass
        os._exit(1)
    os._exit(0)


class _ShardWorker:
    """One forked worker: a site world plus ring synchronization."""

    def __init__(
        self,
        shard: int,
        plan: ShardedTestbed,
        scenario: ShardScenario,
        prm: Dict[str, Any],
        specs: Sequence[LinkSpec],
        eids: Dict[Tuple[int, str], int],
        until: Optional[float],
        collect: Optional[str],
        profile_dir: Optional[str],
        channels: Dict[Tuple[int, int], float],
        read_fds: Dict[int, int],
        write_fds: Dict[int, int],
        conn,
        trace_capacity: Optional[int] = None,
    ):
        self.shard = shard
        self.until = until
        self.collect = collect
        self.profile_dir = profile_dir
        self.conn = conn
        self.limit = _limit_for(until)
        self.site_list = plan.shard_sites(shard)
        self.inboxes = {s: SiteInbox() for s in self.site_list}
        self.ring = RingOutbox(write_fds, on_block=self._ring_block)
        outbox = RouterOutbox(
            self.inboxes, self.ring, tuple(plan.partition), shard
        )
        self.world = _SiteWorld(
            plan,
            scenario,
            prm,
            specs,
            eids,
            self.site_list,
            collect,
            outbox,
            self.inboxes,
            trace_capacity,
        )
        #: Minimum lookahead of each outbound / inbound channel.
        self.out_lookahead = {
            b: lat for (a, b), lat in channels.items() if a == shard
        }
        in_lookahead = {
            a: lat for (a, b), lat in channels.items() if b == shard
        }
        # At t=0 the peer's clock is >= 0, so its first delivery is
        # >= the channel lookahead: that is the initial promise.
        self.readers = {
            src: RingReader(src, fd, in_lookahead[src])
            for src, fd in read_fds.items()
        }
        self.sent_promise = {dst: 0.0 for dst in write_fds}

    # -- synchronization helpers ----------------------------------------
    def _promises(self) -> Dict[int, float]:
        return {src: r.promise for src, r in self.readers.items()}

    def _lower_bound(self) -> float:
        """No event on this shard can execute before this time."""
        lb = _INF
        for rt in self.world.runtimes.values():
            t = next_time(rt)
            if t < lb:
                lb = t
        for r in self.readers.values():
            if r.promise < lb:
                lb = r.promise
        return lb

    def _flush(self) -> None:
        """Ship staged records; keep peers' promises ratcheting."""
        lb = self._lower_bound()
        for dst, lookahead in self.out_lookahead.items():
            promise = lb + lookahead
            if self.ring.flush_channel(dst, promise):
                self.sent_promise[dst] = promise
            elif promise > self.sent_promise[dst]:
                self.ring.send_null(dst, promise)
                self.sent_promise[dst] = promise

    def _drain(self) -> bool:
        got = False
        for r in self.readers.values():
            if r.drain(self.inboxes):
                got = True
        return got

    def _ring_block(self, fd: int) -> None:
        """An outbound ring pipe is full; avoid a mutual-flood deadlock.

        The peer may itself be blocked writing to us, so drain our own
        in-rings (freeing its writer) before waiting for pipe space.
        Arrivals pushed into inboxes mid-advance are safe: an ongoing
        ``group.advance`` uses a promises snapshot that only lags the
        ratchet, so its horizons stay conservative and every new
        delivery time still lies at or beyond them.
        """
        self._drain()
        select.select([], [fd], [], 0.05)

    def _handle_control(self) -> bool:
        """Process queued coordinator messages; True on stop."""
        while self.conn.poll():
            msg = self.conn.recv()
            kind = msg[0]
            if kind == "probe":
                # Drain (and act on) everything already in our rings
                # before answering, so sent/recv counts converge.
                self._drain()
                self.world.group.advance(self.limit, self._promises())
                self._flush()
                self.conn.send(
                    (
                        "probe_reply",
                        msg[1],
                        self.world.group.idle(self.limit),
                        dict(self.ring.sent),
                        {
                            src: r.received
                            for src, r in self.readers.items()
                        },
                    )
                )
            elif kind == "stop":
                return True
        return False

    # -- main loop -------------------------------------------------------
    def run(self) -> None:
        path = (
            os.path.join(
                self.profile_dir, f"profile_shard{self.shard}.pstats"
            )
            if self.profile_dir
            else None
        )
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        with maybe_profile(path):
            self._simulate()
        wall = time.perf_counter() - wall0
        cpu = time.process_time() - cpu0
        if self.until is not None:
            for rt in self.world.runtimes.values():
                rt.env.advance_clock(self.until)
        site_results = [
            self.world.site_result(s) for s in sorted(self.site_list)
        ]
        payload = {
            "shard": self.shard,
            "sites": list(self.site_list),
            "wall_s": wall,
            "cpu_s": cpu,
            "events": sum(r["events"] for r in site_results),
            "sent": dict(self.ring.sent),
            "recv": {
                src: r.received for src, r in self.readers.items()
            },
            "maxrss_kb": _maxrss_kb(),
            "site_results": site_results,
        }
        self.conn.send(("result", self.shard, payload))
        # Keep our ring write-ends open until every peer has stopped
        # draining (the coordinator releases all workers together),
        # so nobody mistakes our exit for a crash.
        self.conn.recv()

    def _simulate(self) -> None:
        sel = selectors.DefaultSelector()
        for reader in self.readers.values():
            sel.register(reader.fd, selectors.EVENT_READ, reader)
        sel.register(self.conn, selectors.EVENT_READ, None)
        group = self.world.group
        try:
            while True:
                group.advance(self.limit, self._promises())
                self._flush()
                # Block until a peer ships records/promises or the
                # coordinator speaks; drain only what actually fired
                # (each read is a syscall, and sync wakeups are the
                # hot loop's fixed cost).
                ready = sel.select(timeout=0.2)
                control = False
                for key, _ in ready:
                    if key.data is None:
                        control = True
                    else:
                        key.data.drain(self.inboxes)
                if control and self._handle_control():
                    return
        finally:
            sel.close()
