"""Sharded parallel DES kernel with conservative lookahead sync.

Partitions a multi-site testbed into per-site
:class:`~repro.sim.kernel.Environment` shards, runs each shard's
event loop in its own worker process, and synchronizes them with
classic conservative (null-message / lookahead) PDES over the
inter-site boundary links.  See ``DESIGN.md``'s "Kernel sharding &
parallel execution" section for the partitioning model, the lookahead
rule, and the determinism contract.
"""

from repro.sim.shard.plan import (
    LinkSpec,
    ShardedTestbed,
    block_partition,
    endpoint_ids,
    validate_link_specs,
)
from repro.sim.shard.ring import (
    KIND_MSG,
    KIND_NULL,
    RECORD,
    BrokenShardError,
    LocalOutbox,
    RingOutbox,
    RingReader,
    RouterOutbox,
    SiteInbox,
)
from repro.sim.shard.runner import (
    ShardRunResult,
    ShardWorkerError,
    run_sharded,
)
from repro.sim.shard.scenarios import (
    SCENARIOS,
    KernelBenchScenario,
    MiniRingScenario,
    ShardScenario,
    get_scenario,
    register,
)
from repro.sim.shard.tracemerge import (
    merge_traces,
    merged_fingerprint,
    site_trace_fingerprint,
)

__all__ = [
    "LinkSpec",
    "ShardedTestbed",
    "block_partition",
    "endpoint_ids",
    "validate_link_specs",
    "RECORD",
    "KIND_NULL",
    "KIND_MSG",
    "SiteInbox",
    "LocalOutbox",
    "RouterOutbox",
    "RingOutbox",
    "RingReader",
    "BrokenShardError",
    "ShardRunResult",
    "ShardWorkerError",
    "run_sharded",
    "SCENARIOS",
    "ShardScenario",
    "KernelBenchScenario",
    "MiniRingScenario",
    "get_scenario",
    "register",
    "merge_traces",
    "merged_fingerprint",
    "site_trace_fingerprint",
]
