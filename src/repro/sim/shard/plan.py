"""Partitioning plans for sharded kernel runs.

A sharded run is described by a :class:`ShardedTestbed` plan: how many
*sites* the testbed splits into, how those sites are packed into
worker *shards*, which scenario builds each site, and the inter-site
:class:`LinkSpec` topology (the only cross-site coupling).  The plan
is pure data — building and running it is the runner's job — so it
pickles trivially and validates before any worker forks.

The determinism contract hangs off the plan: for a fixed ``(seed,
partition)`` every shard count produces the same per-site
trajectories, because each site always runs in its own
:class:`~repro.sim.kernel.Environment` and boundary deliveries follow
one canonical order regardless of process placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "LinkSpec",
    "block_partition",
    "validate_link_specs",
    "endpoint_ids",
    "ShardedTestbed",
]


@dataclass(frozen=True)
class LinkSpec:
    """One directed inter-site boundary link.

    ``latency_s`` doubles as the conservative-sync lookahead for the
    ``src -> dst`` channel: the destination may simulate up to
    (source clock + ``latency_s``) without waiting.  It must be
    strictly positive — zero lookahead would serialize the shards.
    """

    name: str
    src: int
    dst: int
    endpoint: str
    bandwidth_mbps: float
    latency_s: float


def block_partition(sites: int, shards: int) -> Tuple[int, ...]:
    """Map each site to a shard in contiguous, balanced blocks.

    Site ``s`` lands on shard ``s * shards // sites`` — block sizes
    differ by at most one, and neighbouring sites share a shard where
    possible (which keeps ring-topology traffic mostly in-process).
    """
    if sites <= 0:
        raise ValueError("sites must be positive")
    if not 1 <= shards <= sites:
        raise ValueError(
            f"shards must be in [1, sites]: got shards={shards}, "
            f"sites={sites}"
        )
    return tuple(s * shards // sites for s in range(sites))


def validate_link_specs(
    specs: Sequence[LinkSpec], sites: int
) -> None:
    """Reject ill-formed topologies before any worker forks.

    Mirrors the :class:`~repro.sim.network.BoundaryLink` constructor
    checks (self-loops, non-positive lookahead) and adds plan-level
    ones (site indices in range, duplicate link names).
    """
    seen = set()
    for spec in specs:
        if spec.name in seen:
            raise ValueError(f"duplicate boundary link name {spec.name!r}")
        seen.add(spec.name)
        if not (0 <= spec.src < sites and 0 <= spec.dst < sites):
            raise ValueError(
                f"boundary link {spec.name!r} references site outside "
                f"[0, {sites}): {spec.src}->{spec.dst}"
            )
        if spec.src == spec.dst:
            raise ValueError(
                f"boundary link {spec.name!r} connects site {spec.src} "
                f"to itself; boundary links are inter-site only"
            )
        if spec.latency_s <= 0:
            raise ValueError(
                f"boundary link {spec.name!r} ({spec.src}->{spec.dst}) "
                f"has zero lookahead: conservative parallel sync "
                f"requires a positive inter-site latency_s "
                f"(got {spec.latency_s})"
            )
        if spec.bandwidth_mbps <= 0:
            raise ValueError(
                f"boundary link {spec.name!r} bandwidth must be positive"
            )


def endpoint_ids(
    specs: Sequence[LinkSpec],
) -> Dict[Tuple[int, str], int]:
    """Numeric endpoint ids, derivable from the specs alone.

    Per destination site, the sorted distinct endpoint names of its
    inbound links are numbered 0.. — every shard computes the same
    mapping without seeing remote sites, so a sender can stamp the id
    into a ring record and the receiver can index its handler table.
    """
    names: Dict[int, set] = {}
    for spec in specs:
        names.setdefault(spec.dst, set()).add(spec.endpoint)
    ids: Dict[Tuple[int, str], int] = {}
    for dst, endpoint_names in names.items():
        for idx, name in enumerate(sorted(endpoint_names)):
            ids[(dst, name)] = idx
    return ids


@dataclass
class ShardedTestbed:
    """Plan for a multi-site testbed run across kernel shards.

    Produced by :func:`repro.sim.cluster.build_testbed` when called
    with ``sites > 1`` or ``shards > 1``; :meth:`run` executes it —
    in-process when ``shards == 1``, across forked workers otherwise.
    """

    seed: int = 0
    sites: int = 1
    shards: int = 1
    scenario: str = "kernelbench"
    params: Dict[str, Any] = field(default_factory=dict)
    partition: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.partition is None:
            self.partition = block_partition(self.sites, self.shards)
        else:
            self.partition = tuple(self.partition)
            if len(self.partition) != self.sites:
                raise ValueError(
                    f"partition has {len(self.partition)} entries for "
                    f"{self.sites} sites"
                )
            used = set(self.partition)
            if not used <= set(range(self.shards)):
                raise ValueError(
                    f"partition references shards outside "
                    f"[0, {self.shards}): {sorted(used)}"
                )
        block_partition(self.sites, self.shards)  # range validation

    def shard_sites(self, shard: int) -> List[int]:
        """The sites assigned to ``shard``, in site order."""
        return [s for s, p in enumerate(self.partition) if p == shard]

    def run(
        self,
        scenario: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        until: Optional[float] = None,
        collect: Optional[str] = "fingerprint",
        profile_dir: Optional[str] = None,
        deadline_s: Optional[float] = None,
        trace_capacity: Optional[int] = None,
    ):
        """Execute the plan; returns a ``ShardRunResult``.

        ``collect`` is ``"trace"`` (full per-site traces),
        ``"fingerprint"`` (per-site trace hashes only — cheap enough
        to ship between processes) or ``None`` (no tracing; fastest,
        used for timing runs).  ``trace_capacity`` bounds each site's
        tracer to a ring of that many events (default: unbounded, the
        behaviour the golden trajectories pin).
        """
        from repro.sim.shard.runner import run_sharded

        return run_sharded(
            self,
            scenario=scenario,
            params=params,
            until=until,
            collect=collect,
            profile_dir=profile_dir,
            deadline_s=deadline_s,
            trace_capacity=trace_capacity,
        )
