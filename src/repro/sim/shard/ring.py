"""Batched, pickle-free event rings between kernel shards.

Cross-shard boundary messages travel as fixed-size struct-packed
records over one unidirectional OS pipe per directed shard pair — no
pickling on the hot path.  Each record carries:

* ``kind`` — ``MSG`` (a boundary delivery) or ``NULL`` (a pure
  lookahead promise, the conservative-sync "null message");
* routing — source site, destination site, endpoint id, a
  per-channel sequence number;
* ``deliver_time`` — the simulation time the destination endpoint
  fires;
* ``promise`` — the sender's guarantee that no *future* record on
  this channel will deliver earlier than this time (its clock floor
  plus the channel lookahead);
* up to four float payload fields.

The same staging interface exists in-process: when source and
destination sites run in the same worker, :class:`LocalOutbox`
pushes records straight into the destination's :class:`SiteInbox`
with identical (src_site, seq) ordering metadata — which is what
makes N-shard runs trace-identical to single-shard runs.
"""

from __future__ import annotations

import heapq
import os
import select
import struct
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "RECORD",
    "KIND_NULL",
    "KIND_MSG",
    "SiteInbox",
    "LocalOutbox",
    "RouterOutbox",
    "RingOutbox",
    "RingReader",
    "BrokenShardError",
]

#: kind(u8)+pad, src_site, dst_site, endpoint, seq, deliver_time,
#: promise, payload[4] — 72 bytes per record, little-endian.
RECORD = struct.Struct("<Bxxxiiiqdddddd")

#: Byte offsets of the deliver_time / promise fields within a record.
_OFF_DELIVER = 24
_OFF_PROMISE = 32
_F64 = struct.Struct("<d")

KIND_NULL = 0
KIND_MSG = 1

#: Records buffered before an eager flush (batching amortizes the
#: pipe write; a flush also always happens when the shard blocks).
FLUSH_BATCH = 128

Payload = Tuple[float, ...]


def _pad4(payload: Payload) -> Tuple[float, float, float, float]:
    vals = tuple(float(v) for v in payload)[:4]
    return vals + (0.0,) * (4 - len(vals))


class SiteInbox:
    """Pending boundary deliveries for one destination site.

    A heap ordered by ``(deliver_time, src_site, seq)`` — the
    canonical cross-mode delivery order.  Two messages arriving at
    the same instant are handled lower-source-site first, then in
    channel sequence order, regardless of how (or when) the records
    physically arrived.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, int, Payload]] = []

    def push(
        self,
        deliver_time: float,
        src_site: int,
        seq: int,
        endpoint: int,
        payload: Payload,
    ) -> None:
        heapq.heappush(
            self._heap, (deliver_time, src_site, seq, endpoint, payload)
        )

    def peek_time(self) -> float:
        """Earliest pending delivery time (``inf`` when empty)."""
        return self._heap[0][0] if self._heap else float("inf")

    def pop_at(
        self, time: float
    ) -> List[Tuple[float, int, int, int, Payload]]:
        """Remove and return every delivery at exactly ``time``."""
        out = []
        heap = self._heap
        while heap and heap[0][0] == time:
            out.append(heapq.heappop(heap))
        return out

    def __len__(self) -> int:
        return len(self._heap)


class LocalOutbox:
    """In-process staging: records land directly in site inboxes.

    Sequence numbers are assigned per directed *site* pair in send
    order — exactly the numbering :class:`RingOutbox` produces — so
    delivery order is mode-independent.
    """

    __slots__ = ("inboxes", "_seq")

    def __init__(self, inboxes: Dict[int, SiteInbox]):
        self.inboxes = inboxes
        self._seq: Dict[Tuple[int, int], int] = {}

    def emit(
        self,
        dst_site: int,
        deliver_time: float,
        src_site: int,
        endpoint: int,
        payload: Payload,
    ) -> None:
        key = (src_site, dst_site)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        self.inboxes[dst_site].push(
            deliver_time, src_site, seq, endpoint, payload
        )


class RouterOutbox:
    """Splits emissions between local inboxes and a cross-shard ring.

    Worker processes stage boundary sends through one of these: a
    destination site living in the same shard is delivered in-process
    (same as :class:`LocalOutbox`), anything else is struct-packed
    onto the ring for its shard.  Per-site-pair sequence numbering is
    shared across both paths, keeping it identical to the
    single-shard ordering.
    """

    __slots__ = ("inboxes", "ring", "partition", "shard", "_seq")

    def __init__(
        self,
        inboxes: Dict[int, SiteInbox],
        ring: "RingOutbox",
        partition: Tuple[int, ...],
        shard: int,
    ):
        self.inboxes = inboxes
        self.ring = ring
        self.partition = partition
        self.shard = shard
        self._seq: Dict[Tuple[int, int], int] = {}

    def emit(
        self,
        dst_site: int,
        deliver_time: float,
        src_site: int,
        endpoint: int,
        payload: Payload,
    ) -> None:
        key = (src_site, dst_site)
        seq = self._seq.get(key, 0)
        self._seq[key] = seq + 1
        if self.partition[dst_site] == self.shard:
            self.inboxes[dst_site].push(
                deliver_time, src_site, seq, endpoint, payload
            )
        else:
            self.ring.pack(
                self.partition[dst_site],
                KIND_MSG,
                src_site,
                dst_site,
                endpoint,
                seq,
                deliver_time,
                payload,
            )


class RingOutbox:
    """Write side of the per-destination-shard event rings.

    Write fds are non-blocking: when a pipe fills, :meth:`_write`
    invokes ``on_block`` (if set) so the owner can drain its *own*
    in-rings — the peer may itself be blocked writing to us, and
    draining breaks the cycle — then retries until every byte is
    shipped.  Without a callback it simply waits for pipe space.
    """

    __slots__ = ("fds", "bufs", "sent", "on_block")

    def __init__(
        self,
        fds: Dict[int, int],
        on_block: Optional[Callable[[int], None]] = None,
    ):
        #: dst shard -> pipe write fd
        self.fds = fds
        self.bufs: Dict[int, bytearray] = {s: bytearray() for s in fds}
        #: dst shard -> delivered message count (nulls excluded).
        self.sent: Dict[int, int] = {s: 0 for s in fds}
        #: Called with the blocked fd when a pipe write would block.
        self.on_block = on_block
        for fd in fds.values():
            os.set_blocking(fd, False)

    def pack(
        self,
        dst_shard: int,
        kind: int,
        src_site: int,
        dst_site: int,
        endpoint: int,
        seq: int,
        deliver_time: float,
        payload: Payload,
    ) -> None:
        p0, p1, p2, p3 = _pad4(payload)
        self.bufs[dst_shard] += RECORD.pack(
            kind,
            src_site,
            dst_site,
            endpoint,
            seq,
            deliver_time,
            0.0,  # promise stamped at flush time
            p0,
            p1,
            p2,
            p3,
        )
        if kind == KIND_MSG:
            self.sent[dst_shard] += 1
        if len(self.bufs[dst_shard]) >= FLUSH_BATCH * RECORD.size:
            # Oversized batches flush eagerly with a conservative
            # channel bound of -inf (no guarantee about later sends);
            # the next regular flush carries the real promise.
            self._write(dst_shard, float("-inf"))

    def flush(self, promise_for: Callable[[int], float]) -> None:
        """Write out all buffered records, stamping channel promises.

        ``promise_for(dst_shard)`` supplies the current lower bound on
        this shard's future delivery times for that channel; each
        buffered record is stamped with the tightest promise that
        still covers everything *after* it (see :meth:`_write`).
        Channels with no buffered records are skipped — null messages
        are sent separately via :meth:`send_null`.
        """
        for dst_shard, buf in self.bufs.items():
            if buf:
                self._write(dst_shard, promise_for(dst_shard))

    def flush_channel(self, dst_shard: int, promise: float) -> bool:
        """Flush one channel if it has buffered records; returns True if so."""
        if not self.bufs[dst_shard]:
            return False
        self._write(dst_shard, promise)
        return True

    def send_null(self, dst_shard: int, promise: float) -> None:
        """Send a pure lookahead promise on an idle channel."""
        self.bufs[dst_shard] += RECORD.pack(
            KIND_NULL, -1, -1, -1, 0, 0.0, promise, 0.0, 0.0, 0.0, 0.0
        )
        self._write(dst_shard, promise)

    def _write(self, dst_shard: int, bound: float) -> None:
        """Stamp per-record promises and ship the buffered batch.

        ``bound`` is the channel-level lower bound on *future* sends
        (``-inf`` for an eager mid-advance flush).  Pipe writes past
        PIPE_BUF are not atomic, so a reader may observe any prefix
        of this batch; a record's stamped promise must therefore also
        cover the records *after* it in the batch.  Stamping
        backwards, record *i* gets ``min(bound, deliver_time of
        records i+1..n)`` — the tightest promise that cannot ratchet
        the reader past a still-in-flight delivery.
        """
        buf = self.bufs[dst_shard]
        size = RECORD.size
        for off in range(len(buf) - size, -1, -size):
            _F64.pack_into(buf, off + _OFF_PROMISE, bound)
            if buf[off] == KIND_MSG:
                (dt,) = _F64.unpack_from(buf, off + _OFF_DELIVER)
                if dt < bound:
                    bound = dt
        data = memoryview(bytes(buf))
        buf.clear()
        fd = self.fds[dst_shard]
        while data:
            try:
                n = os.write(fd, data)
            except BlockingIOError:
                # Pipe full.  Drain our own in-rings via on_block (the
                # peer may be blocked writing to us) or wait for space.
                if self.on_block is not None:
                    self.on_block(fd)
                else:
                    select.select([], [fd], [])
                continue
            except BrokenPipeError as exc:
                raise BrokenShardError(
                    f"event ring to shard {dst_shard} closed "
                    f"mid-run (worker died?)"
                ) from exc
            data = data[n:]


class RingReader:
    """Read side: decodes records from one source shard's ring."""

    __slots__ = ("src_shard", "fd", "_buf", "promise", "received", "eof")

    def __init__(self, src_shard: int, fd: int, initial_promise: float):
        self.src_shard = src_shard
        self.fd = fd
        os.set_blocking(fd, False)
        self._buf = bytearray()
        #: No delivery from this shard will occur before this time.
        self.promise = initial_promise
        #: Delivered message count (nulls excluded).
        self.received = 0
        self.eof = False

    def drain(self, inboxes: Dict[int, SiteInbox]) -> bool:
        """Consume available bytes; route messages; update promise.

        Returns True if anything (messages or promises) arrived.
        Raises ``BrokenShardError`` on EOF — a peer died mid-run.
        """
        got = False
        while True:
            try:
                chunk = os.read(self.fd, 1 << 16)
            except BlockingIOError:
                break
            if not chunk:
                self.eof = True
                raise BrokenShardError(
                    f"event ring from shard {self.src_shard} closed "
                    f"mid-run (worker died?)"
                )
            self._buf += chunk
            got = True
        buf = self._buf
        size = RECORD.size
        usable = len(buf) - (len(buf) % size)
        for off in range(0, usable, size):
            (
                kind,
                src_site,
                dst_site,
                endpoint,
                seq,
                deliver_time,
                promise,
                p0,
                p1,
                p2,
                p3,
            ) = RECORD.unpack_from(buf, off)
            if promise > self.promise:
                self.promise = promise
            if kind == KIND_MSG:
                inboxes[dst_site].push(
                    deliver_time, src_site, seq, endpoint, (p0, p1, p2, p3)
                )
                self.received += 1
        del buf[:usable]
        return got


class BrokenShardError(RuntimeError):
    """A peer shard's event ring closed unexpectedly."""
