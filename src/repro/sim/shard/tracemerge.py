"""Shard-tagged trace merging and determinism fingerprints.

Each site runs its own :class:`~repro.sim.trace.Tracer`; after a
sharded run the per-site streams are merged into one shard-tagged
timeline and hashed.  The fingerprint is defined purely over
per-site event sequences — ``(site, index, time, category, message,
data)`` — so it is invariant under how sites were packed into worker
processes: a 1-shard and an 8-shard run of the same (seed,
partition) produce the same fingerprint iff every site simulated the
same trajectory.  This is the contract the shard determinism tests
and the kernelbench determinism cross-check pin.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.sim.trace import TraceEvent

__all__ = [
    "site_trace_fingerprint",
    "merged_fingerprint",
    "merge_traces",
]


def site_trace_fingerprint(events: Iterable[TraceEvent]) -> str:
    """SHA-256 over one site's (time, category, message, data) stream.

    Same shape as the golden-trajectory trace hash in
    ``tests/test_determinism.py`` so the two contracts stay
    comparable.
    """
    h = hashlib.sha256()
    for e in events:
        h.update(
            repr(
                (e.time, e.category, e.message, tuple(sorted(e.data.items())))
            ).encode()
        )
    return h.hexdigest()


def merged_fingerprint(site_fingerprints: Sequence[str]) -> str:
    """Combine per-site fingerprints (in site order) into one hash."""
    h = hashlib.sha256()
    for fp in site_fingerprints:
        h.update(fp.encode())
    return h.hexdigest()


def merge_traces(
    site_events: Dict[int, List[TraceEvent]],
) -> List[Tuple[int, TraceEvent]]:
    """One shard-tagged timeline: ``(site, event)`` rows.

    Ordered by (time, site, per-site sequence) — a total order that
    every shard count reproduces identically, since ties across
    *sites* at the same instant are independent (sites only interact
    through positive-latency boundary links) and ties *within* a site
    keep their original emission order.
    """
    rows = []
    for site in sorted(site_events):
        for idx, event in enumerate(site_events[site]):
            rows.append((event.time, site, idx, event))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    return [(site, event) for _, site, _, event in rows]
