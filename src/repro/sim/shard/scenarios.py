"""Scenario definitions for sharded kernel runs.

A :class:`ShardScenario` tells the runner how to build one *site* —
an independent :class:`~repro.sim.kernel.Environment` with its own
model inside — and how sites talk to each other over
:class:`~repro.sim.network.BoundaryLink` topologies.  Scenarios are
looked up by name from :data:`SCENARIOS` so worker processes can
rebuild their sites from ``(scenario, seed, site, params)`` alone —
nothing model-sized ever crosses a process boundary.

Two scenarios ship:

* ``kernelbench`` — the benchmark workload: every site is a full
  SC'04 testbed (8 plants, NFS warehouse, shop) under an open-loop
  Poisson VM-creation stream, with a WAN ring where each site spills
  a fraction of its work to its neighbour.  This is what
  ``vmplants kernelbench`` sweeps across shard counts.
* ``miniring`` — a tiny bare-kernel ring of tickers exchanging
  pings; fast enough for the shard test-suite, with optional fault
  injection (raise or hard-exit at a given site/time) for the
  crash-propagation tests.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from repro.sim.kernel import Environment
from repro.sim.shard.plan import LinkSpec
from repro.sim.trace import trace

__all__ = [
    "SCENARIOS",
    "ShardScenario",
    "register",
    "get_scenario",
    "KernelBenchScenario",
    "MiniRingScenario",
]

#: Name -> scenario instance; workers resolve scenarios from here.
SCENARIOS: Dict[str, "ShardScenario"] = {}


def register(scenario: "ShardScenario") -> "ShardScenario":
    """Add a scenario to the registry (keyed by its ``name``)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> "ShardScenario":
    """Look up a registered scenario by name.

    Scenarios living outside this module self-register on import;
    the ``federation`` and ``megaload`` scenarios are resolved lazily
    so this module never imports the federation package (which
    imports the cluster builder) at load time.
    """
    if name not in SCENARIOS and name == "federation":
        import repro.federation.scenario  # noqa: F401  (self-registers)
    if name not in SCENARIOS and name == "megaload":
        import repro.workloads.megaload  # noqa: F401  (self-registers)
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown shard scenario {name!r}; available: "
            f"{sorted(SCENARIOS)}"
        ) from None


class ShardScenario:
    """How to build and drive one site of a sharded run.

    Subclasses define the inter-site topology (:meth:`link_specs`),
    site construction (:meth:`build_site`), the handlers for inbound
    boundary messages (:meth:`endpoints`), workload start
    (:meth:`start`) and result extraction (:meth:`collect`).  All
    methods must be deterministic functions of their arguments — the
    determinism contract quantifies over (seed, partition, params).
    """

    name = "abstract"

    def resolve(self, params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge user params over the scenario defaults."""
        merged = dict(self.defaults())
        unknown = set(params or ()) - set(merged)
        if unknown:
            raise ValueError(
                f"unknown {self.name} params: {sorted(unknown)}"
            )
        merged.update(params or {})
        return merged

    def defaults(self) -> Dict[str, Any]:
        return {}

    def link_specs(
        self, sites: int, params: Dict[str, Any]
    ) -> List[LinkSpec]:
        """The directed inter-site boundary topology."""
        raise NotImplementedError

    def build_site(
        self,
        env: Environment,
        site: int,
        sites: int,
        seed: int,
        params: Dict[str, Any],
    ):
        """Construct one site's model inside ``env``; returns a handle."""
        raise NotImplementedError

    def endpoints(
        self, handle
    ) -> Dict[str, Callable[[tuple], None]]:
        """Inbound-message handlers, keyed by endpoint name.

        A handler is invoked at the message's delivery time with the
        (4-float) payload; it must not block — spawn a process for
        any follow-on simulation work.
        """
        return {}

    def start(self, handle, links: Dict[str, Any]) -> None:
        """Kick off the site's workload.

        ``links`` maps link-spec names to the constructed
        :class:`~repro.sim.network.BoundaryLink` objects whose
        *source* is this site.
        """
        raise NotImplementedError

    def collect(self, handle) -> Dict[str, Any]:
        """Per-site statistics shipped back to the coordinator."""
        return {}


def site_seed(seed: int, site: int) -> int:
    """Derive one site's RNG seed from the run seed."""
    return seed + site * 100003


# ---------------------------------------------------------------------------
# kernelbench: full testbeds under load, spilling work around a WAN ring
# ---------------------------------------------------------------------------


class _KernelBenchHandle:
    __slots__ = (
        "bed",
        "site",
        "params",
        "times",
        "spill_link",
        "created",
        "destroyed",
        "failed",
        "spills_sent",
        "spills_recv",
        "spill_failed",
    )

    def __init__(self, bed, site: int, params: Dict[str, Any], times):
        self.bed = bed
        self.site = site
        self.params = params
        self.times = times
        self.spill_link = None
        self.created = 0
        self.destroyed = 0
        self.failed = 0
        self.spills_sent = 0
        self.spills_recv = 0
        self.spill_failed = 0


class KernelBenchScenario(ShardScenario):
    """Multi-site grid under open-loop load with neighbour spillover.

    Every site is an independent paper testbed; site *i* forwards
    every ``spill_every``-th successful creation over a WAN boundary
    link to site ``(i+1) % sites``, which provisions a spillover VM
    of its own.  The WAN latency (default 8 simulated seconds) is the
    conservative-sync lookahead — generous relative to the ~50 kernel
    events a single creation costs, so shards spend their time
    simulating, not synchronizing.
    """

    name = "kernelbench"

    def defaults(self) -> Dict[str, Any]:
        return {
            "plants": 8,
            "memory_mb": 32,
            "rate_per_s": 2.0,
            "requests": 160,
            "hold_s": 40.0,
            "spill_every": 5,
            "spill_mb": 4.0,
            "spill_hold_s": 30.0,
            "link_latency_s": 8.0,
            "link_bandwidth_mbps": 25.0,
        }

    def link_specs(
        self, sites: int, params: Dict[str, Any]
    ) -> List[LinkSpec]:
        if sites < 2:
            return []
        return [
            LinkSpec(
                name=f"wan{i}",
                src=i,
                dst=(i + 1) % sites,
                endpoint="spill",
                bandwidth_mbps=params["link_bandwidth_mbps"],
                latency_s=params["link_latency_s"],
            )
            for i in range(sites)
        ]

    def build_site(
        self,
        env: Environment,
        site: int,
        sites: int,
        seed: int,
        params: Dict[str, Any],
    ) -> _KernelBenchHandle:
        from repro.sim.cluster import build_testbed
        from repro.workloads.requests import poisson_arrivals

        bed = build_testbed(
            seed=site_seed(seed, site),
            n_plants=params["plants"],
            env=env,
        )
        times = poisson_arrivals(
            bed.rng,
            params["rate_per_s"],
            params["requests"],
            stream="kernelbench/arrivals",
        )
        return _KernelBenchHandle(bed, site, params, times)

    def endpoints(
        self, handle: _KernelBenchHandle
    ) -> Dict[str, Callable[[tuple], None]]:
        def spill(payload: tuple) -> None:
            handle.spills_recv += 1
            trace(
                handle.bed.env,
                "kernelbench",
                "spill-recv",
                src_site=int(payload[0]),
                req=int(payload[1]),
            )
            handle.bed.env.process(self._spill_vm(handle, payload))

        return {"spill": spill}

    def start(
        self, handle: _KernelBenchHandle, links: Dict[str, Any]
    ) -> None:
        handle.spill_link = links.get(f"wan{handle.site}")
        handle.bed.env.process(self._arrivals(handle))

    def collect(self, handle: _KernelBenchHandle) -> Dict[str, Any]:
        return {
            "created": handle.created,
            "destroyed": handle.destroyed,
            "failed": handle.failed,
            "spills_sent": handle.spills_sent,
            "spills_recv": handle.spills_recv,
            "spill_failed": handle.spill_failed,
            "nfs_mb": float(
                getattr(handle.bed.nfs, "mb_served", 0.0)
            ),
        }

    # -- processes ------------------------------------------------------
    def _arrivals(self, handle: _KernelBenchHandle):
        env = handle.bed.env
        for i, at in enumerate(handle.times):
            if at > env.now:
                yield env.timeout(at - env.now)
            env.process(self._one_vm(handle, i))

    def _one_vm(self, handle: _KernelBenchHandle, i: int):
        from repro.core.errors import ReproError
        from repro.workloads.requests import experiment_request

        bed = handle.bed
        params = handle.params
        request = experiment_request(
            params["memory_mb"],
            domain=f"site{handle.site}.grid",
            client_id=f"s{handle.site}-r{i}",
        )
        try:
            ad = yield from bed.shop.create(request)
        except ReproError:
            handle.failed += 1
            return
        handle.created += 1
        trace(bed.env, "kernelbench", "created", req=i)
        if (
            handle.spill_link is not None
            and handle.created % params["spill_every"] == 0
        ):
            handle.spills_sent += 1
            handle.spill_link.send(
                payload=(handle.site, i),
                size_mb=params["spill_mb"],
            )
        yield bed.env.timeout(params["hold_s"])
        yield from bed.shop.destroy(str(ad["vmid"]))
        handle.destroyed += 1

    def _spill_vm(self, handle: _KernelBenchHandle, payload: tuple):
        from repro.core.errors import ReproError
        from repro.workloads.requests import experiment_request

        bed = handle.bed
        params = handle.params
        request = experiment_request(
            params["memory_mb"],
            domain="spill.grid",
            client_id=f"spill-{int(payload[0])}-{int(payload[1])}",
        )
        try:
            ad = yield from bed.shop.create(request)
        except ReproError:
            handle.spill_failed += 1
            return
        yield bed.env.timeout(params["spill_hold_s"])
        yield from bed.shop.destroy(str(ad["vmid"]))


# ---------------------------------------------------------------------------
# miniring: bare-kernel tickers with pings (test scenario)
# ---------------------------------------------------------------------------


class _MiniRingHandle:
    __slots__ = (
        "env",
        "site",
        "params",
        "ping_link",
        "ticks_done",
        "pings_sent",
        "pings_recv",
    )

    def __init__(self, env: Environment, site: int, params: Dict[str, Any]):
        self.env = env
        self.site = site
        self.params = params
        self.ping_link = None
        self.ticks_done = 0
        self.pings_sent = 0
        self.pings_recv = 0


class MiniRingScenario(ShardScenario):
    """Tickers on a ring exchanging pings — the shard test scenario.

    Each site ticks at exact integer multiples of ``tick_s`` (handy
    for ``until``-boundary tests) and pings its ring neighbour every
    ``ping_every`` ticks.  ``crash_site``/``crash_at`` raise a
    ``RuntimeError`` inside that site's simulation; ``hard_exit_site``
    kills the whole worker process with ``os._exit`` — both feed the
    crash-propagation tests.
    """

    name = "miniring"

    def defaults(self) -> Dict[str, Any]:
        return {
            "ticks": 48,
            "tick_s": 1.0,
            "ping_every": 4,
            "ping_mb": 1.0,
            "link_latency_s": 2.0,
            "link_bandwidth_mbps": 10.0,
            "crash_site": None,
            "crash_at": None,
            "hard_exit_site": None,
            "hard_exit_at": None,
        }

    def link_specs(
        self, sites: int, params: Dict[str, Any]
    ) -> List[LinkSpec]:
        if sites < 2:
            return []
        return [
            LinkSpec(
                name=f"ring{i}",
                src=i,
                dst=(i + 1) % sites,
                endpoint="ping",
                bandwidth_mbps=params["link_bandwidth_mbps"],
                latency_s=params["link_latency_s"],
            )
            for i in range(sites)
        ]

    def build_site(
        self,
        env: Environment,
        site: int,
        sites: int,
        seed: int,
        params: Dict[str, Any],
    ) -> _MiniRingHandle:
        return _MiniRingHandle(env, site, params)

    def endpoints(
        self, handle: _MiniRingHandle
    ) -> Dict[str, Callable[[tuple], None]]:
        def ping(payload: tuple) -> None:
            handle.pings_recv += 1
            trace(
                handle.env,
                "miniring",
                "ping-recv",
                src_site=int(payload[0]),
                tick=int(payload[1]),
            )
            # Follow-on local work triggered by the boundary message:
            # its trajectory differs if delivery timing ever drifts.
            handle.env.process(self._pong(handle, payload))

        return {"ping": ping}

    def start(
        self, handle: _MiniRingHandle, links: Dict[str, Any]
    ) -> None:
        handle.ping_link = links.get(f"ring{handle.site}")
        handle.env.process(self._ticker(handle))

    def collect(self, handle: _MiniRingHandle) -> Dict[str, Any]:
        return {
            "ticks_done": handle.ticks_done,
            "pings_sent": handle.pings_sent,
            "pings_recv": handle.pings_recv,
        }

    # -- processes ------------------------------------------------------
    def _ticker(self, handle: _MiniRingHandle):
        env = handle.env
        params = handle.params
        for tick in range(1, params["ticks"] + 1):
            yield env.timeout(params["tick_s"] * tick - env.now)
            handle.ticks_done += 1
            trace(env, "miniring", "tick", n=tick)
            if (
                params["crash_site"] == handle.site
                and params["crash_at"] is not None
                and env.now >= params["crash_at"]
            ):
                raise RuntimeError(
                    f"injected miniring crash at site {handle.site} "
                    f"t={env.now}"
                )
            if (
                params["hard_exit_site"] == handle.site
                and params["hard_exit_at"] is not None
                and env.now >= params["hard_exit_at"]
            ):
                os._exit(3)
            if (
                handle.ping_link is not None
                and tick % params["ping_every"] == 0
            ):
                handle.pings_sent += 1
                handle.ping_link.send(
                    payload=(handle.site, tick),
                    size_mb=params["ping_mb"],
                )

    def _pong(self, handle: _MiniRingHandle, payload: tuple):
        yield handle.env.timeout(0.25)
        trace(
            handle.env,
            "miniring",
            "pong",
            src_site=int(payload[0]),
            tick=int(payload[1]),
        )


register(KernelBenchScenario())
register(MiniRingScenario())
