"""Discrete-event simulation substrate for the VMPlants reproduction.

This package provides the deterministic event-driven kernel
(:mod:`repro.sim.kernel`), shared-resource primitives
(:mod:`repro.sim.resources`), named random-number streams
(:mod:`repro.sim.rng`), and on top of those a model of the SC'04
experimental testbed: bandwidth-shared networks
(:mod:`repro.sim.network`), physical hosts with a memory-pressure model
(:mod:`repro.sim.host`), the NFS warehouse server
(:mod:`repro.sim.storage`), simulated VMware/UML production lines
(:mod:`repro.sim.hypervisor`), and the cluster builder
(:mod:`repro.sim.cluster`).
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Container, Resource, Store
from repro.sim.rng import RngHub
from repro.sim.trace import TraceEvent, Tracer, trace

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "RngHub",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceEvent",
    "Tracer",
    "trace",
]
