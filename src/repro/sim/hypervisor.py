"""Simulated production lines: VMware GSX and User-Mode Linux.

These implement the :class:`~repro.plant.production.ProductionLine`
interface against the simulated testbed (host + NFS substrate) with
the calibrated :class:`~repro.sim.latency.LatencyModel`:

* :class:`VMwareLine` clones by replicating the VM configuration
  file, base redo log and suspended **memory state** from the NFS
  warehouse (the virtual disk is soft-linked in LINK mode, fully
  copied in COPY mode) and then *resumes* the clone — the paper's
  non-persistent-disk mechanism whose cost grows with memory size and
  host memory pressure;
* :class:`UMLLine` clones a copy-on-write root file system and then
  *boots* the guest, which dominates its ~76 s instantiation time.

Guest configuration follows the CD-ROM path of Section 4.1: build an
ISO with the rendered script, connect it, let the guest daemon mount
and execute, and collect outputs.

Failure injection (``clone_failure_prob``, ``action_failure_prob``)
models the small number of unsuccessful creations the paper reports
(121/128 and 124/128 successes for the 32/64 MB runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.core.actions import Action, ActionResult, ActionScope, ActionStatus
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest
from repro.plant.guest import build_iso, fabricate_outputs
from repro.plant.production import (
    CloneMode,
    ProductionLine,
    VirtualMachine,
)
from repro.plant.warehouse import GoldenImage
from repro.sim.host import PhysicalHost
from repro.sim.kernel import Environment
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel
from repro.sim.rng import RngHub
from repro.sim.storage import NFSServer
from repro.sim.trace import trace

__all__ = ["CloneRecord", "SimBackend", "VMwareLine", "UMLLine"]


@dataclass(frozen=True, slots=True)
class CloneRecord:
    """Per-clone timing breakdown harvested by the experiments."""

    vmid: str
    vm_type: str
    memory_mb: int
    clone_mode: str
    started_at: float
    copy_time: float
    resume_time: float
    total_time: float
    #: Host memory-pressure factor in effect during the resume.
    pressure: float
    #: VMs already on the host when this clone started.
    host_vms_before: int
    #: Where the per-clone state came from: ``"nfs"`` (warehouse
    #: transfer), ``"coalesced"`` (shared an in-flight transfer),
    #: ``"host-cache"`` (warm host LRU cache), ``"line-cache"``
    #: (the legacy per-line replica ablation), ``"peer"`` (one hop of
    #: a distribution tree) or ``"local"`` (peer store already seeded
    #: by the placer or an earlier tree delivery).
    copy_source: str = "nfs"


@dataclass(slots=True)
class SimBackend:
    """Line-private state of a simulated VM instance."""

    host: PhysicalHost
    guest_mb: float
    #: Private redo-log growth (MB), fed by guest actions.
    redo_mb: float = 0.0
    running: bool = False


class _SimLine(ProductionLine):
    """Shared machinery of the simulated lines."""

    vm_type = "sim"

    def __init__(
        self,
        env: Environment,
        host: PhysicalHost,
        nfs: NFSServer,
        rng: Optional[RngHub] = None,
        latency: LatencyModel = DEFAULT_LATENCY,
        clone_failure_prob: float = 0.0,
        action_failure_prob: float = 0.0,
        admission_overcommit: float = 2.0,
        local_state_cache: bool = False,
        coalesce_transfers: bool = False,
        distribution=None,
    ):
        if not 0.0 <= clone_failure_prob < 1.0:
            raise ValueError("clone_failure_prob must be in [0, 1)")
        if not 0.0 <= action_failure_prob < 1.0:
            raise ValueError("action_failure_prob must be in [0, 1)")
        self.env = env
        self.host = host
        self.nfs = nfs
        self.rng = rng or RngHub(0)
        self.latency = latency
        self.clone_failure_prob = clone_failure_prob
        self.action_failure_prob = action_failure_prob
        self.admission_overcommit = admission_overcommit
        #: Keep a local replica of each golden machine's per-clone
        #: state after the first clone (an optimization the paper's
        #: NFS-per-clone design invites; off for paper reproduction).
        self.local_state_cache = local_state_cache
        #: Share in-flight warehouse transfers per (host, image)?
        self.coalesce_transfers = coalesce_transfers
        #: Optional peer-tree planner
        #: (:class:`repro.distribution.DistributionPlanner`); when set,
        #: LINK-mode state rides the broadcast tree instead of the
        #: star-topology warehouse pull.
        self.distribution = distribution
        self._cached_images: set = set()
        self.clone_records: List[CloneRecord] = []
        #: vmid → guest MB admitted but not yet running (in-flight
        #: clones); lets :meth:`abort` release exactly once.
        self._admitted: Dict[str, float] = {}
        #: Guest-daemon hang fault: actions starting before this
        #: simulated time stall until it passes (0 = no hang).
        self.hang_until = 0.0

    # -- helpers ----------------------------------------------------------
    def _jitter(self, stream: str, sigma: Optional[float] = None) -> float:
        sigma = self.latency.op_jitter_sigma if sigma is None else sigma
        return self.rng.lognormal(
            f"{self.host.name}/{self.vm_type}/{stream}", 0.0, sigma
        )

    def _check_host(self) -> None:
        """Abort the current production stage if the host has crashed."""
        if self.host.down:
            raise PlantError(
                f"host {self.host.name} is down ({self.vm_type} line)"
            )

    # -- fault injection -----------------------------------------------------
    def host_crashed(self) -> None:
        """React to the host crashing: local disk state is gone."""
        self.host.crash()
        self._cached_images.clear()
        if self.host.state_cache is not None:
            self.host.state_cache.clear()
        if self.distribution is not None:
            # Peers mid-fetch from this host fall back down the
            # recovery ladder (idempotent for multi-line hosts).
            self.distribution.on_host_crashed(self.host)
        self.hang_until = 0.0

    def host_recovered(self) -> None:
        """React to the host coming back up."""
        self.host.restore()

    def abort(self, vm: VirtualMachine) -> bool:
        """Synchronously release a VM's host memory (crash/abort path).

        Idempotent: covers both a running backend and an in-flight
        admission; returns True when memory was actually released.
        """
        backend: Optional[SimBackend] = vm.backend
        if backend is not None and backend.running:
            backend.running = False
            self.host.release_vm(backend.guest_mb)
            return True
        admitted = self._admitted.pop(vm.vmid, None)
        if admitted is not None:
            self.host.release_vm(admitted)
            return True
        return False

    def _admit(self, vm: VirtualMachine) -> None:
        """Admit an in-flight clone's memory, tracked for abort."""
        self._check_host()
        self.host.admit_vm(vm.memory_mb)
        self._admitted[vm.vmid] = vm.memory_mb

    def _release_admitted(self, vm: VirtualMachine) -> None:
        """Release a failed in-flight clone's memory (exactly once)."""
        admitted = self._admitted.pop(vm.vmid, None)
        if admitted is not None:
            self.host.release_vm(admitted)

    def can_host(self, request: CreateRequest) -> bool:
        """Admit while committed memory stays under the overcommit cap."""
        after = (
            self.host.committed_guest_mb + request.hardware.memory_mb
        )
        return after <= self.admission_overcommit * self.host.memory_mb

    def full_copy_time_estimate(self, image: GoldenImage) -> float:
        """Nominal seconds to copy the image's full disk (no sharing)."""
        lat = self.latency
        network = (
            image.disk_state_mb / lat.nfs_link_mbps
            + image.disk_files * lat.nfs_request_overhead_s
        )
        write = image.disk_state_mb / lat.host_disk_write_mbps
        return max(network, write)

    # -- common clone machinery -----------------------------------------------
    def _copy_clone_state(
        self, image: GoldenImage, mode: CloneMode
    ) -> Generator:
        """Replicate per-clone state from the warehouse.

        Returns ``(seconds, source)`` where ``source`` records which
        path served the bytes (see :class:`CloneRecord.copy_source`).
        LINK-mode state can come from the legacy per-line replica, the
        host's LRU golden-state cache, or a coalesced in-flight
        transfer; the default configuration always takes the plain
        warehouse transfer, exactly as the paper measures.
        """
        start = self.env.now
        payload = image.clone_payload_mb
        files = 3 if image.memory_state_mb > 0 else 2
        if mode is CloneMode.COPY:
            payload += image.disk_state_mb
            files += image.disk_files
        cache = self.host.state_cache if mode is CloneMode.LINK else None
        if (
            self.local_state_cache
            and mode is CloneMode.LINK
            and image.image_id in self._cached_images
        ):
            # Replicate from the node-local replica: a read + write on
            # the local disk, no NFS traffic.
            yield from self.host.disk_read(payload)
            yield from self.host.disk_write(payload)
            return self.env.now - start, "line-cache"
        if cache is not None and cache.lookup(image.image_id):
            # Warm host cache: the state is already on the local disk.
            yield from self.host.disk_read(payload)
            yield from self.host.disk_write(payload)
            return self.env.now - start, "host-cache"
        if self.distribution is not None and mode is CloneMode.LINK:
            # Peer broadcast tree: nearest seeded peer, else attach to
            # an in-flight delivery, else seed from the warehouse.
            # The planner seeds the host cache itself on success.
            source = yield from self.distribution.fetch(
                self.host, image.image_id, payload, files=files
            )
            self._cached_images.add(image.image_id)
            return self.env.now - start, source
        if self.coalesce_transfers:
            source = yield from self.nfs.copy_to_host_coalesced(
                (self.host.name, image.image_id, mode.value),
                payload,
                self.host,
                files=files,
            )
        else:
            yield from self.nfs.copy_to_host(
                payload, self.host, files=files
            )
            source = "nfs"
        self._cached_images.add(image.image_id)
        if cache is not None:
            cache.insert(image.image_id, payload)
        # Soft-link creation for the shared base disk is effectively free.
        return self.env.now - start, source

    def _maybe_fail_clone(self, vm: VirtualMachine) -> None:
        # Memory release on failure happens in the clone wrapper
        # (one release path for injected faults, coin-flip failures
        # and interrupts alike).
        draw = self.rng.uniform(
            f"{self.host.name}/{self.vm_type}/clone-fail", 0.0, 1.0
        )
        if draw < self.clone_failure_prob:
            raise PlantError(
                f"{self.vm_type} clone of {vm.vmid} failed to "
                f"{'resume' if self.vm_type == 'vmware' else 'boot'}"
            )

    # -- configuration path ---------------------------------------------------
    def execute_action(
        self,
        vm: VirtualMachine,
        action: Action,
        context: Dict[str, str],
    ) -> Generator:
        lat = self.latency
        if self.hang_until > self.env.now:
            # Guest-daemon hang fault: the action stalls until the
            # hang window passes (zero events when no fault is set).
            yield self.env.timeout(self.hang_until - self.env.now)
        self._check_host()
        start = self.env.now
        if action.scope is ActionScope.HOST:
            # Host-side operation (virtual device setup etc.).
            yield self.env.timeout(0.3 * self._jitter(f"host-op/{action.name}"))
        else:
            iso = build_iso(action, context)
            yield self.env.timeout(lat.iso_build_s * self._jitter("iso-build"))
            yield self.env.timeout(
                lat.iso_connect_s * self._jitter("iso-connect")
            )
            yield self.env.timeout(
                lat.guest_mount_s * self._jitter("guest-mount")
            )
            # Script execution inside the guest; writes go to the
            # private redo log.
            script_time = lat.guest_script_mean_s * self._jitter(
                f"script/{action.name}", lat.script_jitter_sigma
            )
            yield self.env.timeout(script_time)
            backend: SimBackend = vm.backend
            backend.redo_mb += iso.size_mb * 0.1 + 0.5

        draw = self.rng.uniform(
            f"{self.host.name}/{self.vm_type}/action-fail/{action.name}",
            0.0,
            1.0,
        )
        duration = self.env.now - start
        if draw < self.action_failure_prob:
            return ActionResult(
                action=action.name,
                status=ActionStatus.FAILED,
                duration=duration,
                message="guest script returned non-zero exit status",
            )
        outputs = fabricate_outputs(action, context)
        return ActionResult(
            action=action.name,
            status=ActionStatus.OK,
            outputs=tuple(sorted(outputs.items())),
            stdout="",
            duration=duration,
        )

    def collect(self, vm: VirtualMachine) -> Generator:
        """Power off, discard the redo log, release host memory."""
        yield self.env.timeout(0.5 * self._jitter("collect"))
        backend: Optional[SimBackend] = vm.backend
        if backend is not None and backend.running:
            backend.running = False
            self.host.release_vm(backend.guest_mb)

    # -- migration (Section 6 future work) -------------------------------------
    def supports_migration(self) -> bool:
        return True

    def suspend(self, vm: VirtualMachine) -> Generator:
        """Checkpoint the running VM: write its memory state to disk."""
        backend: SimBackend = vm.backend
        if backend is None or not backend.running:
            raise PlantError(f"VM {vm.vmid} is not running on this line")
        yield self.env.timeout(
            self.latency.migrate_suspend_fixed_s
            * self._jitter("migrate-suspend")
        )
        yield from self.host.disk_write(backend.guest_mb)

    def migration_payload_mb(self, vm: VirtualMachine) -> float:
        """Memory state + private redo log + configuration file."""
        backend: SimBackend = vm.backend
        return backend.guest_mb + backend.redo_mb + vm.image.config_mb

    def export_release(self, vm: VirtualMachine) -> Generator:
        """Hand off the suspended state; free this host's memory."""
        backend: SimBackend = vm.backend
        yield from self.host.disk_read(backend.guest_mb + backend.redo_mb)
        backend.running = False
        self.host.release_vm(backend.guest_mb)
        return {"redo_mb": backend.redo_mb}

    def receive(self, vm: VirtualMachine, state: Dict) -> Generator:
        """Adopt the transferred state and resume on this host."""
        self.host.admit_vm(vm.memory_mb)
        redo_mb = float(state.get("redo_mb", 0.0))
        yield from self.host.disk_write(vm.memory_mb + redo_mb)
        pressure = self.host.pressure_factor()
        resume_base = (
            self.latency.migrate_resume_fixed_s
            + vm.memory_mb / self.latency.vmware_resume_mbps
        )
        yield self.env.timeout(
            resume_base * pressure * self._jitter("migrate-resume")
        )
        vm.backend = SimBackend(
            host=self.host,
            guest_mb=vm.memory_mb,
            redo_mb=redo_mb,
            running=True,
        )
        trace(
            self.env, "line", "migrated-in",
            vmid=vm.vmid, host=self.host.name,
        )


class VMwareLine(_SimLine):
    """Suspended-state cloning with resume (VMware GSX model)."""

    vm_type = "vmware"

    def clone(
        self, vm: VirtualMachine, mode: CloneMode = CloneMode.LINK
    ) -> Generator:
        image = vm.image
        started = self.env.now
        before = self.host.vm_count
        self._admit(vm)

        try:
            copy_time, copy_source = yield from self._copy_clone_state(
                image, mode
            )

            lat = self.latency
            yield self.env.timeout(
                lat.vmware_clone_fixed_s * self._jitter("clone-fixed")
            )

            # Resume the suspended clone: GSX re-reads the memory image,
            # slowed by host memory pressure.
            pressure = self.host.pressure_factor()
            resume_start = self.env.now
            resume_base = (
                lat.vmware_resume_fixed_s
                + image.memory_state_mb / lat.vmware_resume_mbps
            )
            yield self.env.timeout(
                resume_base * pressure * self._jitter("resume")
            )
            self._check_host()
            self._maybe_fail_clone(vm)
        except BaseException:
            self._release_admitted(vm)
            raise
        resume_time = self.env.now - resume_start

        self._admitted.pop(vm.vmid, None)
        vm.backend = SimBackend(
            host=self.host, guest_mb=vm.memory_mb, running=True
        )
        self.clone_records.append(
            CloneRecord(
                vmid=vm.vmid,
                vm_type=self.vm_type,
                memory_mb=vm.memory_mb,
                clone_mode=mode.value,
                started_at=started,
                copy_time=copy_time,
                resume_time=resume_time,
                total_time=self.env.now - started,
                pressure=pressure,
                host_vms_before=before,
                copy_source=copy_source,
            )
        )
        trace(
            self.env, "line", "cloned",
            vmid=vm.vmid, host=self.host.name,
            pressure=round(pressure, 2),
        )


class UMLLine(_SimLine):
    """Copy-on-write cloning with full guest boot (UML model)."""

    vm_type = "uml"

    def clone(
        self, vm: VirtualMachine, mode: CloneMode = CloneMode.LINK
    ) -> Generator:
        image = vm.image
        started = self.env.now
        before = self.host.vm_count
        self._admit(vm)

        try:
            copy_time, copy_source = yield from self._copy_clone_state(
                image, mode
            )
            lat = self.latency
            yield self.env.timeout(
                lat.uml_cow_setup_s * self._jitter("cow-setup")
            )

            # With an SBUML snapshot (memory state present) the clone
            # resumes from checkpoint; otherwise it boots from the CoW
            # file system — the dominant cost in the prototype.
            pressure = self.host.pressure_factor()
            boot_start = self.env.now
            if image.memory_state_mb > 0:
                resume_base = (
                    lat.uml_resume_fixed_s
                    + image.memory_state_mb / lat.uml_resume_mbps
                )
                yield self.env.timeout(
                    resume_base * pressure * self._jitter("sbuml-resume")
                )
            else:
                yield self.env.timeout(
                    lat.uml_boot_fixed_s * pressure * self._jitter("boot")
                )
            self._check_host()
            self._maybe_fail_clone(vm)
        except BaseException:
            self._release_admitted(vm)
            raise
        boot_time = self.env.now - boot_start

        self._admitted.pop(vm.vmid, None)
        vm.backend = SimBackend(
            host=self.host, guest_mb=vm.memory_mb, running=True
        )
        self.clone_records.append(
            CloneRecord(
                vmid=vm.vmid,
                vm_type=self.vm_type,
                memory_mb=vm.memory_mb,
                clone_mode=mode.value,
                started_at=started,
                copy_time=copy_time,
                resume_time=boot_time,
                total_time=self.env.now - started,
                pressure=pressure,
                host_vms_before=before,
                copy_source=copy_source,
            )
        )
