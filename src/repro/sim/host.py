"""Physical host model: memory accounting, pressure, local disk.

Each cluster node (dual-P4, 1.5 GB RAM in the paper's testbed) hosts
one VMPlant and its clones.  Two mechanisms matter for the measured
behaviour:

* **memory pressure** — once committed VM memory (guest sizes plus a
  per-VM VMM overhead and the host OS reserve) exceeds a threshold
  fraction of physical memory, memory-intensive operations (state
  copies, resume) slow down linearly, reproducing the load-dependent
  cloning-time growth of Figure 6;
* **local disk bandwidth** — clone state is written to, and resumed
  from, the node's SCSI disk.
"""

from __future__ import annotations

from typing import Generator

from repro.core.errors import PlantError
from repro.sim.kernel import Environment
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel

__all__ = ["PhysicalHost"]


class PhysicalHost:
    """One cluster node."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory_mb: float = 1536.0,
        cpus: int = 2,
        latency: LatencyModel = DEFAULT_LATENCY,
    ):
        if memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if cpus <= 0:
            raise ValueError("cpus must be positive")
        self.env = env
        self.name = name
        self.memory_mb = memory_mb
        self.cpus = cpus
        self.latency = latency
        #: Guest memory of admitted VMs (MB), excluding overheads.
        self.committed_guest_mb = 0.0
        self.vm_count = 0

    # -- memory accounting ---------------------------------------------------
    def admit_vm(self, guest_mb: float) -> None:
        """Account for a new VM's memory footprint."""
        if guest_mb <= 0:
            raise PlantError(f"host {self.name}: bad guest size {guest_mb}")
        self.committed_guest_mb += guest_mb
        self.vm_count += 1

    def release_vm(self, guest_mb: float) -> None:
        """Return a collected VM's memory."""
        if self.vm_count <= 0 or self.committed_guest_mb < guest_mb - 1e-9:
            raise PlantError(
                f"host {self.name}: releasing more memory than committed"
            )
        self.committed_guest_mb -= guest_mb
        self.vm_count -= 1

    def utilization(self, extra_mb: float = 0.0) -> float:
        """Committed fraction of physical memory (incl. overheads)."""
        lat = self.latency
        used = (
            lat.host_os_reserve_mb
            + self.committed_guest_mb
            + lat.vmm_overhead_per_vm_mb * self.vm_count
            + extra_mb
        )
        return used / self.memory_mb

    def pressure_factor(self, extra_mb: float = 0.0) -> float:
        """Slowdown multiplier for memory-intensive operations (≥ 1)."""
        util = self.utilization(extra_mb)
        lat = self.latency
        if util <= lat.pressure_threshold:
            return 1.0
        return 1.0 + lat.pressure_slope * (util - lat.pressure_threshold)

    # -- local disk -------------------------------------------------------------
    def disk_write(self, size_mb: float, pressured: bool = True) -> Generator:
        """Write ``size_mb`` to the node's local disk."""
        factor = self.pressure_factor() if pressured else 1.0
        yield self.env.timeout(
            size_mb / self.latency.host_disk_write_mbps * factor
        )

    def disk_read(self, size_mb: float, pressured: bool = True) -> Generator:
        """Read ``size_mb`` from the node's local disk."""
        factor = self.pressure_factor() if pressured else 1.0
        yield self.env.timeout(
            size_mb / self.latency.host_disk_read_mbps * factor
        )

    def __repr__(self) -> str:
        return (
            f"<PhysicalHost {self.name} vms={self.vm_count}"
            f" util={self.utilization():.2f}>"
        )
