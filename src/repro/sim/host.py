"""Physical host model: memory accounting, pressure, local disk.

Each cluster node (dual-P4, 1.5 GB RAM in the paper's testbed) hosts
one VMPlant and its clones.  Two mechanisms matter for the measured
behaviour:

* **memory pressure** — once committed VM memory (guest sizes plus a
  per-VM VMM overhead and the host OS reserve) exceeds a threshold
  fraction of physical memory, memory-intensive operations (state
  copies, resume) slow down linearly, reproducing the load-dependent
  cloning-time growth of Figure 6;
* **local disk bandwidth** — clone state is written to, and resumed
  from, the node's SCSI disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Generator, Optional

from repro.core.errors import PlantError
from repro.sim.kernel import Environment
from repro.sim.latency import DEFAULT_LATENCY, LatencyModel

__all__ = ["HostStateCache", "PhysicalHost"]


class HostStateCache:
    """LRU cache of golden per-clone state on a host's local disk.

    Models the paper's warm-NFS-cache effect (Section 5): once a
    golden machine's configuration file, base redo log and suspended
    memory state have been pulled to a node, repeat clones of that
    image replicate them from the local disk instead of re-crossing
    the shared NFS link.  The cache is bounded by ``capacity_mb`` and
    evicts least-recently-cloned images first.

    The peer-distribution layer (``repro.distribution``) serves cached
    state to other hosts straight off this disk, so an entry may be
    :meth:`pin`-ned while a peer transfer reads it: pinned entries are
    skipped by the eviction scan (the next-least-recent unpinned entry
    goes instead), and an insert that cannot make room without
    touching a pinned entry is refused.  With no pins outstanding —
    every configuration without the distribution layer — behaviour is
    bit-identical to the plain LRU.
    """

    __slots__ = (
        "capacity_mb",
        "used_mb",
        "_entries",
        "_pins",
        "hits",
        "misses",
        "evictions",
        "eviction_refusals",
    )

    def __init__(self, capacity_mb: float):
        if capacity_mb <= 0:
            raise ValueError("capacity_mb must be positive")
        self.capacity_mb = capacity_mb
        self.used_mb = 0.0
        #: image_id → cached state size (MB), LRU-ordered (MRU last).
        self._entries: "OrderedDict[str, float]" = OrderedDict()
        #: image_id → outstanding pin count (in-progress peer serves).
        self._pins: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Inserts refused because only pinned entries were evictable.
        self.eviction_refusals = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._entries

    def lookup(self, image_id: str) -> bool:
        """Is the image's clone state cached?  Counts and touches."""
        if image_id in self._entries:
            self._entries.move_to_end(image_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, image_id: str, size_mb: float) -> bool:
        """Admit (or refresh) an image; evicts LRU entries to fit.

        Returns False when the state is larger than the whole budget
        (it is not admitted — full-disk COPY payloads usually are).
        """
        if size_mb < 0:
            raise ValueError("size_mb must be non-negative")
        if size_mb > self.capacity_mb:
            return False
        previous = self._entries.pop(image_id, None)
        if previous is not None:
            self.used_mb -= previous
        while self.used_mb + size_mb > self.capacity_mb and self._entries:
            if not self._pins:
                victim, evicted_mb = self._entries.popitem(last=False)
            else:
                victim = next(
                    (
                        k
                        for k in self._entries
                        if not self._pins.get(k)
                    ),
                    None,
                )
                if victim is None:
                    # Every remaining entry is mid-serve: refuse the
                    # insert rather than yank bytes out from under a
                    # peer transfer (restore any refreshed entry).
                    self.eviction_refusals += 1
                    if previous is not None:
                        self._entries[image_id] = previous
                        self.used_mb += previous
                    return False
                evicted_mb = self._entries.pop(victim)
            self.used_mb -= evicted_mb
            self.evictions += 1
        self._entries[image_id] = size_mb
        self.used_mb += size_mb
        return True

    # -- peer-serve pinning ----------------------------------------------
    def pin(self, image_id: str) -> None:
        """Protect an entry from eviction while a peer serve reads it."""
        self._pins[image_id] = self._pins.get(image_id, 0) + 1

    def unpin(self, image_id: str) -> None:
        """Drop one pin (missing entries are ignored: a crash may have
        cleared the cache while the serve was unwinding)."""
        count = self._pins.get(image_id)
        if count is None:
            return
        if count <= 1:
            del self._pins[image_id]
        else:
            self._pins[image_id] = count - 1

    def pinned(self, image_id: str) -> bool:
        """Is the entry currently protected by an in-progress serve?"""
        return bool(self._pins.get(image_id))

    def clear(self) -> int:
        """Drop every cached entry (host crash: local disk state is
        gone); returns how many entries were invalidated."""
        dropped = len(self._entries)
        self._entries.clear()
        self._pins.clear()
        self.used_mb = 0.0
        return dropped

    def __repr__(self) -> str:
        return (
            f"<HostStateCache {self.used_mb:.0f}/{self.capacity_mb:.0f}MB"
            f" entries={len(self._entries)} hits={self.hits}>"
        )


class PhysicalHost:
    """One cluster node."""

    def __init__(
        self,
        env: Environment,
        name: str,
        memory_mb: float = 1536.0,
        cpus: int = 2,
        latency: LatencyModel = DEFAULT_LATENCY,
        state_cache: Optional[HostStateCache] = None,
    ):
        if memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if cpus <= 0:
            raise ValueError("cpus must be positive")
        self.env = env
        self.name = name
        self.memory_mb = memory_mb
        self.cpus = cpus
        self.latency = latency
        #: Optional LRU golden-state cache shared by this host's
        #: production lines (None = paper behaviour, every clone pays
        #: the warehouse transfer).
        self.state_cache = state_cache
        #: Guest memory of admitted VMs (MB), excluding overheads.
        self.committed_guest_mb = 0.0
        self.vm_count = 0
        #: Crash state (fault injection): production stages abort
        #: while the host is down.
        self.down = False
        self.crashes = 0

    # -- fault injection -----------------------------------------------------
    def crash(self) -> None:
        """Mark the node as crashed (resident VMs die with it)."""
        if not self.down:
            self.down = True
            self.crashes += 1

    def restore(self) -> None:
        """Bring the node back after a crash."""
        self.down = False

    # -- memory accounting ---------------------------------------------------
    def admit_vm(self, guest_mb: float) -> None:
        """Account for a new VM's memory footprint."""
        if guest_mb <= 0:
            raise PlantError(f"host {self.name}: bad guest size {guest_mb}")
        self.committed_guest_mb += guest_mb
        self.vm_count += 1

    def release_vm(self, guest_mb: float) -> None:
        """Return a collected VM's memory."""
        if self.vm_count <= 0 or self.committed_guest_mb < guest_mb - 1e-9:
            raise PlantError(
                f"host {self.name}: releasing more memory than committed"
            )
        self.committed_guest_mb -= guest_mb
        self.vm_count -= 1

    def utilization(self, extra_mb: float = 0.0) -> float:
        """Committed fraction of physical memory (incl. overheads)."""
        lat = self.latency
        used = (
            lat.host_os_reserve_mb
            + self.committed_guest_mb
            + lat.vmm_overhead_per_vm_mb * self.vm_count
            + extra_mb
        )
        return used / self.memory_mb

    def pressure_factor(self, extra_mb: float = 0.0) -> float:
        """Slowdown multiplier for memory-intensive operations (≥ 1)."""
        util = self.utilization(extra_mb)
        lat = self.latency
        if util <= lat.pressure_threshold:
            return 1.0
        return 1.0 + lat.pressure_slope * (util - lat.pressure_threshold)

    # -- local disk -------------------------------------------------------------
    def disk_write(self, size_mb: float, pressured: bool = True) -> Generator:
        """Write ``size_mb`` to the node's local disk."""
        factor = self.pressure_factor() if pressured else 1.0
        yield self.env.timeout(
            size_mb / self.latency.host_disk_write_mbps * factor
        )

    def disk_read(self, size_mb: float, pressured: bool = True) -> Generator:
        """Read ``size_mb`` from the node's local disk."""
        factor = self.pressure_factor() if pressured else 1.0
        yield self.env.timeout(
            size_mb / self.latency.host_disk_read_mbps * factor
        )

    def __repr__(self) -> str:
        return (
            f"<PhysicalHost {self.name} vms={self.vm_count}"
            f" util={self.utilization():.2f}>"
        )
