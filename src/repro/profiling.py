"""Opt-in cProfile hooks for kernel hot-path triage.

Setting ``REPRO_PROFILE=1`` in the environment makes the shard
runner (and anything else that wraps its hot loop in
:func:`maybe_profile`) dump a per-shard cProfile stats file next to
the experiment results::

    REPRO_PROFILE=1 PYTHONPATH=src python -m repro kernelbench ...
    python -m pstats benchmarks/results/profile_shard0.pstats

Each shard worker profiles its own event loop, so a 4-shard run
leaves ``profile_shard0.pstats`` .. ``profile_shard3.pstats`` — the
per-shard view is exactly what kernel hot-path triage needs (sync
overhead shows up as ``select``/``os.read`` time, simulation work as
kernel/step frames).
"""

from __future__ import annotations

import cProfile
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

__all__ = ["PROFILE_ENV", "profiling_enabled", "maybe_profile"]

#: Environment flag switching the profile dumps on.
PROFILE_ENV = "REPRO_PROFILE"


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` is set to a non-empty, non-zero value."""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


@contextmanager
def maybe_profile(
    out_path: Optional[Union[str, Path]],
) -> Iterator[None]:
    """Profile the enclosed block into ``out_path`` when enabled.

    A no-op unless :func:`profiling_enabled` and ``out_path`` is set;
    parent directories are created as needed and the dump is written
    even if the block raises, so a crashed shard still leaves its
    profile behind.
    """
    if out_path is None or not profiling_enabled():
        yield
        return
    path = Path(out_path)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))
