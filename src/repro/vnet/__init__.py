"""Virtual networking support (Section 3.3).

Models the Virtuoso/VNET integration: per-plant pools of *host-only
networks* (statically installed ``vmnet`` switches for VMware, ``tap``
devices for UML) dynamically assigned to client domains
(:mod:`repro.vnet.hostonly`), VNET server endpoints bridging a remote
VM to its client's network (:mod:`repro.vnet.vnetd`), and the
private-network deployment scenario with SSH tunnels through a
gateway (:mod:`repro.vnet.tunnels`).

The central invariant — VMs from different client domains are never
created inside the same host-only network — is enforced by the pool
and checked by property tests.
"""

from repro.vnet.hostonly import HostOnlyNetwork, HostOnlyNetworkPool
from repro.vnet.tunnels import Gateway, SSHTunnel
from repro.vnet.vnetd import VNetProxy, VNetServer, VirtualNetworkService

__all__ = [
    "Gateway",
    "HostOnlyNetwork",
    "HostOnlyNetworkPool",
    "SSHTunnel",
    "VNetProxy",
    "VNetServer",
    "VirtualNetworkService",
]
