"""Gateway deployment scenario: private plants behind SSH tunnels.

Section 3.3 describes site policies where VMPlants live in a private
network, reachable only through a VMShop running on a *gateway* host;
statically established SSH tunnels map public gateway ports to the
VNET server ports on the private plants.  This module models that
port-forwarding table so deployments can be validated: every plant's
VNET server must be reachable through exactly one public port, and a
client proxy connecting to the gateway port reaches the right plant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.errors import VNetError
from repro.vnet.vnetd import VNetServer

__all__ = ["SSHTunnel", "Gateway"]


@dataclass(frozen=True)
class SSHTunnel:
    """One static port forward: gateway:public_port → plant:target_port."""

    public_port: int
    plant_name: str
    target_host: str
    target_port: int


class Gateway:
    """The public entry point to a site of private VMPlants."""

    def __init__(self, host: str, first_public_port: int = 40000):
        self.host = host
        self._next_port = first_public_port
        self._tunnels: Dict[int, SSHTunnel] = {}
        self._by_plant: Dict[str, SSHTunnel] = {}

    def establish_tunnel(self, server: VNetServer) -> SSHTunnel:
        """Create (or return) the static tunnel to a plant's VNET server."""
        existing = self._by_plant.get(server.plant_name)
        if existing is not None:
            return existing
        port = self._next_port
        self._next_port += 1
        tunnel = SSHTunnel(
            public_port=port,
            plant_name=server.plant_name,
            target_host=server.host,
            target_port=server.port,
        )
        self._tunnels[port] = tunnel
        self._by_plant[server.plant_name] = tunnel
        return tunnel

    def resolve(self, public_port: int) -> SSHTunnel:
        """Which plant does a gateway port lead to?"""
        try:
            return self._tunnels[public_port]
        except KeyError:
            raise VNetError(
                f"no tunnel on gateway port {public_port}"
            ) from None

    def endpoint_for(self, plant_name: str) -> Optional[str]:
        """Public ``host:port`` a client proxy should dial for a plant."""
        tunnel = self._by_plant.get(plant_name)
        if tunnel is None:
            return None
        return f"{self.host}:{tunnel.public_port}"

    def tunnels(self) -> List[SSHTunnel]:
        """All established tunnels."""
        return list(self._tunnels.values())
