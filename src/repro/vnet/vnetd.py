"""VNET servers, client proxies and bridge bookkeeping.

VNET (Sundararaj & Dinda, 2004) bridges a remote VM's host-only
network to the client's own network over a TCP/SSL tunnel operating at
the Ethernet layer.  A VNET server runs on each VMPlant host and on a
*proxy* host inside the client domain; when a VM is created for a
remote client, a *handler* (bridge) is set up between the plant's
server and the client's proxy, giving the VM an address and LAN
services from the client's domain.

This module keeps the control-plane bookkeeping of that design — the
servers, proxies and active bridges — so the reproduction can verify
setup/teardown ordering, per-domain isolation and the one-handler-per-
(plant, domain) economy the cost function assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import VNetError

__all__ = ["VNetProxy", "VNetServer", "Bridge", "VirtualNetworkService"]


@dataclass(frozen=True)
class VNetProxy:
    """VNET endpoint inside a client domain."""

    domain: str
    host: str
    port: int
    credentials: str = ""


@dataclass
class VNetServer:
    """VNET endpoint on one VMPlant host."""

    plant_name: str
    host: str
    port: int = 1087


@dataclass(frozen=True)
class Bridge:
    """An active Ethernet-layer bridge plant ↔ client proxy."""

    bridge_id: str
    plant_name: str
    network_id: str
    domain: str
    proxy: VNetProxy


class VirtualNetworkService:
    """Front-end service VMShop uses to set up and tear down bridges.

    One bridge exists per (plant, client domain) pair — matching the
    host-only network assignment — and is reference-counted by the
    VMs using it.
    """

    def __init__(self) -> None:
        self._servers: Dict[str, VNetServer] = {}
        self._bridges: Dict[Tuple[str, str], Bridge] = {}
        self._refcount: Dict[str, int] = {}
        self._seq = 0

    # -- registration -----------------------------------------------------
    def register_server(self, server: VNetServer) -> None:
        """Register the VNET server running on a plant."""
        if server.plant_name in self._servers:
            raise VNetError(
                f"plant {server.plant_name!r} already has a VNET server"
            )
        self._servers[server.plant_name] = server

    def server_for(self, plant_name: str) -> VNetServer:
        """Look up a plant's VNET server."""
        try:
            return self._servers[plant_name]
        except KeyError:
            raise VNetError(
                f"no VNET server registered for plant {plant_name!r}"
            ) from None

    # -- bridges -------------------------------------------------------------
    def setup_bridge(
        self,
        plant_name: str,
        network_id: str,
        proxy: VNetProxy,
    ) -> Bridge:
        """Ensure a bridge exists for (plant, proxy.domain); refcount it."""
        self.server_for(plant_name)
        key = (plant_name, proxy.domain)
        bridge = self._bridges.get(key)
        if bridge is not None:
            if bridge.network_id != network_id:
                raise VNetError(
                    f"domain {proxy.domain!r} already bridged to "
                    f"{bridge.network_id} on {plant_name!r}, "
                    f"not {network_id}"
                )
            self._refcount[bridge.bridge_id] += 1
            return bridge
        self._seq += 1
        bridge = Bridge(
            bridge_id=f"bridge-{self._seq}",
            plant_name=plant_name,
            network_id=network_id,
            domain=proxy.domain,
            proxy=proxy,
        )
        self._bridges[key] = bridge
        self._refcount[bridge.bridge_id] = 1
        return bridge

    def teardown_bridge(self, plant_name: str, domain: str) -> bool:
        """Drop one reference; returns True when the bridge was removed."""
        key = (plant_name, domain)
        bridge = self._bridges.get(key)
        if bridge is None:
            raise VNetError(
                f"no bridge for domain {domain!r} on plant {plant_name!r}"
            )
        self._refcount[bridge.bridge_id] -= 1
        if self._refcount[bridge.bridge_id] <= 0:
            del self._refcount[bridge.bridge_id]
            del self._bridges[key]
            return True
        return False

    def bridges(self, plant_name: Optional[str] = None) -> List[Bridge]:
        """Active bridges (optionally for one plant)."""
        return [
            b
            for b in self._bridges.values()
            if plant_name is None or b.plant_name == plant_name
        ]

    def check_isolation(self) -> None:
        """No host-only network may serve two domains (for tests)."""
        seen: Dict[Tuple[str, str], str] = {}
        for bridge in self._bridges.values():
            key = (bridge.plant_name, bridge.network_id)
            if key in seen and seen[key] != bridge.domain:
                raise VNetError(
                    f"network {bridge.network_id} bridged to both "
                    f"{seen[key]!r} and {bridge.domain!r}"
                )
            seen[key] = bridge.domain
