"""VMArchitect: virtual networks spanning distinct domains (§6).

The paper's future work proposes "a VMArchitect to instantiate
customized virtual machines with router and tunneling capabilities to
establish virtual networks that seamlessly span across distinct
domains".  This module implements it with the ordinary public API:

* for every participating site (plant), the architect *creates a
  router VM* through VMShop with a router configuration DAG
  (forwarding + tunnel endpoints) — it is a normal clone, matched,
  cloned and configured like any other machine;
* router VMs are joined by tunnels into a hub-free full mesh (the
  common case for a handful of sites) forming a named
  :class:`VirtualNetwork`;
* member VMs attach to the virtual network through their site's
  router; :meth:`VirtualNetwork.route` resolves the tunnel path
  between any two members.

The cross-domain isolation invariant still holds underneath: each
router lives in its own client domain's host-only network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.errors import VNetError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.workloads.requests import install_os_action

__all__ = ["RouterVM", "VirtualNetwork", "VMArchitect"]

ROUTER_OS = "linux-mandrake-8.1"


def router_dag(network_name: str, os: str = ROUTER_OS) -> ConfigDAG:
    """The configuration DAG for a router VM."""
    dag = ConfigDAG.from_sequence(
        [
            install_os_action(os),
            Action(
                "enable-forwarding",
                command="sysctl -w net.ipv4.ip_forward=1",
            ),
            Action(
                "configure-router-interface",
                command="ifconfig eth0 $VMPLANT_IP netmask 255.255.255.0",
                outputs=("ip",),
            ),
            Action(
                "start-tunnel-endpoint",
                command="vnetd --router --network {network}",
                params={"network": network_name},
                outputs=("tunnel_port",),
            ),
        ]
    )
    dag.validate()
    return dag


@dataclass(frozen=True)
class RouterVM:
    """One router instance anchoring a domain in a virtual network."""

    vmid: str
    domain: str
    plant: str
    ip: str
    tunnel_port: str


@dataclass
class VirtualNetwork:
    """A named cross-domain virtual network."""

    name: str
    routers: Dict[str, RouterVM] = field(default_factory=dict)
    #: Full-mesh tunnels as (domain_a, domain_b) with a < b.
    tunnels: List[Tuple[str, str]] = field(default_factory=list)
    #: member vmid → domain.
    members: Dict[str, str] = field(default_factory=dict)

    def domains(self) -> List[str]:
        """Participating domains, sorted."""
        return sorted(self.routers)

    def router_for(self, domain: str) -> RouterVM:
        """The router anchoring ``domain``."""
        try:
            return self.routers[domain]
        except KeyError:
            raise VNetError(
                f"domain {domain!r} is not part of network {self.name!r}"
            ) from None

    def attach_member(self, vmid: str, domain: str) -> RouterVM:
        """Join a VM to the network through its domain's router."""
        router = self.router_for(domain)
        if vmid in self.members:
            raise VNetError(f"{vmid!r} already attached to {self.name!r}")
        self.members[vmid] = domain
        return router

    def detach_member(self, vmid: str) -> None:
        """Remove a member VM."""
        self.members.pop(vmid, None)

    def route(self, src_vmid: str, dst_vmid: str) -> List[str]:
        """Hop list (vmids) between two member VMs.

        Same domain: via the shared router.  Different domains: source
        router → tunnel → destination router.
        """
        for vmid in (src_vmid, dst_vmid):
            if vmid not in self.members:
                raise VNetError(
                    f"{vmid!r} is not attached to {self.name!r}"
                )
        src_dom = self.members[src_vmid]
        dst_dom = self.members[dst_vmid]
        src_router = self.routers[src_dom]
        if src_dom == dst_dom:
            return [src_vmid, src_router.vmid, dst_vmid]
        key = tuple(sorted((src_dom, dst_dom)))
        if key not in self.tunnels:
            raise VNetError(
                f"no tunnel between {src_dom!r} and {dst_dom!r}"
            )  # pragma: no cover - full mesh by construction
        dst_router = self.routers[dst_dom]
        return [src_vmid, src_router.vmid, dst_router.vmid, dst_vmid]

    def check_mesh(self) -> None:
        """Every domain pair must have exactly one tunnel."""
        expected = {
            tuple(sorted((a, b)))
            for a in self.routers
            for b in self.routers
            if a < b
        }
        if set(self.tunnels) != expected:
            raise VNetError(
                f"network {self.name!r}: tunnel mesh incomplete"
            )


class VMArchitect:
    """Builds and manages cross-domain virtual networks."""

    def __init__(self, shop, memory_mb: int = 32, os: str = ROUTER_OS):
        self.shop = shop
        self.memory_mb = memory_mb
        self.os = os
        self.networks: Dict[str, VirtualNetwork] = {}

    def _router_request(
        self, network_name: str, domain: str
    ) -> CreateRequest:
        return CreateRequest(
            hardware=HardwareSpec(memory_mb=self.memory_mb),
            software=SoftwareSpec(
                os=self.os, dag=router_dag(network_name, self.os)
            ),
            network=NetworkSpec(domain=domain),
            client_id=f"vmarchitect/{network_name}",
            vm_type="vmware",
        )

    def build_network(
        self, name: str, domains: List[str]
    ) -> Generator:
        """Instantiate routers for ``domains`` and mesh them.

        Returns the :class:`VirtualNetwork`.  Router creation goes
        through the ordinary shop path (bidding, matching, cloning);
        a failure surfaces after already-created routers are left
        running for the caller to collect.
        """
        if name in self.networks:
            raise VNetError(f"virtual network {name!r} already exists")
        if len(set(domains)) != len(domains) or not domains:
            raise VNetError("domains must be non-empty and unique")
        network = VirtualNetwork(name=name)
        for domain in domains:
            ad = yield from self.shop.create(
                self._router_request(name, domain)
            )
            network.routers[domain] = RouterVM(
                vmid=str(ad["vmid"]),
                domain=domain,
                plant=str(ad["plant"]),
                ip=str(ad["ip"]),
                tunnel_port=str(ad["tunnel_port"]),
            )
        network.tunnels = [
            (a, b)
            for a in network.domains()
            for b in network.domains()
            if a < b
        ]
        network.check_mesh()
        self.networks[name] = network
        return network

    def teardown_network(self, name: str) -> Generator:
        """Collect all routers and forget the network."""
        network = self.networks.pop(name, None)
        if network is None:
            raise VNetError(f"no virtual network {name!r}")
        for router in network.routers.values():
            yield from self.shop.destroy(router.vmid)
        return len(network.routers)
