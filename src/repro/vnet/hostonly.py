"""Host-only networks and their per-plant allocation pool.

Each VMPlant host carries a small, statically installed set of
host-only networks (``vmnet`` switches / ``tap`` devices).  Clones are
created inside a host-only network so they are isolated from other
hosts and from VMs of other clients; the pool dynamically assigns
networks to client domains under the invariant that **two different
client domains never share a host-only network** (Section 3.3).

Because the pool is small (4 per plant in the paper's illustration),
it is a scarce resource: the Section 3.4 cost function charges a
one-time "network cost" exactly when a request requires a fresh
allocation from this pool.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.errors import VNetError

__all__ = ["HostOnlyNetwork", "IPAllocator", "HostOnlyNetworkPool"]


@dataclass
class HostOnlyNetwork:
    """One vmnet/tap switch and its current assignment."""

    network_id: str
    subnet: str
    #: Client domain currently owning the switch (None = free).
    domain: Optional[str] = None
    #: vmids of VMs attached to the switch.
    attached: Set[str] = field(default_factory=set)

    @property
    def is_free(self) -> bool:
        """True when unassigned."""
        return self.domain is None


class IPAllocator:
    """Sequential guest-IP assignment within one host-only subnet.

    Release/reuse is O(1): returned addresses go on a deque (FIFO, so
    reuse order matches the former ``list.pop(0)`` behaviour without
    its O(n) shift) with a membership set guarding against the same
    address being returned twice — a double release would otherwise
    hand one address to two guests and silently break the isolation
    story at federation scale.
    """

    def __init__(self, subnet: str, first_host: int = 2, last_host: int = 254):
        if not 0 < first_host <= last_host <= 254:
            raise ValueError("invalid host address range")
        self.subnet = subnet
        self._first = first_host
        self._next = first_host
        self._last = last_host
        self._released: "deque[int]" = deque()
        self._released_set: Set[int] = set()

    def allocate(self) -> str:
        """Next free address in the subnet."""
        if self._released:
            host = self._released.popleft()
            self._released_set.discard(host)
        elif self._next <= self._last:
            host = self._next
            self._next += 1
        else:
            raise VNetError(f"subnet {self.subnet} exhausted")
        return f"{self.subnet}.{host}"

    def release(self, address: str) -> None:
        """Return an address to the pool.

        Raises :class:`VNetError` for addresses outside the subnet,
        never handed out, or already released (double release).
        """
        prefix, _, host_s = address.rpartition(".")
        if prefix != self.subnet:
            raise VNetError(f"{address} not in subnet {self.subnet}")
        host = int(host_s)
        if not self._first <= host < self._next:
            raise VNetError(
                f"{address} was never allocated from {self.subnet}"
            )
        if host in self._released_set:
            raise VNetError(f"{address} released twice")
        self._released.append(host)
        self._released_set.add(host)


@dataclass(frozen=True)
class NetworkAssignment:
    """Result of attaching a VM: its switch and guest address."""

    network_id: str
    ip_address: str
    #: True when this attach consumed a previously free switch —
    #: the event that incurs the one-time network cost.
    fresh_allocation: bool


class HostOnlyNetworkPool:
    """The plant's pool of host-only networks.

    ``release_policy`` controls when a domain's switch returns to the
    free list: ``"sticky"`` keeps it assigned forever (the paper's
    one-time-charge illustration), ``"refcount"`` frees it once the
    domain's last VM is collected.

    ``subnets`` assigns the switches *explicit* subnets instead of the
    flat ``{subnet_base}.{100+i}`` scheme — this is how a federated
    site's :class:`~repro.federation.addressing.SubnetBlock` hands
    each plant globally unique address space (site prefix → subnet
    block → host range) instead of every plant in the grid reusing
    the same four ``192.168.10x`` subnets.
    """

    def __init__(
        self,
        plant_name: str,
        count: int = 4,
        release_policy: str = "sticky",
        subnet_base: str = "192.168",
        subnets: Optional[Sequence[str]] = None,
    ):
        if subnets is not None:
            subnets = list(subnets)
            if not subnets:
                raise ValueError("subnets must be non-empty when given")
            if len(set(subnets)) != len(subnets):
                raise ValueError("subnets must be distinct")
            count = len(subnets)
        if count <= 0:
            raise ValueError("count must be positive")
        if release_policy not in ("sticky", "refcount"):
            raise ValueError(f"unknown release policy {release_policy!r}")
        self.plant_name = plant_name
        self.release_policy = release_policy
        self.networks: List[HostOnlyNetwork] = [
            HostOnlyNetwork(
                network_id=f"{plant_name}/vmnet{i}",
                subnet=(
                    subnets[i]
                    if subnets is not None
                    else f"{subnet_base}.{100 + i}"
                ),
            )
            for i in range(count)
        ]
        self._by_domain: Dict[str, HostOnlyNetwork] = {}
        self._allocators: Dict[str, IPAllocator] = {
            net.network_id: IPAllocator(net.subnet) for net in self.networks
        }
        self._vm_network: Dict[str, str] = {}
        self._vm_ip: Dict[str, str] = {}
        #: Monotonic mutation counter (memo invalidation in the plant's
        #: ``description_ad``, which publishes ``free_count``).
        self.version = 0

    # -- queries ------------------------------------------------------------
    @property
    def free_count(self) -> int:
        """Number of unassigned switches."""
        return sum(1 for net in self.networks if net.is_free)

    def network_of(self, domain: str) -> Optional[HostOnlyNetwork]:
        """The switch currently assigned to ``domain``, if any."""
        return self._by_domain.get(domain)

    def has_capacity_for(self, domain: str) -> bool:
        """Can a VM of ``domain`` be attached (existing or fresh)?"""
        return domain in self._by_domain or self.free_count > 0

    def would_be_fresh(self, domain: str) -> bool:
        """Would attaching a VM of ``domain`` consume a free switch?"""
        return domain not in self._by_domain

    # -- allocation -----------------------------------------------------------
    def attach(self, domain: str, vmid: str) -> NetworkAssignment:
        """Attach a VM to its domain's switch, allocating if needed.

        Raises :class:`VNetError` when the pool is exhausted for a new
        domain.  The isolation invariant holds by construction: a
        switch is only ever handed to its assigned domain.
        """
        if vmid in self._vm_network:
            raise VNetError(f"vm {vmid!r} already attached")
        net = self._by_domain.get(domain)
        fresh = net is None
        if net is None:
            net = next((n for n in self.networks if n.is_free), None)
            if net is None:
                raise VNetError(
                    f"plant {self.plant_name}: no free host-only network "
                    f"for domain {domain!r}"
                )
            net.domain = domain
            self._by_domain[domain] = net
        ip = self._allocators[net.network_id].allocate()
        net.attached.add(vmid)
        self._vm_network[vmid] = net.network_id
        self._vm_ip[vmid] = ip
        self.version += 1
        return NetworkAssignment(
            network_id=net.network_id,
            ip_address=ip,
            fresh_allocation=fresh,
        )

    def rename(self, old_vmid: str, new_vmid: str) -> None:
        """Rekey an attached VM (pooled-VM adoption keeps its IP)."""
        if old_vmid not in self._vm_network:
            raise VNetError(f"vm {old_vmid!r} not attached")
        if new_vmid in self._vm_network:
            raise VNetError(f"vm {new_vmid!r} already attached")
        network_id = self._vm_network.pop(old_vmid)
        self._vm_network[new_vmid] = network_id
        self._vm_ip[new_vmid] = self._vm_ip.pop(old_vmid)
        net = next(n for n in self.networks if n.network_id == network_id)
        net.attached.discard(old_vmid)
        net.attached.add(new_vmid)
        self.version += 1

    def detach(self, vmid: str) -> bool:
        """Detach a collected VM, possibly freeing the switch.

        Returns True when a lease was actually released (idempotent:
        unknown vmids are a no-op returning False).
        """
        network_id = self._vm_network.pop(vmid, None)
        if network_id is None:
            return False
        ip = self._vm_ip.pop(vmid)
        net = next(n for n in self.networks if n.network_id == network_id)
        net.attached.discard(vmid)
        self._allocators[network_id].release(ip)
        self.version += 1
        if (
            self.release_policy == "refcount"
            and not net.attached
            and net.domain is not None
        ):
            del self._by_domain[net.domain]
            net.domain = None
        return True

    def attached_count(self) -> int:
        """VMs currently holding a lease (leak auditing)."""
        return len(self._vm_network)

    def check_isolation(self) -> None:
        """Assert the cross-domain isolation invariant (for tests)."""
        owners: Dict[str, str] = {}
        for domain, net in self._by_domain.items():
            if net.network_id in owners:
                raise VNetError(
                    f"switch {net.network_id} assigned to both "
                    f"{owners[net.network_id]!r} and {domain!r}"
                )
            owners[net.network_id] = domain

    def __repr__(self) -> str:
        return (
            f"<HostOnlyNetworkPool {self.plant_name}"
            f" free={self.free_count}/{len(self.networks)}>"
        )
