"""Command-line interface: ``python -m repro ...`` or ``vmplants``.

Subcommands map one-to-one to the experiment drivers::

    vmplants demo                 # create/query/destroy one VM
    vmplants figure4 [--seed N]   # each paper artifact by name
    vmplants figure5
    vmplants figure6
    vmplants uml [--sbuml]
    vmplants costfn
    vmplants textnumbers
    vmplants ablations
    vmplants concurrency
    vmplants migration
    vmplants scalability
    vmplants matching
    vmplants resilience
    vmplants replicas
    vmplants loadtest [--requests N] [--rates R ...] [--streaming]
    vmplants disttree [--hosts N ...] [--fanout K]
    vmplants kernelbench [--sites N] [--shards S ...]
    vmplants federation [--sites N ...] [--cross F ...] [--plants P]
    vmplants chaos [--mtbf S ...] [--report PATH] [--replay PATH]
    vmplants megaload [--sites N] [--shards S ...]
                      [--requests-per-site N]
    vmplants megachaos [--report PATH] [--replay PATH]
    vmplants all                  # everything, in order
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

__all__ = ["main", "build_parser"]


def _figure4(args) -> str:
    from repro.experiments.figure4 import run_figure4

    return run_figure4(seed=args.seed).render()


def _figure5(args) -> str:
    from repro.experiments.figure5 import run_figure5

    return run_figure5(seed=args.seed).render()


def _figure6(args) -> str:
    from repro.experiments.figure6 import run_figure6

    return run_figure6(seed=args.seed).render()


def _uml(args) -> str:
    if getattr(args, "sbuml", False):
        from repro.experiments.uml import run_sbuml

        return run_sbuml(seed=args.seed).render()
    from repro.experiments.uml import run_uml

    return run_uml(seed=args.seed).render()


def _costfn(args) -> str:
    from repro.experiments.costfn import run_costfn

    return run_costfn(seed=args.seed).render()


def _textnumbers(args) -> str:
    from repro.experiments.textnumbers import run_textnumbers

    return run_textnumbers(seed=args.seed).render()


def _ablations(args) -> str:
    from repro.experiments.ablations import run_all_ablations

    # Fan out across a process pool where the host allows; the merge
    # is deterministic, so the rendered order below never changes.
    results = run_all_ablations(
        seed=args.seed,
        names=("clone_mode", "matching", "speculative", "cost_model"),
    )
    return "\n\n".join(r.render() for r in results.values())


def _concurrency(args) -> str:
    from repro.experiments.concurrency import run_concurrency

    return run_concurrency(seed=args.seed).render()


def _migration(args) -> str:
    from repro.experiments.migration_exp import run_migration

    return run_migration(seed=args.seed).render()


def _scalability(args) -> str:
    from repro.experiments.scalability import run_scalability

    return run_scalability(seed=args.seed).render()


def _matching(args) -> str:
    from repro.experiments.scalability import run_matching_scalability

    return run_matching_scalability(seed=args.seed).render()


def _resilience(args) -> str:
    from repro.experiments.resilience import run_resilience

    return run_resilience(seed=args.seed).render()


def _replicas(args) -> str:
    from repro.experiments.concurrency import run_warehouse_replicas

    return run_warehouse_replicas(seed=args.seed).render()


def _loadtest(args) -> str:
    from repro.experiments.loadtest import run_loadtest

    return run_loadtest(
        seed=args.seed,
        requests=args.requests,
        rates=tuple(args.rates),
        cache_mb=args.cache_mb,
        streaming=args.streaming,
        trace_capacity=args.trace_capacity,
    ).render()


def _megaload(args) -> str:
    import json

    from repro.experiments.megaload import run_megaload

    result = run_megaload(
        seed=args.seed,
        sites=args.sites,
        shard_counts=tuple(args.shards),
        requests_per_site=args.requests_per_site,
        params={
            k: v
            for k, v in (
                ("plants", args.plants),
                ("cross_fraction", args.cross),
                ("rate_per_s", args.rate),
                ("spill_deadline_s", args.spill_deadline),
            )
            if v is not None
        },
        deadline_s=args.deadline,
        trace_capacity=args.trace_capacity,
    )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_record(), fh, indent=2, sort_keys=True)
    return result.render()


def _megachaos(args) -> str:
    import json

    from repro.experiments.megachaos import run_megachaos

    if args.replay:
        with open(args.replay) as fh:
            report = json.load(fh)
        cfg = report["config"]
        # Replaying a report reuses its recorded plan AND its run
        # parameters, so the schedule meets the exact same traces.
        result = run_megachaos(
            seed=cfg["seed"],
            sites=cfg["sites"],
            shards=cfg["shards"],
            requests_per_site=cfg["requests_per_site"],
            params=cfg.get("extra_params") or None,
            blackout_site=cfg["blackout_site"],
            blackout_at=cfg["blackout_at"],
            blackout_s=cfg["blackout_s"],
            crash_plants_per_site=cfg["crash_plants_per_site"],
            mtbf_s=cfg["mtbf_s"],
            mttr_s=cfg["mttr_s"],
            wan_site=cfg["wan_site"],
            wan_at=cfg["wan_at"],
            wan_s=cfg["wan_s"],
            wan_severity=cfg["wan_severity"],
            spill_attempts=cfg["spill_attempts"],
            spill_backoff_s=cfg["spill_backoff_s"],
            shed_depth=cfg["shed_depth"],
            preempt_depth=cfg["preempt_depth"],
            det_shard_counts=tuple(cfg["det_shard_counts"]),
            determinism_requests=cfg["determinism_requests"],
            deadline_s=args.deadline,
            trace_capacity=args.trace_capacity,
            plan_records=report["plan"]["records"],
        )
    else:
        result = run_megachaos(
            seed=args.seed,
            sites=args.sites,
            shards=args.shards,
            requests_per_site=args.requests_per_site,
            blackout_site=args.blackout_site,
            blackout_at=args.blackout_at,
            blackout_s=args.blackout_duration,
            crash_plants_per_site=args.crash_plants,
            mtbf_s=args.mtbf,
            mttr_s=args.mttr,
            wan_site=args.wan_site,
            wan_severity=args.wan_severity,
            spill_attempts=args.spill_attempts,
            spill_backoff_s=args.spill_backoff,
            shed_depth=args.shed_depth,
            preempt_depth=args.preempt_depth,
            deadline_s=args.deadline,
            trace_capacity=args.trace_capacity,
        )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_records(), fh, indent=2, sort_keys=True)
    return result.render()


def _disttree(args) -> str:
    import json

    from repro.experiments.disttree import run_disttree

    result = run_disttree(
        seed=args.seed,
        hosts=tuple(args.hosts),
        fanout=args.fanout,
    )
    if args.report:
        record = {
            "seed": result.seed,
            "memory_mb": result.memory_mb,
            "hosts": list(result.hosts),
            "fanout": result.fanout,
            "points": [
                p.as_dict()
                for pts in result.points.values()
                for p in pts
            ],
        }
        with open(args.report, "w") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
    return result.render()


def _kernelbench(args) -> str:
    import json

    from repro.experiments.kernelbench import run_kernelbench

    result = run_kernelbench(
        seed=args.seed,
        sites=args.sites,
        shard_counts=tuple(args.shards),
        requests_per_site=args.requests_per_site,
    )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_record(), fh, indent=2, sort_keys=True)
    return result.render()


def _federation(args) -> str:
    import json

    from repro.experiments.federation import run_federation

    result = run_federation(
        seed=args.seed,
        site_counts=tuple(args.sites),
        cross_fractions=tuple(args.cross),
        plants_per_site=args.plants,
        requests_per_site=args.requests_per_site,
        params={
            k: v
            for k, v in (
                ("rack_size", args.rack_size),
                ("spill_deadline_s", args.spill_deadline),
            )
            if v is not None
        },
        deadline_s=args.deadline,
    )
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_record(), fh, indent=2, sort_keys=True)
    return result.render()


def _chaos(args) -> str:
    import json

    from repro.experiments.chaos import run_chaos

    plans = None
    kwargs = {}
    if args.replay:
        with open(args.replay) as fh:
            report = json.load(fh)
        plans = {
            float(mtbf): entry["records"]
            for mtbf, entry in report.get("plans", {}).items()
        }
        # Replaying a report reuses its run parameters so the recorded
        # schedule meets the exact same workload.
        kwargs = {
            "seed": report["seed"],
            "memory_mb": report["memory_mb"],
            "requests": report["requests"],
            "rate": report["rate_per_s"],
            "mttr_s": report["mttr_s"],
            "n_plants": report["n_plants"],
            "mtbf_sweep": sorted(plans),
        }
    else:
        kwargs = {
            "seed": args.seed,
            "requests": args.requests,
            "rate": args.rate,
            "mtbf_sweep": tuple(args.mtbf),
            "mttr_s": args.mttr,
        }
    result = run_chaos(plans=plans, **kwargs)
    if args.report:
        with open(args.report, "w") as fh:
            json.dump(result.to_records(), fh, indent=2, sort_keys=True)
    return result.render()


def _demo(args) -> str:
    from repro import build_testbed, experiment_request

    bed = build_testbed(seed=args.seed)
    ad = bed.run(bed.shop.create(experiment_request(args.memory)))
    lines = [
        f"created {ad['vmid']} on {ad['plant']}",
        f"  image      : {ad['image_id']}",
        f"  ip         : {ad['ip']} ({ad['network_id']})",
        f"  clone      : {ad['clone_time']:.1f}s",
        f"  configure  : {ad['config_time']:.1f}s",
        f"  actions    : {ad['actions_cached']} cached, "
        f"{ad['actions_executed']} executed",
    ]
    status = bed.run(bed.shop.query(str(ad["vmid"])))
    lines.append(f"query: status={status.get('status')}")
    final = bed.run(bed.shop.destroy(str(ad["vmid"])))
    lines.append(
        f"destroyed at t={final.get('collected_at'):.1f}s "
        f"(simulated clock)"
    )
    return "\n".join(lines)


_ARTIFACTS: Dict[str, Callable] = {
    "figure4": _figure4,
    "figure5": _figure5,
    "figure6": _figure6,
    "uml": _uml,
    "costfn": _costfn,
    "textnumbers": _textnumbers,
    "ablations": _ablations,
    "concurrency": _concurrency,
    "migration": _migration,
    "scalability": _scalability,
    "resilience": _resilience,
    "replicas": _replicas,
}


def _all(args) -> str:
    return ("\n\n" + "=" * 70 + "\n\n").join(
        runner(args) for runner in _ARTIFACTS.values()
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="vmplants",
        description=(
            "VMPlants (SC 2004) reproduction: run the demo or "
            "regenerate any paper artifact."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="create/query/destroy one VM")
    demo.add_argument("--seed", type=int, default=2004)
    demo.add_argument(
        "--memory", type=int, default=32, choices=(32, 64, 256)
    )
    demo.set_defaults(runner=_demo)

    for name, runner in _ARTIFACTS.items():
        cmd = sub.add_parser(name, help=f"regenerate {name}")
        cmd.add_argument("--seed", type=int, default=2004)
        if name == "uml":
            cmd.add_argument(
                "--sbuml",
                action="store_true",
                help="compare boot vs. SBUML checkpoint-resume cloning",
            )
        cmd.set_defaults(runner=runner)

    # Not part of ``all``: the selects/s column is host wall-clock,
    # while ``all`` stays deterministic per seed.
    matching = sub.add_parser(
        "matching",
        help="warehouse-size sweep of the indexed matching path",
    )
    matching.add_argument("--seed", type=int, default=2004)
    matching.set_defaults(runner=_matching)

    # Not part of ``all``: a deliberately heavy open-loop sweep of
    # the provisioning-throughput stack (see DESIGN.md).
    loadtest = sub.add_parser(
        "loadtest",
        help=(
            "Poisson-arrival throughput sweep: baseline vs host "
            "caches vs coalescing vs speculative pools"
        ),
    )
    loadtest.add_argument("--seed", type=int, default=2004)
    loadtest.add_argument("--requests", type=int, default=64)
    loadtest.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.05, 0.2, 1.2],
        help="arrival rates to sweep (requests per simulated second)",
    )
    loadtest.add_argument(
        "--cache-mb",
        type=float,
        default=512.0,
        help="per-host golden-state cache budget",
    )
    loadtest.add_argument(
        "--streaming",
        action="store_true",
        help=(
            "summarize latencies with constant-memory streaming "
            "sketches (identical fingerprints; quantiles within the "
            "sketch's relative error)"
        ),
    )
    loadtest.add_argument(
        "--trace-capacity",
        type=int,
        default=None,
        metavar="N",
        help=(
            "attach a bounded N-event tracer to every run and report "
            "dropped events (default: no tracer)"
        ),
    )
    loadtest.set_defaults(runner=_loadtest)

    # Not part of ``all``: a scale-out ladder far beyond the paper's
    # 8-node testbed (see DESIGN.md, "Image distribution").
    disttree = sub.add_parser(
        "disttree",
        help=(
            "fleet-size ladder of same-image broadcast bursts: "
            "NFS star vs peer distribution tree"
        ),
    )
    disttree.add_argument("--seed", type=int, default=2004)
    disttree.add_argument(
        "--hosts",
        type=int,
        nargs="+",
        default=[8, 32, 128, 512],
        help="fleet sizes to sweep (one VM per host)",
    )
    disttree.add_argument(
        "--fanout",
        type=int,
        default=2,
        help="concurrent peer serves per source (1=chain, 2=binary)",
    )
    disttree.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON record (per-rung points + fingerprints)",
    )
    disttree.set_defaults(runner=_disttree)

    # Not part of ``all``: throughput columns are host wall-clock /
    # CPU-time, while ``all`` stays deterministic per seed.
    kernelbench = sub.add_parser(
        "kernelbench",
        help=(
            "sharded-kernel throughput sweep with merged-trace "
            "determinism cross-check"
        ),
    )
    kernelbench.add_argument("--seed", type=int, default=2004)
    kernelbench.add_argument(
        "--sites",
        type=int,
        default=8,
        help="independent testbed sites on the WAN ring",
    )
    kernelbench.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 4, 8],
        help="shard counts to sweep (must include 1)",
    )
    kernelbench.add_argument(
        "--requests-per-site",
        type=int,
        default=160,
        help="VM creation requests per site per sweep point",
    )
    kernelbench.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON record (points, speedups, fingerprint)",
    )
    kernelbench.set_defaults(runner=_kernelbench)

    # Not part of ``all``: throughput columns are host wall-clock /
    # CPU-time; one worker process per site (see DESIGN.md,
    # "Federation & control-plane sharding").
    federation = sub.add_parser(
        "federation",
        help=(
            "federated multi-site sweep: site count x cross-site "
            "traffic fraction, one kernel shard per site"
        ),
    )
    federation.add_argument("--seed", type=int, default=2004)
    federation.add_argument(
        "--sites",
        type=int,
        nargs="+",
        default=[1, 4, 16],
        help="site counts to sweep (include 1 for the speedup base)",
    )
    federation.add_argument(
        "--cross",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.3],
        help="cross-site traffic fractions to sweep",
    )
    federation.add_argument(
        "--plants",
        type=int,
        default=8,
        help="plants per site (16 sites x 625 = the 10k-plant rung)",
    )
    federation.add_argument(
        "--requests-per-site",
        type=int,
        default=160,
        help="VM creation requests per site per sweep point",
    )
    federation.add_argument(
        "--rack-size",
        type=int,
        default=None,
        help="plants per rack broker (default: scenario default, 8)",
    )
    federation.add_argument(
        "--spill-deadline",
        type=float,
        default=None,
        help=(
            "cross-site spill bid/ack deadline in simulated seconds "
            "(default: scenario default, 400; raise it when large "
            "sites push create latency past it)"
        ),
    )
    federation.add_argument(
        "--deadline",
        type=float,
        default=600.0,
        help="wall-clock abort deadline per sharded run (seconds)",
    )
    federation.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON record (points, speedups, fingerprint)",
    )
    federation.set_defaults(runner=_federation)

    # Not part of ``all``: fault-injection policy-ladder sweep (see
    # DESIGN.md, "Fault model & recovery").
    chaos = sub.add_parser(
        "chaos",
        help=(
            "deterministic fault injection: sweep MTBF over the "
            "surface/retry/deadline/breaker recovery ladder"
        ),
    )
    chaos.add_argument("--seed", type=int, default=2004)
    chaos.add_argument("--requests", type=int, default=48)
    chaos.add_argument(
        "--rate",
        type=float,
        default=0.1,
        help="arrival rate (requests per simulated second)",
    )
    chaos.add_argument(
        "--mtbf",
        type=float,
        nargs="+",
        default=[300.0, 900.0],
        help="mean time between faults per target (seconds) to sweep",
    )
    chaos.add_argument(
        "--mttr",
        type=float,
        default=60.0,
        help="mean fault duration (seconds)",
    )
    chaos.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON report (metrics + recorded fault plans)",
    )
    chaos.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help=(
            "re-run the fault schedules recorded in a saved report "
            "(ignores --seed/--requests/--rate/--mtbf/--mttr)"
        ),
    )
    chaos.set_defaults(runner=_chaos)

    # Not part of ``all``: requests/sec columns are host wall-clock /
    # CPU-time (see DESIGN.md, "Workload engine & streaming metrics").
    megaload = sub.add_parser(
        "megaload",
        help=(
            "trace-driven multi-tenant load on federated sites with "
            "streaming metrics; scales to a million requests"
        ),
    )
    megaload.add_argument("--seed", type=int, default=2004)
    megaload.add_argument(
        "--sites",
        type=int,
        default=4,
        help="federated sites (one kernel shard per site at the max)",
    )
    megaload.add_argument(
        "--shards",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="shard counts to sweep (must not exceed --sites)",
    )
    megaload.add_argument(
        "--requests-per-site",
        type=int,
        default=250,
        help=(
            "requests per site (16 sites x 62500 = the 1M-request "
            "rung)"
        ),
    )
    megaload.add_argument(
        "--plants",
        type=int,
        default=None,
        help="plants per site (default: scenario default, 8)",
    )
    megaload.add_argument(
        "--rate",
        type=float,
        default=None,
        help="aggregate arrival rate per site (default: scenario, 2.0)",
    )
    megaload.add_argument(
        "--cross",
        type=float,
        default=None,
        help="cross-site traffic fraction (default: scenario, 0.1)",
    )
    megaload.add_argument(
        "--spill-deadline",
        type=float,
        default=None,
        help="cross-site spill ack deadline (default: scenario, 400)",
    )
    megaload.add_argument(
        "--deadline",
        type=float,
        default=1800.0,
        help="wall-clock abort deadline per sharded run (seconds)",
    )
    megaload.add_argument(
        "--trace-capacity",
        type=int,
        default=100_000,
        metavar="N",
        help=(
            "bounded tracer size per site in the determinism recheck "
            "(dropped events are reported)"
        ),
    )
    megaload.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the JSON record (points, quantiles, fingerprints)",
    )
    megaload.set_defaults(runner=_megaload)

    # Not part of ``all``: the robustness ladder composes a grid
    # fault plan with the flash-crowd trace (see DESIGN.md,
    # "Grid-scale chaos & admission control").
    megachaos = sub.add_parser(
        "megachaos",
        help=(
            "grid resilience ladder: site blackout + flash crowd "
            "over none/faults/failover/admission"
        ),
    )
    megachaos.add_argument("--seed", type=int, default=2004)
    megachaos.add_argument(
        "--sites",
        type=int,
        default=4,
        help="federated sites (one kernel shard per site at the max)",
    )
    megachaos.add_argument(
        "--shards",
        type=int,
        default=4,
        help="kernel shards for the ladder runs (<= --sites)",
    )
    megachaos.add_argument(
        "--requests-per-site",
        type=int,
        default=150,
        help="requests per site per ladder rung",
    )
    megachaos.add_argument(
        "--blackout-site",
        type=int,
        default=1,
        help="which site goes dark",
    )
    megachaos.add_argument(
        "--blackout-at",
        type=float,
        default=110.0,
        help="blackout start (simulated seconds)",
    )
    megachaos.add_argument(
        "--blackout-duration",
        type=float,
        default=60.0,
        help="blackout length (simulated seconds)",
    )
    megachaos.add_argument(
        "--crash-plants",
        type=int,
        default=0,
        help="plants per site on a background crash/recover renewal",
    )
    megachaos.add_argument(
        "--mtbf",
        type=float,
        default=600.0,
        help="mean time between background crashes per plant",
    )
    megachaos.add_argument(
        "--mttr",
        type=float,
        default=60.0,
        help="mean background crash duration",
    )
    megachaos.add_argument(
        "--wan-site",
        type=int,
        default=None,
        help="also partition this site's outbound spill link",
    )
    megachaos.add_argument(
        "--wan-severity",
        type=float,
        default=0.0,
        help=(
            "0 = full partition; 0<s<1 = degrade bandwidth to that "
            "fraction"
        ),
    )
    megachaos.add_argument(
        "--spill-attempts",
        type=int,
        default=3,
        help="spill rounds on the failover/admission rungs",
    )
    megachaos.add_argument(
        "--spill-backoff",
        type=float,
        default=20.0,
        help="base backoff between spill rounds (doubles per round)",
    )
    megachaos.add_argument(
        "--shed-depth",
        type=int,
        default=240,
        help="tier-0 in-flight ceiling on the admission rung",
    )
    megachaos.add_argument(
        "--preempt-depth",
        type=int,
        default=160,
        help="in-flight depth that triggers pool preemption",
    )
    megachaos.add_argument(
        "--deadline",
        type=float,
        default=1800.0,
        help="wall-clock abort deadline per sharded run (seconds)",
    )
    megachaos.add_argument(
        "--trace-capacity",
        type=int,
        default=100_000,
        metavar="N",
        help="bounded tracer size per site in the determinism recheck",
    )
    megachaos.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help=(
            "write the JSON report (ladder points, recorded plan, "
            "fingerprints) — replay-stable, no wall-clock fields"
        ),
    )
    megachaos.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help=(
            "re-run the plan and config recorded in a saved report "
            "(ignores every knob except --deadline/--trace-capacity)"
        ),
    )
    megachaos.set_defaults(runner=_megachaos)

    everything = sub.add_parser("all", help="regenerate every artifact")
    everything.add_argument("--seed", type=int, default=2004)
    everything.set_defaults(runner=_all)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.runner(args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
