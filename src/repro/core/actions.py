"""Configuration actions: the node payload of a configuration DAG.

An :class:`Action` describes one step needed to bring a virtual
machine from its current state toward the client's desired state —
installing a package, creating a user, attaching a virtual device.
Actions are *guest*-scoped (executed by the guest daemon inside the
VM, e.g. ``useradd``) or *host*-scoped (executed by the production
line on the VM host, e.g. connecting a CD-ROM ISO image), mirroring
Section 3.1 of the paper.

Actions are value objects: equality and the matching signature depend
only on their content, so a warehouse descriptor produced on one plant
matches requests arriving at another.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "ActionScope",
    "ErrorPolicy",
    "ActionStatus",
    "Action",
    "ActionResult",
]


class ActionScope(Enum):
    """Where an action executes (Section 3.1)."""

    #: Executed inside the virtual machine by the guest daemon.
    GUEST = "guest"
    #: Executed by the virtual machine's host (production line).
    HOST = "host"


class ErrorPolicy(Enum):
    """What the PPP does when an action fails.

    Every action node has an implicit error node; this policy selects
    its behaviour.  A custom error-handling sub-graph (``handler``)
    can additionally be attached to the node in the DAG.
    """

    #: Abort production and collect the partially configured VM.
    FAIL = "fail"
    #: Re-run the action up to ``retries`` times before failing.
    RETRY = "retry"
    #: Record the failure in the classad and continue.
    IGNORE = "ignore"
    #: Run the explicit error-handling sub-graph; continue if it
    #: completes, abort production if it fails too.
    HANDLER = "handler"


class ActionStatus(Enum):
    """Outcome of one action execution."""

    OK = "ok"
    FAILED = "failed"
    SKIPPED = "skipped"
    #: Satisfied by the golden image — no execution needed.
    CACHED = "cached"


def _canonical_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    """Canonical, hashable form of an action's parameter mapping."""
    return tuple(sorted((str(k), repr(v)) for k, v in params.items()))


@dataclass(frozen=True)
class Action:
    """One configuration step.

    Parameters
    ----------
    name:
        Unique name within its DAG, e.g. ``"install-vnc"``.  Warehouse
        matching identifies operations by name, so the *signature*
        (name + scope + command + params) detects conflicting reuse of
        a name.
    scope:
        :class:`ActionScope.GUEST` or :class:`ActionScope.HOST`.
    command:
        The command template the production line materializes into a
        configuration script (guest) or a host-side operation name.
    params:
        Template parameters substituted into the command.
    outputs:
        Names of values this action publishes into the VM's classad
        (e.g. the assigned IP address).
    on_error:
        Error policy for the implicit error node.
    retries:
        Retry budget when ``on_error`` is :class:`ErrorPolicy.RETRY`.
    """

    name: str
    scope: ActionScope = ActionScope.GUEST
    command: str = ""
    params: Tuple[Tuple[str, str], ...] = field(default=())
    outputs: Tuple[str, ...] = ()
    on_error: ErrorPolicy = ErrorPolicy.FAIL
    retries: int = 0

    def __init__(
        self,
        name: str,
        scope: ActionScope = ActionScope.GUEST,
        command: str = "",
        params: Optional[Mapping[str, Any]] = None,
        outputs: Tuple[str, ...] = (),
        on_error: ErrorPolicy = ErrorPolicy.FAIL,
        retries: int = 0,
    ):
        if not name:
            raise ValueError("action name must be non-empty")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "scope", ActionScope(scope))
        object.__setattr__(self, "command", command)
        object.__setattr__(
            self, "params", _canonical_params(params or {})
        )
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "on_error", ErrorPolicy(on_error))
        object.__setattr__(self, "retries", int(retries))

    @property
    def param_dict(self) -> Dict[str, str]:
        """Parameters as a plain dict (values are ``repr`` strings)."""
        return dict(self.params)

    @property
    def signature(self) -> str:
        """Content hash identifying the operation across plants."""
        payload = "\x1f".join(
            [
                self.name,
                self.scope.value,
                self.command,
                repr(self.params),
            ]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def rendered_command(self) -> str:
        """Command with ``{param}`` placeholders substituted.

        Only declared parameter names are substituted — arbitrary
        braces (shell syntax, awk programs …) pass through verbatim.
        A ``{name}`` token naming an undeclared parameter is an error.

        Parameter values were canonicalized with ``repr``; string
        values are unquoted again for substitution.
        """
        values: Dict[str, str] = {}
        for key, rep in self.params:
            if rep.startswith(("'", '"')) and rep.endswith(("'", '"')):
                try:
                    import ast

                    values[key] = str(ast.literal_eval(rep))
                    continue
                except (ValueError, SyntaxError):
                    pass
            values[key] = rep

        import re

        def substitute(match: "re.Match[str]") -> str:
            name = match.group(1)
            if name not in values:
                raise ValueError(
                    f"action {self.name!r}: unbound command parameter "
                    f"{name!r}"
                )
            return values[name]

        # Substitute only identifier-shaped {tokens} that are not
        # shell ${VAR} expansions; any other brace construct passes
        # through untouched.
        return re.sub(
            r"(?<!\$)\{([A-Za-z_][A-Za-z0-9_]*)\}",
            substitute,
            self.command,
        )

    def __str__(self) -> str:
        return f"{self.name}[{self.scope.value}]"


@dataclass(frozen=True)
class ActionResult:
    """Outcome of executing (or skipping) one action."""

    action: str
    status: ActionStatus
    outputs: Tuple[Tuple[str, str], ...] = ()
    stdout: str = ""
    duration: float = 0.0
    attempts: int = 1
    message: str = ""

    @property
    def ok(self) -> bool:
        """True for OK or CACHED outcomes."""
        return self.status in (ActionStatus.OK, ActionStatus.CACHED)

    @property
    def output_dict(self) -> Dict[str, str]:
        """Published outputs as a plain dict."""
        return dict(self.outputs)
