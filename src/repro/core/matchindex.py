"""Indexed golden-image matching for the VM Warehouse.

The brute-force reference (:func:`repro.core.matching.select_golden`)
re-runs the full Section 3.2 criterion against *every* image on every
bid.  :class:`MatchIndex` makes the same selection without touching
the request DAG for images that can never match:

* images are bucketed by the exact-equality part of the hardware/
  software criterion — ``(vm_type, os, isa, memory_mb)`` — so
  vm-type/OS/hardware rejection is a dict lookup, not a scan;
* within a bucket, images are grouped into *profiles* by their
  performed sequence's ``(name, signature)`` pairs: every image in a
  profile passes or fails the DAG-side tests identically, so the
  Subset/Prefix/Partial Order/signature tests run once per distinct
  profile instead of once per image;
* the index is maintained incrementally by
  :meth:`~repro.plant.warehouse.VMWarehouse.publish` /
  :meth:`~repro.plant.warehouse.VMWarehouse.unpublish`.

The selection is bit-identical to the brute-force path: the same
image wins (deepest satisfied prefix, then lexicographically smallest
image id) and the winner's :class:`MatchResult` carries the same
satisfied/residual tuples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dag import ConfigDAG
from repro.core.matching import MatchResult, match_performed
from repro.core.spec import HardwareSpec

__all__ = ["MatchIndex"]

#: Bucket key: the exact-equality part of the matching criterion.
BucketKey = Tuple[str, str, str, int]
#: Profile key: the performed sequence as (name, signature) pairs.
ProfileKey = Tuple[Tuple[str, str], ...]


class _Profile:
    """All images of one bucket sharing one performed sequence."""

    __slots__ = ("performed", "performed_names", "images")

    def __init__(self, performed):
        self.performed = performed
        self.performed_names: Tuple[str, ...] = tuple(
            a.name for a in performed
        )
        #: image_id → image, for deterministic winner selection.
        self.images: Dict[str, object] = {}

    @property
    def depth(self) -> int:
        return len(self.performed_names)


class MatchIndex:
    """Incrementally maintained index over a warehouse's images."""

    def __init__(self) -> None:
        self._buckets: Dict[BucketKey, Dict[ProfileKey, _Profile]] = {}
        #: image_id → (bucket key, profile key) for O(1) removal.
        self._locator: Dict[str, Tuple[BucketKey, ProfileKey]] = {}
        #: Query counters (benchmarks and the scalability experiment).
        self.stats: Dict[str, int] = {
            "queries": 0,
            "profiles_tested": 0,
            "images_skipped_by_bucket": 0,
        }
        #: image_id → times it won a selection (memo hits included —
        #: the warehouse reports those through :meth:`note_select`).
        #: Drives the replica placer's notion of a "hot" image.
        self.popularity: Dict[str, int] = {}
        self._n_images = 0

    def __len__(self) -> int:
        return self._n_images

    # -- maintenance -------------------------------------------------------
    @staticmethod
    def _bucket_key(image) -> BucketKey:
        hw: HardwareSpec = image.hardware
        return (image.vm_type, image.os, hw.isa, hw.memory_mb)

    @staticmethod
    def _profile_key(image) -> ProfileKey:
        return tuple((a.name, a.signature) for a in image.performed)

    def add(self, image) -> None:
        """Index one published image."""
        bucket_key = self._bucket_key(image)
        profile_key = self._profile_key(image)
        bucket = self._buckets.setdefault(bucket_key, {})
        profile = bucket.get(profile_key)
        if profile is None:
            profile = bucket[profile_key] = _Profile(image.performed)
        profile.images[image.image_id] = image
        self._locator[image.image_id] = (bucket_key, profile_key)
        self._n_images += 1

    def remove(self, image_id: str) -> None:
        """Drop one unpublished image (empty groups are pruned)."""
        bucket_key, profile_key = self._locator.pop(image_id)
        bucket = self._buckets[bucket_key]
        profile = bucket[profile_key]
        del profile.images[image_id]
        if not profile.images:
            del bucket[profile_key]
        if not bucket:
            del self._buckets[bucket_key]
        self._n_images -= 1

    def note_select(self, image_id: str) -> None:
        """Count one selection win for ``image_id``.

        The warehouse calls this for every winning query, including
        memo hits — which bypass :meth:`select` entirely — so the
        popularity figures reflect demand, not index traffic.  Kept
        separate from the index structures: an unpublished image's
        history survives (re-publishing continues its count).
        """
        self.popularity[image_id] = self.popularity.get(image_id, 0) + 1

    # -- queries -----------------------------------------------------------
    def _candidate_buckets(
        self, hardware: HardwareSpec, os: str, vm_type: Optional[str]
    ) -> List[Dict[ProfileKey, _Profile]]:
        if vm_type is not None:
            bucket = self._buckets.get(
                (vm_type, os, hardware.isa, hardware.memory_mb)
            )
            return [bucket] if bucket is not None else []
        want = (os, hardware.isa, hardware.memory_mb)
        return [
            bucket
            for key, bucket in self._buckets.items()
            if key[1:] == want
        ]

    def select(
        self,
        dag: ConfigDAG,
        hardware: HardwareSpec,
        os: str,
        vm_type: Optional[str] = None,
    ) -> Tuple[Optional[object], Optional[MatchResult]]:
        """Best-matching image, bit-identical to ``select_golden``.

        Returns ``(image, result)``; ``(None, None)`` when nothing
        matches.  ``dag`` is assumed validated by the caller (the
        warehouse's memoized entry point validates once per request).
        """
        self.stats["queries"] += 1
        best_key: Optional[Tuple[int, str]] = None
        best_image = None
        best_names: Optional[Tuple[str, ...]] = None
        considered = 0
        for bucket in self._candidate_buckets(hardware, os, vm_type):
            for profile in bucket.values():
                considered += len(profile.images)
                self.stats["profiles_tested"] += 1
                if match_performed(profile.performed, dag) is not None:
                    continue
                for image_id, image in profile.images.items():
                    hw = image.hardware
                    if (
                        hw.disk_gb < hardware.disk_gb
                        or hw.cpus < hardware.cpus
                    ):
                        continue
                    key = (-profile.depth, image_id)
                    if best_key is None or key < best_key:
                        best_key = key
                        best_image = image
                        best_names = profile.performed_names
        self.stats["images_skipped_by_bucket"] += (
            self._n_images - considered
        )
        if best_image is None or best_names is None:
            return None, None
        result = MatchResult(
            best_image.image_id,
            True,
            satisfied=best_names,
            residual=tuple(dag.residual_after(best_names)),
        )
        return best_image, result
