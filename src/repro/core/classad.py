"""Classads: attribute stores with a matchmaking expression language.

VMShop/VMPlant exchange machine descriptions as *classads* — ordered
(attribute, value) collections in the style of Condor matchmaking
[Raman et al., HPDC'98], which the paper adopts for VM descriptions
and query results.  This module implements:

* :class:`ClassAd` — a case-insensitive ordered attribute map whose
  values are booleans, numbers, strings, lists, or unevaluated
  expressions;
* a small expression language with Condor's three-valued logic
  (``UNDEFINED`` propagation, ``&&``/``||`` short-circuit semantics),
  comparison and arithmetic operators, meta-equality (``=?=``,
  ``=!=``), the ternary conditional, and cross-ad references through
  the ``other`` scope;
* bilateral matching: ``a.matches(b)`` evaluates ``a``'s
  ``requirements`` expression with ``b`` bound as ``other``.

Grammar (precedence low → high)::

    expr     := or ('?' expr ':' expr)?
    or       := and ('||' and)*
    and      := meta ('&&' meta)*
    meta     := cmp (('=?=' | '=!=') cmp)*
    cmp      := add (('==','!=','<','<=','>','>=') add)*
    add      := mul (('+'|'-') mul)*
    mul      := unary (('*'|'/'|'%') unary)*
    unary    := ('!'|'-')* atom
    atom     := literal | reference | '(' expr ')' | list
    reference:= IDENT ('.' IDENT)?

Two evaluation engines share one grammar:

* the **compiled engine** (default) — :class:`Expression` lowers its
  AST once into nested Python closures with the operator dispatch,
  scope selection and attribute-name lowering resolved at compile
  time, constant subexpressions folded, and the evaluation environment
  inlined into three positional arguments ``(ad, other, depth)`` so a
  ``matches`` call allocates nothing on the fast path;
* the **interpreter** — the original recursive ``_Node.eval`` tree
  walk over a :class:`_Scope`, kept verbatim as the reference
  implementation.  ``REPRO_CLASSAD_INTERP=1`` (or
  :func:`use_interpreter`) routes all evaluation through it; the
  differential suite in ``tests/test_classad_compiled.py`` pins the
  two engines to bit-identical behaviour.

``Expression(text)`` and :func:`evaluate` go through a bounded global
intern cache (:data:`_EXPR_CACHE_MAX` entries, LRU), so repeated
expression texts — the common case on the shop/broker bid path —
parse and compile exactly once.
"""

from __future__ import annotations

import os
import re
from collections import OrderedDict
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.core.errors import ClassAdError

__all__ = [
    "Undefined",
    "UNDEFINED",
    "ClassAd",
    "Expression",
    "evaluate",
    "equality_key",
    "use_interpreter",
    "parse_cache_info",
    "clear_parse_cache",
]


class Undefined:
    """Condor's UNDEFINED value (singleton)."""

    _instance: Optional["Undefined"] = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        return False


#: The UNDEFINED singleton.
UNDEFINED = Undefined()

Value = Union[bool, int, float, str, Undefined, List["Value"]]

#: A compiled expression: ``(ad, other, depth) -> Value``.
CompiledFn = Callable[[Optional["ClassAd"], Optional["ClassAd"], int], Value]

#: Escape hatch: route all evaluation through the reference
#: interpreter instead of the compiled closures.
_INTERP = os.environ.get("REPRO_CLASSAD_INTERP", "").strip().lower() in (
    "1", "true", "yes", "on",
)


def use_interpreter(enabled: bool) -> None:
    """Switch engines at runtime (benchmarks and differential tests)."""
    global _INTERP
    _INTERP = bool(enabled)


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<float>\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+)
  | (?P<int>\d+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op>=\?=|=!=|==|!=|<=|>=|\|\||&&|[-+*/%!<>()\[\],.?:;=])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"true", "false", "undefined"}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ClassAdError(
                f"lexical error at {text[pos:pos + 10]!r}"
            )
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, m.group()))
    tokens.append(("eof", ""))
    return tokens


# ---------------------------------------------------------------------------
# AST (shared by both engines; ``eval`` is the reference interpreter,
# ``compile`` lowers to closures)
# ---------------------------------------------------------------------------

#: Maximum nesting depth of attribute-valued expression references.
_MAX_REF_DEPTH = 32
_DEPTH_MSG = "expression recursion too deep"


class _Node:
    __slots__ = ()

    def eval(self, scope: "_Scope") -> Value:
        raise NotImplementedError

    def compile(self) -> CompiledFn:
        raise NotImplementedError

    def is_const(self) -> bool:
        return False


def _compile_node(node: _Node) -> CompiledFn:
    """Compile ``node``, folding closed constant subexpressions.

    Folding evaluates the compiled closure once with empty scopes; a
    :class:`ClassAdError` (e.g. ``1/0`` or ``5 && true``) keeps the
    node dynamic so the error surfaces at evaluation time exactly as
    the interpreter raises it.  List results are never folded — each
    evaluation must return a fresh list.
    """
    fn = node.compile()
    if node.is_const():
        try:
            value = fn(None, None, 0)
        except ClassAdError:
            return fn
        if isinstance(value, list):
            return fn
        return lambda ad, other, depth: value
    return fn


class _Literal(_Node):
    __slots__ = ("value",)

    def __init__(self, value: Value):
        self.value = value

    def eval(self, scope: "_Scope") -> Value:
        return self.value

    def compile(self) -> CompiledFn:
        value = self.value
        return lambda ad, other, depth: value

    def is_const(self) -> bool:
        return True


class _Ref(_Node):
    __slots__ = ("scope_name", "attr", "attr_low", "kind")

    def __init__(self, scope_name: Optional[str], attr: str):
        self.scope_name = scope_name.lower() if scope_name else None
        self.attr = attr
        self.attr_low = attr.lower()
        if self.scope_name is None:
            self.kind = "bare"
        elif self.scope_name in ("my", "self"):
            self.kind = "self"
        elif self.scope_name in ("other", "target"):
            self.kind = "other"
        else:
            self.kind = "unknown"

    def eval(self, scope: "_Scope") -> Value:
        return scope.lookup(self.scope_name, self.attr)

    def compile(self) -> CompiledFn:  # noqa: C901
        attr = self.attr_low
        kind = self.kind

        if kind == "unknown":
            scope_name = self.scope_name

            def unknown(ad, other, depth):
                raise ClassAdError(f"unknown scope {scope_name!r}")

            return unknown

        if kind == "other":

            def deref_other(ad, other, depth):
                if depth > _MAX_REF_DEPTH:
                    raise ClassAdError(_DEPTH_MSG)
                if other is None:
                    return UNDEFINED
                raw = other._attrs.get(attr, UNDEFINED)
                if isinstance(raw, Expression):
                    # Attribute-valued expressions evaluate in their
                    # own ad's scope, keeping the counterpart bound.
                    return raw._fn(other, ad, depth + 1)
                return raw

            return deref_other

        if kind == "self":

            def deref_self(ad, other, depth):
                if depth > _MAX_REF_DEPTH:
                    raise ClassAdError(_DEPTH_MSG)
                if ad is None:
                    return UNDEFINED
                raw = ad._attrs.get(attr, UNDEFINED)
                if isinstance(raw, Expression):
                    return raw._fn(ad, other, depth + 1)
                return raw

            return deref_self

        def deref_bare(ad, other, depth):
            if depth > _MAX_REF_DEPTH:
                raise ClassAdError(_DEPTH_MSG)
            if ad is None:
                return UNDEFINED
            raw = ad._attrs.get(attr, UNDEFINED)
            if isinstance(raw, Expression):
                return raw._fn(ad, other, depth + 1)
            if raw is UNDEFINED and other is not None:
                # Condor falls through to the target ad for bare names.
                raw = other._attrs.get(attr, UNDEFINED)
                if isinstance(raw, Expression):
                    return raw._fn(other, ad, depth + 1)
            return raw

        return deref_bare


class _ListNode(_Node):
    __slots__ = ("items",)

    def __init__(self, items: List[_Node]):
        self.items = items

    def eval(self, scope: "_Scope") -> Value:
        return [item.eval(scope) for item in self.items]

    def compile(self) -> CompiledFn:
        fns = tuple(_compile_node(item) for item in self.items)
        return lambda ad, other, depth: [
            fn(ad, other, depth) for fn in fns
        ]

    def is_const(self) -> bool:
        # Lists are mutable results: compile the elements but never
        # collapse the node itself into a shared constant.
        return False


class _Unary(_Node):
    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: _Node):
        self.op = op
        self.operand = operand

    def eval(self, scope: "_Scope") -> Value:
        val = self.operand.eval(scope)
        if isinstance(val, Undefined):
            return UNDEFINED
        if self.op == "!":
            if isinstance(val, bool):
                return not val
            raise ClassAdError(f"! applied to non-boolean {val!r}")
        if self.op == "-":
            if isinstance(val, bool) or not isinstance(val, (int, float)):
                raise ClassAdError(f"- applied to non-number {val!r}")
            return -val
        raise ClassAdError(f"unknown unary {self.op}")  # pragma: no cover

    def compile(self) -> CompiledFn:
        sub = _compile_node(self.operand)
        if self.op == "!":

            def negate(ad, other, depth):
                val = sub(ad, other, depth)
                if val is True:
                    return False
                if val is False:
                    return True
                if val is UNDEFINED:
                    return UNDEFINED
                raise ClassAdError(f"! applied to non-boolean {val!r}")

            return negate

        def minus(ad, other, depth):
            val = sub(ad, other, depth)
            if val is UNDEFINED:
                return UNDEFINED
            if isinstance(val, bool) or not isinstance(val, (int, float)):
                raise ClassAdError(f"- applied to non-number {val!r}")
            return -val

        return minus

    def is_const(self) -> bool:
        return self.operand.is_const()


def _is_number(val: Value) -> bool:
    return isinstance(val, (int, float)) and not isinstance(val, bool)


def _make_comparator(op: str) -> Callable[[Value, Value], Value]:
    """Typed comparison with Condor semantics, operator pre-bound."""
    py = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }[op]
    is_equality = op in ("==", "!=")

    def compare(lhs: Value, rhs: Value) -> Value:
        if _is_number(lhs) and _is_number(rhs):
            return py(lhs, rhs)
        if isinstance(lhs, str) and isinstance(rhs, str):
            # Condor string comparison is case-insensitive.
            return py(lhs.lower(), rhs.lower())
        if isinstance(lhs, bool) and isinstance(rhs, bool):
            if not is_equality:
                raise ClassAdError("ordering applied to booleans")
            return py(lhs, rhs)
        if op == "==":
            return False
        if op == "!=":
            return True
        raise ClassAdError(f"cannot compare {lhs!r} with {rhs!r}")

    return compare


def _make_arithmetic(op: str) -> Callable[[Value, Value], Value]:
    """Typed arithmetic with Condor semantics, operator pre-bound."""

    def arith(lhs: Value, rhs: Value) -> Value:
        if op == "+" and isinstance(lhs, str) and isinstance(rhs, str):
            return lhs + rhs
        if not (_is_number(lhs) and _is_number(rhs)):
            raise ClassAdError(
                f"arithmetic {op} on non-numbers {lhs!r}, {rhs!r}"
            )
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if rhs == 0:
                raise ClassAdError("division by zero")
            result = lhs / rhs
            if isinstance(lhs, int) and isinstance(rhs, int):
                return int(lhs // rhs) if lhs % rhs == 0 else result
            return result
        if rhs == 0:
            raise ClassAdError("modulo by zero")
        return lhs % rhs

    return arith


_COMPARATORS = {
    op: _make_comparator(op) for op in ("==", "!=", "<", "<=", ">", ">=")
}
_ARITHMETIC = {op: _make_arithmetic(op) for op in ("+", "-", "*", "/", "%")}


class _Binary(_Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: _Node, right: _Node):
        self.op = op
        self.left = left
        self.right = right

    def eval(self, scope: "_Scope") -> Value:  # noqa: C901
        op = self.op
        if op == "&&":
            lhs = self.left.eval(scope)
            if lhs is False:
                return False
            rhs = self.right.eval(scope)
            if rhs is False:
                return False
            if isinstance(lhs, Undefined) or isinstance(rhs, Undefined):
                return UNDEFINED
            if lhs is True and rhs is True:
                return True
            raise ClassAdError("&& applied to non-boolean")
        if op == "||":
            lhs = self.left.eval(scope)
            if lhs is True:
                return True
            rhs = self.right.eval(scope)
            if rhs is True:
                return True
            if isinstance(lhs, Undefined) or isinstance(rhs, Undefined):
                return UNDEFINED
            if lhs is False and rhs is False:
                return False
            raise ClassAdError("|| applied to non-boolean")

        lhs = self.left.eval(scope)
        rhs = self.right.eval(scope)

        if op == "=?=":
            return type(lhs) is type(rhs) and lhs == rhs
        if op == "=!=":
            return not (type(lhs) is type(rhs) and lhs == rhs)

        if isinstance(lhs, Undefined) or isinstance(rhs, Undefined):
            return UNDEFINED

        if op in ("==", "!=", "<", "<=", ">", ">="):
            if _is_number(lhs) and _is_number(rhs):
                pass
            elif isinstance(lhs, str) and isinstance(rhs, str):
                # Condor string comparison is case-insensitive.
                lhs, rhs = lhs.lower(), rhs.lower()
            elif isinstance(lhs, bool) and isinstance(rhs, bool):
                if op not in ("==", "!="):
                    raise ClassAdError("ordering applied to booleans")
            else:
                if op == "==":
                    return False
                if op == "!=":
                    return True
                raise ClassAdError(
                    f"cannot compare {lhs!r} with {rhs!r}"
                )
            return {
                "==": lambda a, b: a == b,
                "!=": lambda a, b: a != b,
                "<": lambda a, b: a < b,
                "<=": lambda a, b: a <= b,
                ">": lambda a, b: a > b,
                ">=": lambda a, b: a >= b,
            }[op](lhs, rhs)

        if op in ("+", "-", "*", "/", "%"):
            if op == "+" and isinstance(lhs, str) and isinstance(rhs, str):
                return lhs + rhs
            if not (_is_number(lhs) and _is_number(rhs)):
                raise ClassAdError(
                    f"arithmetic {op} on non-numbers {lhs!r}, {rhs!r}"
                )
            if op == "+":
                return lhs + rhs
            if op == "-":
                return lhs - rhs
            if op == "*":
                return lhs * rhs
            if op == "/":
                if rhs == 0:
                    raise ClassAdError("division by zero")
                result = lhs / rhs
                if isinstance(lhs, int) and isinstance(rhs, int):
                    return int(lhs // rhs) if lhs % rhs == 0 else result
                return result
            if op == "%":
                if rhs == 0:
                    raise ClassAdError("modulo by zero")
                return lhs % rhs
        raise ClassAdError(f"unknown operator {op}")  # pragma: no cover

    def compile(self) -> CompiledFn:  # noqa: C901
        op = self.op
        lf = _compile_node(self.left)
        rf = _compile_node(self.right)

        if op == "&&":

            def logical_and(ad, other, depth):
                lhs = lf(ad, other, depth)
                if lhs is False:
                    return False
                rhs = rf(ad, other, depth)
                if rhs is False:
                    return False
                if lhs is UNDEFINED or rhs is UNDEFINED:
                    return UNDEFINED
                if lhs is True and rhs is True:
                    return True
                raise ClassAdError("&& applied to non-boolean")

            return logical_and

        if op == "||":

            def logical_or(ad, other, depth):
                lhs = lf(ad, other, depth)
                if lhs is True:
                    return True
                rhs = rf(ad, other, depth)
                if rhs is True:
                    return True
                if lhs is UNDEFINED or rhs is UNDEFINED:
                    return UNDEFINED
                if lhs is False and rhs is False:
                    return False
                raise ClassAdError("|| applied to non-boolean")

            return logical_or

        if op == "=?=":

            def meta_eq(ad, other, depth):
                lhs = lf(ad, other, depth)
                rhs = rf(ad, other, depth)
                return type(lhs) is type(rhs) and lhs == rhs

            return meta_eq

        if op == "=!=":

            def meta_ne(ad, other, depth):
                lhs = lf(ad, other, depth)
                rhs = rf(ad, other, depth)
                return not (type(lhs) is type(rhs) and lhs == rhs)

            return meta_ne

        typed = _COMPARATORS.get(op) or _ARITHMETIC.get(op)
        if typed is None:  # pragma: no cover - parser emits known ops
            raise ClassAdError(f"unknown operator {op}")

        def binary(ad, other, depth):
            lhs = lf(ad, other, depth)
            rhs = rf(ad, other, depth)
            if lhs is UNDEFINED or rhs is UNDEFINED:
                return UNDEFINED
            return typed(lhs, rhs)

        return binary

    def is_const(self) -> bool:
        return self.left.is_const() and self.right.is_const()


def _fn_size(value: Value) -> Value:
    if isinstance(value, (str, list)):
        return len(value)
    raise ClassAdError("size() requires a string or list")


def _fn_member(needle: Value, haystack: Value) -> Value:
    if not isinstance(haystack, list):
        raise ClassAdError("member() requires a list second argument")
    for item in haystack:
        if isinstance(item, str) and isinstance(needle, str):
            if item.lower() == needle.lower():
                return True
        elif type(item) is type(needle) and item == needle:
            return True
    return False


def _numeric_fn(name, fn):
    def wrapped(*args: Value) -> Value:
        for arg in args:
            if not _is_number(arg):
                raise ClassAdError(f"{name}() requires numbers")
        return fn(*args)

    return wrapped


#: Built-in function table (Condor-style, case-insensitive names).
_FUNCTIONS: Dict[str, Any] = {
    "floor": _numeric_fn("floor", lambda x: int(x // 1)),
    "ceiling": _numeric_fn(
        "ceiling", lambda x: int(-((-x) // 1))
    ),
    "round": _numeric_fn("round", lambda x: int(x + 0.5) if x >= 0
                         else -int(-x + 0.5)),
    "min": _numeric_fn("min", min),
    "max": _numeric_fn("max", max),
    "strcat": lambda *args: "".join(
        a if isinstance(a, str) else _format_value(a) for a in args
    ),
    "tolower": lambda s: _require_str("toLower", s).lower(),
    "toupper": lambda s: _require_str("toUpper", s).upper(),
    "size": _fn_size,
    "member": _fn_member,
}


def _require_str(name: str, value: Value) -> str:
    if not isinstance(value, str):
        raise ClassAdError(f"{name}() requires a string")
    return value


class _Call(_Node):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: List[_Node]):
        self.name = name.lower()
        self.args = args
        if self.name not in _FUNCTIONS:
            raise ClassAdError(f"unknown function {name!r}")

    def eval(self, scope: "_Scope") -> Value:
        values = [arg.eval(scope) for arg in self.args]
        if any(isinstance(v, Undefined) for v in values):
            return UNDEFINED
        try:
            return _FUNCTIONS[self.name](*values)
        except TypeError as exc:
            raise ClassAdError(
                f"{self.name}(): bad arity ({len(values)} args)"
            ) from exc

    def compile(self) -> CompiledFn:
        fns = tuple(_compile_node(arg) for arg in self.args)
        func = _FUNCTIONS[self.name]
        name = self.name

        def call(ad, other, depth):
            values = [fn(ad, other, depth) for fn in fns]
            for value in values:
                if value is UNDEFINED:
                    return UNDEFINED
            try:
                return func(*values)
            except TypeError as exc:
                raise ClassAdError(
                    f"{name}(): bad arity ({len(values)} args)"
                ) from exc

        return call

    def is_const(self) -> bool:
        # All built-ins are pure, so a call over constants is constant.
        return all(arg.is_const() for arg in self.args)


class _Ternary(_Node):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond: _Node, then: _Node, orelse: _Node):
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def eval(self, scope: "_Scope") -> Value:
        cond = self.cond.eval(scope)
        if isinstance(cond, Undefined):
            return UNDEFINED
        if not isinstance(cond, bool):
            raise ClassAdError("ternary condition must be boolean")
        return self.then.eval(scope) if cond else self.orelse.eval(scope)

    def compile(self) -> CompiledFn:
        cf = _compile_node(self.cond)
        tf = _compile_node(self.then)
        of = _compile_node(self.orelse)

        def ternary(ad, other, depth):
            cond = cf(ad, other, depth)
            if cond is True:
                return tf(ad, other, depth)
            if cond is False:
                return of(ad, other, depth)
            if cond is UNDEFINED:
                return UNDEFINED
            raise ClassAdError("ternary condition must be boolean")

        return ternary

    def is_const(self) -> bool:
        return (
            self.cond.is_const()
            and self.then.is_const()
            and self.orelse.is_const()
        )


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    __slots__ = ("tokens", "pos")

    def __init__(self, tokens: List[Tuple[str, str]]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> Tuple[str, str]:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, text: str) -> None:
        kind, value = self.next()
        if value != text:
            raise ClassAdError(f"expected {text!r}, got {value!r}")

    def parse_expr(self) -> _Node:
        node = self.parse_or()
        if self.peek()[1] == "?":
            self.next()
            then = self.parse_expr()
            self.expect(":")
            orelse = self.parse_expr()
            return _Ternary(node, then, orelse)
        return node

    def _binary_chain(self, sub, ops) -> _Node:
        node = sub()
        while self.peek()[1] in ops:
            op = self.next()[1]
            node = _Binary(op, node, sub())
        return node

    def parse_or(self) -> _Node:
        return self._binary_chain(self.parse_and, ("||",))

    def parse_and(self) -> _Node:
        return self._binary_chain(self.parse_meta, ("&&",))

    def parse_meta(self) -> _Node:
        return self._binary_chain(self.parse_cmp, ("=?=", "=!="))

    def parse_cmp(self) -> _Node:
        return self._binary_chain(
            self.parse_add, ("==", "!=", "<", "<=", ">", ">=")
        )

    def parse_add(self) -> _Node:
        return self._binary_chain(self.parse_mul, ("+", "-"))

    def parse_mul(self) -> _Node:
        return self._binary_chain(self.parse_unary, ("*", "/", "%"))

    def parse_unary(self) -> _Node:
        if self.peek()[1] in ("!", "-"):
            op = self.next()[1]
            return _Unary(op, self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> _Node:
        kind, value = self.next()
        if kind == "int":
            return _Literal(int(value))
        if kind == "float":
            return _Literal(float(value))
        if kind == "string":
            return _Literal(_unescape(value[1:-1]))
        if kind == "ident":
            low = value.lower()
            if low == "true":
                return _Literal(True)
            if low == "false":
                return _Literal(False)
            if low == "undefined":
                return _Literal(UNDEFINED)
            if self.peek()[1] == "(":
                self.next()
                args: List[_Node] = []
                if self.peek()[1] != ")":
                    args.append(self.parse_expr())
                    while self.peek()[1] == ",":
                        self.next()
                        args.append(self.parse_expr())
                self.expect(")")
                return _Call(value, args)
            if self.peek()[1] == ".":
                self.next()
                kind2, attr = self.next()
                if kind2 != "ident":
                    raise ClassAdError(f"expected attribute after {value}.")
                return _Ref(value, attr)
            return _Ref(None, value)
        if value == "(":
            node = self.parse_expr()
            self.expect(")")
            return node
        if value == "[":
            items: List[_Node] = []
            if self.peek()[1] != "]":
                items.append(self.parse_expr())
                while self.peek()[1] == ",":
                    self.next()
                    items.append(self.parse_expr())
            self.expect("]")
            return _ListNode(items)
        raise ClassAdError(f"unexpected token {value!r}")


_UNESCAPE_MAP = {'"': '"', "\\": "\\", "n": "\n", "t": "\t", "r": "\r"}


def _unescape(body: str) -> str:
    # Single pass so an escaped backslash can never re-combine with a
    # following character into a second escape.
    return re.sub(
        r"\\(.)",
        lambda m: _UNESCAPE_MAP.get(m.group(1), m.group(0)),
        body,
    )


def _escape(body: str) -> str:
    return (
        body.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
        .replace("\r", "\\r")
    )


def _fold_constant(node: _Node) -> _Node:
    """Fold ``-<number>`` (arbitrarily nested) into a literal node."""
    if isinstance(node, _Unary) and node.op == "-":
        inner = _fold_constant(node.operand)
        if isinstance(inner, _Literal) and _is_number(inner.value):
            return _Literal(-inner.value)
    if isinstance(node, _ListNode):
        return _ListNode([_fold_constant(i) for i in node.items])
    return node


def equality_key(value: Any) -> Optional[tuple]:
    """Normalized hash key under classad ``==`` semantics, or None.

    Two scalar values satisfy ``a == b`` exactly when their keys are
    equal: strings compare case-insensitively, booleans only against
    booleans, and numbers cross int/float (``("n", 1)`` and
    ``("n", 1.0)`` are equal dict keys).  Lists, UNDEFINED and
    :class:`Expression` values are not equality-indexable and map to
    None.
    """
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", value)
    if isinstance(value, str):
        return ("s", value.lower())
    return None


# ---------------------------------------------------------------------------
# Expression: parse/intern cache + engine switch
# ---------------------------------------------------------------------------

#: Upper bound on the global expression intern cache (LRU).
_EXPR_CACHE_MAX = 4096
_EXPR_CACHE: "OrderedDict[str, Expression]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def parse_cache_info() -> Dict[str, int]:
    """Intern-cache statistics (size, bound, hits, misses)."""
    return {
        "size": len(_EXPR_CACHE),
        "max": _EXPR_CACHE_MAX,
        "hits": _cache_hits,
        "misses": _cache_misses,
    }


def clear_parse_cache() -> None:
    """Drop every interned expression (tests and benchmarks)."""
    _EXPR_CACHE.clear()


class Expression:
    """A parsed, compiled, interned, reusable classad expression.

    Construction is amortized O(1) for repeated texts: instances are
    interned in a bounded LRU cache keyed by the exact source text, so
    ``Expression(text) is Expression(text)`` while the cache holds the
    entry.  Each instance carries both the AST (the reference
    interpreter) and the compiled closure chain (the default engine).
    """

    __slots__ = ("text", "_ast", "_fn", "_constraints")

    def __new__(cls, text: str) -> "Expression":
        global _cache_hits, _cache_misses
        if cls is Expression:
            cached = _EXPR_CACHE.get(text)
            if cached is not None:
                _cache_hits += 1
                _EXPR_CACHE.move_to_end(text)
                return cached
            _cache_misses += 1
        self = super().__new__(cls)
        self.text = text
        parser = _Parser(_tokenize(text))
        ast = parser.parse_expr()
        if parser.peek()[0] != "eof":
            raise ClassAdError(
                f"trailing input after expression: {parser.peek()[1]!r}"
            )
        self._ast = ast
        self._fn = _compile_node(ast)
        self._constraints = None
        if cls is Expression:
            _EXPR_CACHE[text] = self
            if len(_EXPR_CACHE) > _EXPR_CACHE_MAX:
                _EXPR_CACHE.popitem(last=False)
        return self

    def __init__(self, text: str):
        # All construction happens in __new__ so interned cache hits
        # skip re-parsing entirely.
        pass

    def evaluate(
        self,
        ad: Optional["ClassAd"] = None,
        other: Optional["ClassAd"] = None,
    ) -> Value:
        """Evaluate against ``ad`` (``self``/``my``) and ``other``."""
        if _INTERP:
            return self._ast.eval(_Scope(ad, other))
        return self._fn(ad, other, 0)

    def evaluate_compiled(
        self,
        ad: Optional["ClassAd"] = None,
        other: Optional["ClassAd"] = None,
    ) -> Value:
        """Force the compiled engine (differential tests/benchmarks)."""
        return self._fn(ad, other, 0)

    def evaluate_interpreted(
        self,
        ad: Optional["ClassAd"] = None,
        other: Optional["ClassAd"] = None,
    ) -> Value:
        """Force the reference interpreter (differential tests)."""
        return self._ast.eval(_Scope(ad, other))

    def equality_constraints(self) -> Tuple[Tuple[str, str, tuple], ...]:
        """Top-level equality conjuncts, for index pre-filtering.

        Walks ``&&`` conjunctions from the root and extracts every
        ``<ref> == <scalar literal>`` (either side) as
        ``(attribute_lower, scope_kind, equality_key)`` with
        ``scope_kind`` one of ``"bare"``, ``"self"``, ``"other"``.
        A consumer may prune a candidate ``other`` ad when a
        constraint's attribute holds a non-Expression value whose
        :func:`equality_key` differs — that conjunct then evaluates to
        False or UNDEFINED, so the whole conjunction cannot be True.
        """
        cached = self._constraints
        if cached is None:
            out: List[Tuple[str, str, tuple]] = []
            stack: List[_Node] = [self._ast]
            while stack:
                node = stack.pop()
                if isinstance(node, _Binary):
                    if node.op == "&&":
                        stack.append(node.left)
                        stack.append(node.right)
                    elif node.op == "==":
                        for ref, lit in (
                            (node.left, node.right),
                            (node.right, node.left),
                        ):
                            if isinstance(ref, _Ref) and isinstance(
                                lit, _Literal
                            ):
                                key = equality_key(lit.value)
                                if key is not None and ref.kind != "unknown":
                                    out.append((ref.attr_low, ref.kind, key))
            cached = tuple(out)
            self._constraints = cached
        return cached

    def __reduce__(self):
        # Closures don't pickle; re-intern from the source text.
        return (Expression, (self.text,))

    def __repr__(self) -> str:
        return f"Expression({self.text!r})"


class _Scope:
    """Name-resolution context: the owning ad plus the matched ad.

    ``_depth`` counts the nesting of attribute-valued expression
    references and is threaded into the child scope each hop, so a
    reference chain deeper than :data:`_MAX_REF_DEPTH` raises
    :class:`ClassAdError` — the same bound the compiled closures
    enforce through their ``depth`` argument.
    """

    __slots__ = ("ad", "other", "_depth")

    def __init__(
        self,
        ad: Optional["ClassAd"],
        other: Optional["ClassAd"],
        depth: int = 0,
    ):
        self.ad = ad
        self.other = other
        self._depth = depth

    def lookup(self, scope_name: Optional[str], attr: str) -> Value:
        if self._depth > _MAX_REF_DEPTH:
            raise ClassAdError(_DEPTH_MSG)
        if scope_name in ("other", "target"):
            source = self.other
        elif scope_name in ("my", "self") or scope_name is None:
            source = self.ad
        else:
            raise ClassAdError(f"unknown scope {scope_name!r}")
        if source is None:
            return UNDEFINED
        raw = source.lookup(attr)
        if isinstance(raw, Expression):
            # Attribute-valued expressions evaluate in their own
            # ad's scope, keeping ``other`` bound.
            return raw._ast.eval(
                _Scope(
                    source,
                    self.other if source is self.ad else self.ad,
                    self._depth + 1,
                )
            )
        if scope_name is None and raw is UNDEFINED and self.other is not None:
            # Condor falls through to the target ad for bare names.
            raw2 = self.other.lookup(attr)
            if isinstance(raw2, Expression):
                return raw2._ast.eval(
                    _Scope(self.other, self.ad, self._depth + 1)
                )
            return raw2
        return raw


def evaluate(
    text: str,
    ad: Optional["ClassAd"] = None,
    other: Optional["ClassAd"] = None,
) -> Value:
    """Evaluate ``text`` in one call (parse/compile interned)."""
    return Expression(text).evaluate(ad, other)


class ClassAd:
    """Case-insensitive ordered attribute map with lazy expressions.

    Values set via :meth:`__setitem__` are stored verbatim; values set
    via :meth:`set_expression` are parsed and evaluated on access
    through :meth:`eval`.
    """

    __slots__ = ("_attrs", "_names")

    def __init__(self, attrs: Optional[Dict[str, Any]] = None):
        self._attrs: Dict[str, Value] = {}
        self._names: Dict[str, str] = {}  # lower → original spelling
        for key, value in (attrs or {}).items():
            self[key] = value

    # -- mapping interface -------------------------------------------------
    def __setitem__(self, key: str, value: Any) -> None:
        if isinstance(value, Expression):
            pass
        elif isinstance(value, (bool, int, float, str, Undefined)):
            pass
        elif isinstance(value, (list, tuple)):
            value = [self._check_element(v) for v in value]
        else:
            raise ClassAdError(
                f"unsupported classad value type {type(value).__name__}"
            )
        low = key.lower()
        self._names[low] = key
        self._attrs[low] = value

    @staticmethod
    def _check_element(value: Any) -> Value:
        # Lists accept the same element types scalars do, including
        # nested unevaluated expressions.
        if isinstance(
            value, (bool, int, float, str, Undefined, Expression)
        ):
            return value
        raise ClassAdError(
            f"unsupported list element type {type(value).__name__}"
        )

    def set_expression(self, key: str, text: str) -> None:
        """Store ``text`` as a lazily evaluated expression."""
        self[key] = Expression(text)

    def __getitem__(self, key: str) -> Value:
        val = self._attrs.get(key.lower(), UNDEFINED)
        if isinstance(val, Undefined):
            raise KeyError(key)
        return val

    def lookup(self, key: str) -> Value:
        """Like ``[]`` but returns UNDEFINED instead of raising."""
        return self._attrs.get(key.lower(), UNDEFINED)

    def get(self, key: str, default: Any = None) -> Any:
        val = self._attrs.get(key.lower(), UNDEFINED)
        return default if isinstance(val, Undefined) else val

    def __contains__(self, key: str) -> bool:
        return key.lower() in self._attrs

    def __delitem__(self, key: str) -> None:
        low = key.lower()
        del self._attrs[low]
        del self._names[low]

    def __iter__(self) -> Iterator[str]:
        return iter(self._names.values())

    def __len__(self) -> int:
        return len(self._attrs)

    def items(self) -> Iterator[Tuple[str, Value]]:
        for low, name in self._names.items():
            yield name, self._attrs[low]

    def update(self, other: Union["ClassAd", Dict[str, Any]]) -> None:
        source = other.items() if isinstance(other, ClassAd) else other.items()
        for key, value in source:
            self[key] = value

    def copy(self) -> "ClassAd":
        dup = ClassAd()
        dup._attrs = dict(self._attrs)
        dup._names = dict(self._names)
        return dup

    # -- evaluation ---------------------------------------------------------
    def eval(self, key: str, other: Optional["ClassAd"] = None) -> Value:
        """Evaluate attribute ``key`` (expressions resolved)."""
        raw = self.lookup(key)
        if isinstance(raw, Expression):
            return raw.evaluate(self, other)
        return raw

    def matches(self, other: "ClassAd") -> bool:
        """Unilateral match: does ``self.requirements`` accept ``other``?

        A missing requirements attribute accepts everything; an
        UNDEFINED result rejects (Condor semantics).
        """
        raw = self._attrs.get("requirements", UNDEFINED)
        if isinstance(raw, Undefined):
            return True
        if not isinstance(raw, Expression):
            return bool(raw is True)
        if _INTERP:
            return raw._ast.eval(_Scope(self, other)) is True
        return raw._fn(self, other, 0) is True

    def symmetric_match(self, other: "ClassAd") -> bool:
        """Bilateral match: both ads' requirements accept each other."""
        return self.matches(other) and other.matches(self)

    # -- serialization --------------------------------------------------------
    def to_string(self) -> str:
        """Condor-style ``[a = 1; b = "x"]`` text form."""
        parts = []
        for name, value in self.items():
            parts.append(f"{name} = {_format_value(value)}")
        return "[" + "; ".join(parts) + "]"

    @classmethod
    def from_string(cls, text: str) -> "ClassAd":
        """Parse the text form produced by :meth:`to_string`."""
        text = text.strip()
        if not (text.startswith("[") and text.endswith("]")):
            raise ClassAdError("classad text must be bracketed")
        parser = _Parser(_tokenize(text[1:-1]))
        ad = cls()
        while parser.peek()[0] != "eof":
            kind, name = parser.next()
            if kind != "ident":
                raise ClassAdError(f"expected attribute name, got {name!r}")
            parser.expect("=")
            start = parser.pos
            node = parser.parse_expr()
            end = parser.pos
            # Literals (including negated numbers) are stored as
            # values; anything else as an expression (re-rendered from
            # the consumed tokens).
            node = _fold_constant(node)
            if isinstance(node, _Literal):
                ad[name] = node.value
            elif isinstance(node, _ListNode) and all(
                isinstance(i, _Literal) for i in node.items
            ):
                ad[name] = [i.value for i in node.items]
            else:
                toks = [t[1] for t in parser.tokens[start:end]]
                ad.set_expression(name, " ".join(toks))
            if parser.peek()[1] == ";":
                parser.next()
        return ad

    def __getstate__(self):
        return (self._attrs, self._names)

    def __setstate__(self, state):
        self._attrs, self._names = state

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClassAd):
            return NotImplemented
        mine = {
            k: (v.text if isinstance(v, Expression) else v)
            for k, v in self._attrs.items()
        }
        theirs = {
            k: (v.text if isinstance(v, Expression) else v)
            for k, v in other._attrs.items()
        }
        return mine == theirs

    def __repr__(self) -> str:
        return f"ClassAd({self.to_string()})"


def _format_value(value: Value) -> str:
    if isinstance(value, Expression):
        return value.text
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, Undefined):
        return "undefined"
    if isinstance(value, str):
        return f'"{_escape(value)}"'
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(v) for v in value) + "]"
    return repr(value)
