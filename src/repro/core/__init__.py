"""Core VMPlants contribution: configuration DAGs, matching, classads.

This package holds everything from Sections 3.1–3.2 of the paper that
is independent of any particular substrate: the action/DAG
configuration model (:mod:`repro.core.actions`, :mod:`repro.core.dag`),
XML service encodings (:mod:`repro.core.dagxml`), the classad
attribute store and expression language (:mod:`repro.core.classad`),
machine specifications (:mod:`repro.core.spec`), and the three-part
golden-image matching criterion (:mod:`repro.core.matching`).
"""

from repro.core.actions import (
    Action,
    ActionResult,
    ActionScope,
    ActionStatus,
    ErrorPolicy,
)
from repro.core.classad import ClassAd, evaluate
from repro.core.dag import ConfigDAG
from repro.core.dagxml import (
    dag_from_xml,
    dag_to_xml,
    request_from_xml,
    request_to_xml,
)
from repro.core.errors import (
    ClassAdError,
    ConfigurationError,
    DAGError,
    MatchError,
    PlantError,
    ProtocolError,
    ReproError,
    ShopError,
    VNetError,
    WarehouseError,
)
from repro.core.matching import (
    MatchResult,
    match_image,
    match_performed,
    partial_order_test,
    prefix_test,
    select_golden,
    subset_test,
)
from repro.core.matchindex import MatchIndex
from repro.core.spec import (
    CreateRequest,
    DestroyRequest,
    HardwareSpec,
    NetworkSpec,
    QueryRequest,
    SoftwareSpec,
)

__all__ = [
    "Action",
    "ActionResult",
    "ActionScope",
    "ActionStatus",
    "ClassAd",
    "ClassAdError",
    "ConfigDAG",
    "ConfigurationError",
    "CreateRequest",
    "DAGError",
    "DestroyRequest",
    "ErrorPolicy",
    "HardwareSpec",
    "MatchError",
    "MatchIndex",
    "MatchResult",
    "NetworkSpec",
    "PlantError",
    "ProtocolError",
    "QueryRequest",
    "ReproError",
    "ShopError",
    "SoftwareSpec",
    "VNetError",
    "WarehouseError",
    "dag_from_xml",
    "dag_to_xml",
    "evaluate",
    "match_image",
    "match_performed",
    "partial_order_test",
    "prefix_test",
    "request_from_xml",
    "request_to_xml",
    "select_golden",
    "subset_test",
]
