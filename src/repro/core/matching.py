"""Golden-image matching: the Subset, Prefix and Partial Order tests.

Section 3.2 of the paper defines when a cached ("golden") image can
serve as the cloning base for a requested machine.  The image's
descriptor records the *sequence* of configuration operations already
performed on it; the request carries a configuration DAG.  The image
matches when:

* **Subset Test** — every performed operation appears in the request's
  DAG (the image has nothing the request does not want);
* **Prefix Test** — the performed set is downward-closed under the
  DAG's partial order (no performed action is missing a prerequisite);
* **Partial Order Test** — the order in which the operations were
  performed is consistent with the DAG's partial order.

Operations are identified by name, and a same-named operation with
different content (command/params/scope) is a *conflict* that fails
the match — the signature check below.  Hardware must also agree:
equal memory and OS/ISA, and image disk within the requested size.

:func:`select_golden` ranks all matching images and returns the one
leaving the fewest residual actions (deepest usable prefix), breaking
ties deterministically by image id — this is what makes cloning fast
when the warehouse already holds a well-configured machine.

The individual tests run on :class:`~repro.core.dag.ConfigDAG`'s
memoized structural caches (name→bit interning, ancestor-closure
bitsets), so each is a handful of machine-word operations per
performed action.  :func:`select_golden` remains the brute-force
reference: the warehouse's :class:`~repro.core.matchindex.MatchIndex`
must stay bit-identical to it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.actions import Action
from repro.core.dag import ConfigDAG
from repro.core.spec import HardwareSpec

__all__ = [
    "subset_test",
    "prefix_test",
    "partial_order_test",
    "signature_test",
    "hardware_test",
    "match_performed",
    "MatchResult",
    "match_image",
    "select_golden",
]


def subset_test(performed: Iterable[str], dag: ConfigDAG) -> bool:
    """True iff every performed operation is wanted by the request."""
    return dag.action_name_set().issuperset(performed)


def prefix_test(performed: Iterable[str], dag: ConfigDAG) -> bool:
    """True iff the performed set is downward-closed in the DAG.

    Assumes the subset test already passed; returns False otherwise.
    """
    return dag.is_prefix_set(performed)


def partial_order_test(performed: Sequence[str], dag: ConfigDAG) -> bool:
    """True iff the performed *sequence* respects the DAG partial order.

    For every pair the DAG orders (a before b) with both performed, a
    must come earlier in the performed sequence.  Duplicate entries in
    the sequence fail the test.
    """
    bits = dag.name_bits()
    ancestors = dag.ancestor_masks()
    performed_mask = 0
    steps = []
    for name in performed:
        bit = bits.get(name)
        if bit is None:
            return False
        bit = 1 << bit
        if performed_mask & bit:
            return False  # duplicate entry
        performed_mask |= bit
        steps.append((bit, ancestors[name]))
    seen = 0
    for bit, ancestor_mask in steps:
        # Any performed ancestor not executed yet came *after* name.
        if ancestor_mask & performed_mask & ~seen:
            return False
        seen |= bit
    return True


def signature_test(
    performed_actions: Iterable[Action], dag: ConfigDAG
) -> bool:
    """True iff no performed operation conflicts in content.

    A performed action with the same name as a DAG action but a
    different signature (command, params or scope changed) would leave
    the clone in a state the request did not ask for.
    """
    signatures = dag.signature_map()
    for action in performed_actions:
        expected = signatures.get(action.name)
        if expected is not None and expected != action.signature:
            return False
    return True


def match_performed(
    performed_actions: Sequence[Action], dag: ConfigDAG
) -> Optional[str]:
    """Run the four DAG-side Section 3.2 tests in criterion order.

    Returns the failure reason (``"signature-conflict"``, ``"subset"``,
    ``"prefix"`` or ``"partial-order"``) or None when the performed
    sequence is a usable prefix of ``dag``.  Shared by
    :func:`match_image`, the warehouse match index and the plant's
    live-VM ``extend`` admission check.
    """
    names = [a.name for a in performed_actions]
    if not signature_test(performed_actions, dag):
        return "signature-conflict"
    if not subset_test(names, dag):
        return "subset"
    if not prefix_test(names, dag):
        return "prefix"
    if not partial_order_test(names, dag):
        return "partial-order"
    return None


def hardware_test(image_hw: HardwareSpec, requested: HardwareSpec) -> bool:
    """Hardware agreement: equal ISA/memory, image disk fits request.

    The paper requires the golden machine to "match the client machine
    specification in terms of memory, disk, the operating system".
    Memory state is resumed, so memory must be exactly equal; the
    virtual disk must be at least as large as requested.
    """
    return (
        image_hw.isa == requested.isa
        and image_hw.memory_mb == requested.memory_mb
        and image_hw.disk_gb >= requested.disk_gb
        and image_hw.cpus >= requested.cpus
    )


@dataclass(frozen=True)
class MatchResult:
    """Outcome of matching one golden image against a request."""

    image_id: str
    matches: bool
    #: Why the match failed ("" when it matched).
    reason: str = ""
    #: Names of request actions already satisfied by the image.
    satisfied: Tuple[str, ...] = ()
    #: Topologically ordered actions still to execute after cloning.
    residual: Tuple[str, ...] = ()

    @property
    def depth(self) -> int:
        """How many request actions the image already satisfies."""
        return len(self.satisfied)


class ImageLike:
    """Structural protocol for matchable golden images.

    Anything with ``image_id``, ``hardware``, ``os``, ``vm_type`` and
    ``performed`` (ordered sequence of :class:`Action`) can be matched;
    the warehouse's ``GoldenImage`` satisfies this.
    """

    image_id: str
    hardware: HardwareSpec
    os: str
    vm_type: str
    performed: Sequence[Action]


def match_image(
    image: "ImageLike",
    dag: ConfigDAG,
    hardware: HardwareSpec,
    os: str,
    vm_type: Optional[str] = None,
) -> MatchResult:
    """Run the full Section 3.2 criterion for one image."""
    if vm_type is not None and image.vm_type != vm_type:
        return MatchResult(image.image_id, False, reason="vm-type")
    if image.os != os:
        return MatchResult(image.image_id, False, reason="os")
    if not hardware_test(image.hardware, hardware):
        return MatchResult(image.image_id, False, reason="hardware")

    performed_names = [a.name for a in image.performed]
    reason = match_performed(image.performed, dag)
    if reason is not None:
        return MatchResult(image.image_id, False, reason=reason)

    satisfied = tuple(performed_names)
    residual = tuple(dag.residual_after(performed_names))
    return MatchResult(
        image.image_id, True, satisfied=satisfied, residual=residual
    )


def select_golden(
    images: Iterable["ImageLike"],
    dag: ConfigDAG,
    hardware: HardwareSpec,
    os: str,
    vm_type: Optional[str] = None,
) -> Tuple[Optional["ImageLike"], Optional[MatchResult], List[MatchResult]]:
    """Pick the best-matching golden image.

    Returns ``(image, result, all_results)``; ``image`` is None when
    nothing matches.  Preference order: deepest satisfied prefix, then
    lexicographically smallest image id (deterministic).
    """
    dag.validate()
    all_results: List[MatchResult] = []
    best: Optional[Tuple[int, str]] = None
    best_image: Optional[ImageLike] = None
    best_result: Optional[MatchResult] = None
    for image in images:
        result = match_image(image, dag, hardware, os, vm_type)
        all_results.append(result)
        if not result.matches:
            continue
        key = (-result.depth, image.image_id)
        if best is None or key < best:
            best = key
            best_image = image
            best_result = result
    return best_image, best_result, all_results
