"""Configuration DAGs (Section 3.1).

A :class:`ConfigDAG` represents the software-configuration portion of
a VM creation request: action nodes connected by directed edges that
establish a partial execution order.  The special START and FINISH
nodes are implicit — every source node is an immediate successor of
START, every sink node an immediate predecessor of FINISH.  START
denotes a *blank* machine; the warehouse's golden images correspond to
downward-closed ("prefix") subsets of a DAG's actions.

Each action node carries an implicit error node realized by its
:class:`~repro.core.actions.ErrorPolicy`; clients may additionally
attach an explicit error-handling sub-graph (itself a ``ConfigDAG``)
to any action node.

All iteration orders are deterministic (insertion order, with
lexicographic tie-breaking in the topological sort) so runs are
reproducible.

Matching performance
--------------------
Warehouse matching (Section 3.2) runs the Subset/Prefix/Partial Order
tests against every candidate image on every bid, so the structural
queries they need — the action-name set, per-node ancestor closures,
the topological order, ``structure()`` — are memoized here.  Node
names are interned into a name→bit table and closures are stored as
int bitsets, making each test a few machine-word AND/OR operations
instead of per-call dict copies and DFS walks.  Every cache is
invalidated by the mutators (:meth:`ConfigDAG.add_action`,
:meth:`ConfigDAG.add_edge`, :meth:`ConfigDAG.attach_handler`), so a
DAG that is still being built behaves exactly like an uncached one.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.core.actions import Action, ActionScope
from repro.core.errors import DAGError

__all__ = ["ConfigDAG", "START", "FINISH"]

#: Reserved name of the implicit start node (blank machine).
START = "__start__"
#: Reserved name of the implicit finish node.
FINISH = "__finish__"

_RESERVED = frozenset({START, FINISH})


class ConfigDAG:
    """A directed acyclic graph of configuration actions."""

    def __init__(self) -> None:
        self._actions: Dict[str, Action] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        self._handlers: Dict[str, "ConfigDAG"] = {}
        #: Bumped on every mutation; guards every structural cache.
        self._version = 0
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop all memoized structure (called by every mutator)."""
        self._version += 1
        self._topo_cache: Optional[Tuple[str, ...]] = None
        self._names_cache: Optional[FrozenSet[str]] = None
        self._bits_cache: Optional[Dict[str, int]] = None
        self._anc_mask_cache: Optional[Dict[str, int]] = None
        self._pred_mask_cache: Optional[Dict[str, int]] = None
        self._sig_cache: Optional[Dict[str, str]] = None
        self._structure_cache: Optional[Tuple[Tuple, Tuple]] = None
        self._hash_cache: Optional[int] = None
        self._fingerprint_cache: Optional[Tuple[Tuple, str]] = None

    def _state_token(self) -> Tuple:
        """Version vector covering this DAG and its handler tree.

        ``structure()`` (and everything derived from it) depends on
        attached handlers, which remain externally mutable after
        :meth:`attach_handler`; the token lets those caches detect
        handler mutations at any nesting depth.
        """
        return (
            self._version,
            tuple(
                (name, handler._state_token())
                for name, handler in self._handlers.items()
            ),
        )

    # -- construction ----------------------------------------------------
    def add_action(self, action: Action) -> "ConfigDAG":
        """Add an action node.  Names must be unique and not reserved."""
        if action.name in _RESERVED:
            raise DAGError(f"{action.name!r} is a reserved node name")
        if action.name in self._actions:
            raise DAGError(f"duplicate action {action.name!r}")
        self._actions[action.name] = action
        self._succ[action.name] = []
        self._pred[action.name] = []
        self._invalidate()
        return self

    def add_edge(self, before: str, after: str) -> "ConfigDAG":
        """Require ``before`` to complete before ``after`` starts."""
        for node in (before, after):
            if node not in self._actions:
                raise DAGError(f"unknown action {node!r}")
        if before == after:
            raise DAGError(f"self-edge on {before!r}")
        if after in self._succ[before]:
            return self  # idempotent
        if self.is_before(after, before):
            raise DAGError(
                f"edge {before!r}->{after!r} would create a cycle"
            )
        self._succ[before].append(after)
        self._pred[after].append(before)
        self._invalidate()
        return self

    def attach_handler(self, action: str, handler: "ConfigDAG") -> "ConfigDAG":
        """Attach an explicit error-handling sub-graph to ``action``."""
        if action not in self._actions:
            raise DAGError(f"unknown action {action!r}")
        handler.validate()
        self._handlers[action] = handler
        self._invalidate()
        return self

    @classmethod
    def from_sequence(cls, actions: Iterable[Action]) -> "ConfigDAG":
        """Build a totally ordered (chain) DAG — the common case."""
        dag = cls()
        prev: Optional[str] = None
        for action in actions:
            dag.add_action(action)
            if prev is not None:
                dag.add_edge(prev, action.name)
            prev = action.name
        return dag

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._actions)

    def __contains__(self, name: str) -> bool:
        return name in self._actions

    def __iter__(self) -> Iterator[str]:
        return iter(self._actions)

    @property
    def actions(self) -> Mapping[str, Action]:
        """Read-only view of name → action."""
        return dict(self._actions)

    @property
    def handlers(self) -> Mapping[str, "ConfigDAG"]:
        """Explicit error-handling sub-graphs, keyed by action name."""
        return dict(self._handlers)

    def action(self, name: str) -> Action:
        """Look up an action by name."""
        try:
            return self._actions[name]
        except KeyError:
            raise DAGError(f"unknown action {name!r}") from None

    def handler_for(self, name: str) -> Optional["ConfigDAG"]:
        """The explicit error handler for ``name``, if any."""
        return self._handlers.get(name)

    def edges(self) -> List[Tuple[str, str]]:
        """All edges in insertion order."""
        return [
            (u, v) for u in self._actions for v in self._succ[u]
        ]

    def successors(self, name: str) -> List[str]:
        """Immediate successors of ``name``."""
        self.action(name)
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        """Immediate predecessors of ``name``."""
        self.action(name)
        return list(self._pred[name])

    def sources(self) -> List[str]:
        """Actions with no predecessors (successors of START)."""
        return [n for n in self._actions if not self._pred[n]]

    def sinks(self) -> List[str]:
        """Actions with no successors (predecessors of FINISH)."""
        return [n for n in self._actions if not self._succ[n]]

    def ancestors(self, name: str) -> Set[str]:
        """All actions ordered strictly before ``name``."""
        self.action(name)
        seen: Set[str] = set()
        stack = list(self._pred[name])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._pred[node])
        return seen

    def descendants(self, name: str) -> Set[str]:
        """All actions ordered strictly after ``name``."""
        self.action(name)
        seen: Set[str] = set()
        stack = list(self._succ[name])
        while stack:
            node = stack.pop()
            if node not in seen:
                seen.add(node)
                stack.extend(self._succ[node])
        return seen

    def is_before(self, first: str, second: str) -> bool:
        """True iff the DAG orders ``first`` strictly before ``second``."""
        return second in self.descendants(first)

    # -- structural caches (matching hot path) ---------------------------------
    def action_name_set(self) -> FrozenSet[str]:
        """Memoized frozen set of action names (Subset Test)."""
        cached = self._names_cache
        if cached is None:
            cached = self._names_cache = frozenset(self._actions)
        return cached

    def name_bits(self) -> Mapping[str, int]:
        """Memoized name→bit interning table (insertion order)."""
        cached = self._bits_cache
        if cached is None:
            cached = self._bits_cache = {
                name: bit for bit, name in enumerate(self._actions)
            }
        return cached

    def predecessor_masks(self) -> Mapping[str, int]:
        """Memoized name→bitset of immediate predecessors."""
        cached = self._pred_mask_cache
        if cached is None:
            bits = self.name_bits()
            cached = self._pred_mask_cache = {
                name: sum(1 << bits[p] for p in preds)
                for name, preds in self._pred.items()
            }
        return cached

    def ancestor_masks(self) -> Mapping[str, int]:
        """Memoized name→bitset of the full ancestor closure.

        Computed in one topological pass (closure[n] = OR over
        immediate predecessors p of closure[p] | bit[p]) instead of a
        per-query DFS — this is what makes the Partial Order Test
        cheap on the warehouse matching path.
        """
        cached = self._anc_mask_cache
        if cached is None:
            bits = self.name_bits()
            masks: Dict[str, int] = {}
            for name in self._topo():
                mask = 0
                for pred in self._pred[name]:
                    mask |= masks[pred] | (1 << bits[pred])
                masks[name] = mask
            cached = self._anc_mask_cache = masks
        return cached

    def signature_map(self) -> Mapping[str, str]:
        """Memoized name→signature map (signature-conflict test)."""
        cached = self._sig_cache
        if cached is None:
            cached = self._sig_cache = {
                name: action.signature
                for name, action in self._actions.items()
            }
        return cached

    def fingerprint(self) -> str:
        """Stable content digest of :meth:`structure` (memo keys).

        Two DAGs have equal fingerprints iff they are equal; the
        digest is a compact string so request-level memo tables avoid
        re-hashing deep structure tuples on every lookup.
        """
        token = self._state_token()
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == token:
            return cached[1]
        import hashlib

        digest = hashlib.sha256(
            repr(self.structure()).encode("utf-8")
        ).hexdigest()
        self._fingerprint_cache = (token, digest)
        return digest

    # -- validation and order ------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`DAGError` if violated.

        Cycles are prevented at ``add_edge`` time, so this re-checks
        with an independent algorithm (Kahn count) as defence in depth
        and validates attached handlers.
        """
        order = self.topological_sort()
        if len(order) != len(self._actions):
            raise DAGError("cycle detected")  # pragma: no cover - guarded
        for handler in self._handlers.values():
            handler.validate()

    def _topo(self) -> Tuple[str, ...]:
        """Memoized deterministic topological order."""
        cached = self._topo_cache
        if cached is not None:
            return cached
        indeg = {n: len(self._pred[n]) for n in self._actions}
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: List[str] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            node = heapq.heappop(ready)
            order.append(node)
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    heapq.heappush(ready, nxt)
        if len(order) != len(self._actions):
            raise DAGError("cycle detected")
        cached = self._topo_cache = tuple(order)
        return cached

    def topological_sort(self) -> List[str]:
        """Deterministic topological order (Kahn, lexicographic ties).

        This is the order in which the PPP schedules residual actions
        after cloning (Figure 3, step 3).
        """
        return list(self._topo())

    # -- prefix machinery (matching support) ----------------------------------
    def is_prefix_set(self, names: Iterable[str]) -> bool:
        """True iff ``names`` is a downward-closed subset of this DAG.

        A golden image whose performed operations form such a set can
        serve as the cloning base (Prefix Test, Section 3.2).
        """
        bits = self.name_bits()
        mask = 0
        chosen: List[str] = []
        for name in names:
            bit = bits.get(name)
            if bit is None:
                return False
            bit = 1 << bit
            if not mask & bit:
                mask |= bit
                chosen.append(name)
        pred_masks = self.predecessor_masks()
        for name in chosen:
            if pred_masks[name] & ~mask:
                return False
        return True

    def prefixes(self) -> Iterator[FrozenSet[str]]:
        """Enumerate all downward-closed subsets (antichains' ideals).

        Exponential in the width of the DAG; intended for tests and
        small warehouse-seeding utilities, not hot paths.
        """
        order = self.topological_sort()

        def extend(idx: int, current: FrozenSet[str]) -> Iterator[FrozenSet[str]]:
            if idx == len(order):
                yield current
                return
            node = order[idx]
            # Without node: none of its descendants may be chosen, but
            # enumeration over a topological order guarantees that by
            # the prefix check below.
            yield from extend(idx + 1, current)
            if set(self._pred[node]) <= current:
                yield from extend(idx + 1, current | {node})

        seen: Set[FrozenSet[str]] = set()
        for subset in extend(0, frozenset()):
            if self.is_prefix_set(subset) and subset not in seen:
                seen.add(subset)
                yield subset

    def residual_after(self, performed: Iterable[str]) -> List[str]:
        """Topologically ordered actions still to run after ``performed``.

        ``performed`` must be a prefix set; these are the actions the
        PPP executes on the clone (Figure 3, step 5).
        """
        done = set(performed)
        if not self.is_prefix_set(done):
            raise DAGError("performed set is not a prefix of this DAG")
        return [n for n in self._topo() if n not in done]

    def subdag(self, names: Iterable[str]) -> "ConfigDAG":
        """Induced sub-DAG over ``names`` (handlers carried along)."""
        chosen = set(names)
        sub = ConfigDAG()
        for name in self._actions:
            if name in chosen:
                sub.add_action(self._actions[name])
        for u, v in self.edges():
            if u in chosen and v in chosen:
                sub.add_edge(u, v)
        for name, handler in self._handlers.items():
            if name in chosen:
                sub.attach_handler(name, handler)
        return sub

    # -- structural equality --------------------------------------------------
    def structure(self) -> Tuple:
        """Canonical hashable structure (for equality and hashing).

        Memoized against the handler-aware state token, so attached
        handlers mutated after :meth:`attach_handler` still invalidate
        the cached tuple.
        """
        token = self._state_token()
        cached = self._structure_cache
        if cached is not None and cached[0] == token:
            return cached[1]
        tup = (
            tuple(sorted(a.signature for a in self._actions.values())),
            tuple(sorted(self.edges())),
            tuple(
                sorted(
                    (name, handler.structure())
                    for name, handler in self._handlers.items()
                )
            ),
        )
        self._structure_cache = (token, tup)
        self._hash_cache = None
        return tup

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigDAG):
            return NotImplemented
        return self.structure() == other.structure()

    def __hash__(self) -> int:
        structure = self.structure()  # refreshes _hash_cache validity
        if self._hash_cache is None:
            self._hash_cache = hash(structure)
        return self._hash_cache

    def __repr__(self) -> str:
        return (
            f"<ConfigDAG {len(self._actions)} actions,"
            f" {len(self.edges())} edges>"
        )

    # -- rendering -------------------------------------------------------------
    def to_dot(self, name: str = "config") -> str:
        """Graphviz dot rendering (START/FINISH shown explicitly).

        Guest actions render as ellipses, host actions as boxes;
        actions with explicit error handlers carry a dashed border.
        """
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        lines.append('  "__start__" [label="START", shape=circle];')
        lines.append('  "__finish__" [label="FINISH", shape=doublecircle];')
        for node, action in self._actions.items():
            shape = (
                "box" if action.scope is ActionScope.HOST else "ellipse"
            )
            style = (
                ', style="dashed"' if node in self._handlers else ""
            )
            lines.append(
                f'  "{node}" [label="{node}", shape={shape}{style}];'
            )
        for source in self.sources():
            lines.append(f'  "__start__" -> "{source}";')
        for u, v in self.edges():
            lines.append(f'  "{u}" -> "{v}";')
        for sink in self.sinks():
            lines.append(f'  "{sink}" -> "__finish__";')
        if not self._actions:
            lines.append('  "__start__" -> "__finish__";')
        lines.append("}")
        return "\n".join(lines)

    # -- convenience -----------------------------------------------------------
    def guest_actions(self) -> List[str]:
        """Names of guest-scoped actions in topological order."""
        return [
            n
            for n in self.topological_sort()
            if self._actions[n].scope is ActionScope.GUEST
        ]

    def host_actions(self) -> List[str]:
        """Names of host-scoped actions in topological order."""
        return [
            n
            for n in self.topological_sort()
            if self._actions[n].scope is ActionScope.HOST
        ]
