"""Machine specifications and service request objects.

A VM creation request (Section 3.1) carries three specifications:

* *hardware* — instruction set, memory, disk, CPUs; used by VMShop and
  the PPP to locate resources and golden images;
* *network* — the client's domain identity and VNET proxy endpoint,
  used for host-only network allocation and bridging (Section 3.3);
* *software* — the operating system plus the configuration DAG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.classad import ClassAd
from repro.core.dag import ConfigDAG

__all__ = [
    "HardwareSpec",
    "NetworkSpec",
    "SoftwareSpec",
    "CreateRequest",
    "QueryRequest",
    "DestroyRequest",
]


@dataclass(frozen=True)
class HardwareSpec:
    """Hardware requirements for the virtual machine."""

    isa: str = "x86"
    memory_mb: int = 64
    disk_gb: float = 4.0
    cpus: int = 1

    def __post_init__(self) -> None:
        if self.memory_mb <= 0:
            raise ValueError("memory_mb must be positive")
        if self.disk_gb <= 0:
            raise ValueError("disk_gb must be positive")
        if self.cpus <= 0:
            raise ValueError("cpus must be positive")

    def to_classad(self) -> ClassAd:
        """Classad form for matchmaking/bidding."""
        return ClassAd(
            {
                "isa": self.isa,
                "memory_mb": self.memory_mb,
                "disk_gb": self.disk_gb,
                "cpus": self.cpus,
            }
        )


@dataclass(frozen=True)
class NetworkSpec:
    """Client network identity for VNET bridging."""

    #: The client's administrative domain (e.g. ``"ufl.edu"``).
    domain: str = "local"
    #: VNET proxy host:port in the client domain, if bridging is wanted.
    proxy_host: Optional[str] = None
    proxy_port: Optional[int] = None
    #: Credentials uniquely identifying the client domain.
    credentials: str = ""

    @property
    def wants_vnet(self) -> bool:
        """True when the client requested a VNET bridge."""
        return self.proxy_host is not None


@dataclass(frozen=True)
class SoftwareSpec:
    """Operating system plus configuration DAG."""

    os: str = "linux-mandrake-8.1"
    dag: ConfigDAG = field(default_factory=ConfigDAG)

    def __post_init__(self) -> None:
        self.dag.validate()


@dataclass(frozen=True)
class CreateRequest:
    """A Create-VM service request."""

    hardware: HardwareSpec
    software: SoftwareSpec
    network: NetworkSpec = field(default_factory=NetworkSpec)
    client_id: str = "anonymous"
    #: Preferred VM technology (``"vmware"``, ``"uml"``) or None = any.
    vm_type: Optional[str] = None
    #: Optional classad matchmaking expression evaluated against each
    #: plant's description ad (bound as ``other``); plants that do not
    #: satisfy it decline to bid.  Example:
    #: ``"other.networks_free >= 2 && other.active_vms < 8"``.
    requirements: Optional[str] = None
    #: Optional lease (seconds): the plant's reaper collects the VM
    #: automatically once the lease expires (Grid-service lifetime
    #: management).  None = run until explicitly destroyed.
    lease_s: Optional[float] = None

    @property
    def dag(self) -> ConfigDAG:
        """Shortcut to the configuration DAG."""
        return self.software.dag

    def to_classad(self) -> ClassAd:
        """The request as a matchmaking classad.

        Memoized: the dataclass is frozen, so the ad is built once and
        shared across every plant this request is bid against.
        Callers must treat it as read-only (``copy()`` to mutate);
        ``dataclasses.replace`` yields a new request with a fresh memo.
        """
        memo = getattr(self, "_classad_memo", None)
        if memo is not None:
            return memo
        ad = self.hardware.to_classad()
        ad["client"] = self.client_id
        ad["domain"] = self.network.domain
        ad["os"] = self.software.os
        if self.vm_type is not None:
            ad["vm_type"] = self.vm_type
        if self.requirements is not None:
            ad.set_expression("requirements", self.requirements)
        object.__setattr__(self, "_classad_memo", ad)
        return ad


@dataclass(frozen=True)
class QueryRequest:
    """Query the classad of an active VM."""

    vmid: str
    #: Specific attributes to return; empty means the whole classad.
    attributes: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DestroyRequest:
    """Destroy (collect) an active VM."""

    vmid: str
    #: Commit redo-log changes back to a new warehouse image?
    commit: bool = False
    #: Name under which to publish the committed image.
    publish_as: Optional[str] = None
