"""XML encodings of configuration DAGs and service requests.

The prototype's services are "specified as XML strings" (Section 4.1):
a Create-VM request carries the configuration DAG inline.  This module
round-trips :class:`~repro.core.dag.ConfigDAG` and
:class:`~repro.core.spec.CreateRequest` through the schema below::

    <vmplant-request service="create" client="..." vm-type="vmware">
      <hardware isa="x86" memory-mb="32" disk-gb="4.0" cpus="1"/>
      <network domain="acis.ufl.edu" proxy-host="..." proxy-port="..."
               credentials="..."/>
      <software os="linux-mandrake-8.1">
        <dag>
          <action name="install-vnc" scope="guest"
                  command="rpm -i {pkg}" on-error="retry" retries="2">
            <param key="pkg" value="'vnc-server.rpm'"/>
            <output name="vnc_port"/>
          </action>
          <edge from="install-redhat" to="install-vnc"/>
          <handler for="install-vnc">
            <dag>...</dag>
          </handler>
        </dag>
      </software>
    </vmplant-request>

Parsing is strict: unknown elements, missing attributes and malformed
structure raise :class:`~repro.core.errors.ProtocolError`.
"""

from __future__ import annotations

import ast
import xml.etree.ElementTree as ET
from typing import Dict

from repro.core.actions import Action, ActionScope, ErrorPolicy
from repro.core.dag import ConfigDAG
from repro.core.errors import DAGError, ProtocolError
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)

__all__ = [
    "dag_to_element",
    "dag_from_element",
    "dag_to_xml",
    "dag_from_xml",
    "request_to_xml",
    "request_from_xml",
]


# ---------------------------------------------------------------------------
# DAG <-> element
# ---------------------------------------------------------------------------


def dag_to_element(dag: ConfigDAG) -> ET.Element:
    """Encode a DAG as an ``<dag>`` element."""
    root = ET.Element("dag")
    for name, action in dag.actions.items():
        el = ET.SubElement(
            root,
            "action",
            {
                "name": name,
                "scope": action.scope.value,
                "command": action.command,
                "on-error": action.on_error.value,
                "retries": str(action.retries),
            },
        )
        for key, value in action.params:
            ET.SubElement(el, "param", {"key": key, "value": value})
        for out in action.outputs:
            ET.SubElement(el, "output", {"name": out})
    for u, v in dag.edges():
        ET.SubElement(root, "edge", {"from": u, "to": v})
    for name, handler in dag.handlers.items():
        hel = ET.SubElement(root, "handler", {"for": name})
        hel.append(dag_to_element(handler))
    return root


def dag_from_element(root: ET.Element) -> ConfigDAG:
    """Decode an ``<dag>`` element (strict)."""
    if root.tag != "dag":
        raise ProtocolError(f"expected <dag>, got <{root.tag}>")
    dag = ConfigDAG()
    handlers = []
    for child in root:
        if child.tag == "action":
            dag.add_action(_action_from_element(child))
        elif child.tag == "edge":
            pass  # second pass
        elif child.tag == "handler":
            handlers.append(child)
        else:
            raise ProtocolError(f"unexpected element <{child.tag}> in <dag>")
    try:
        for child in root:
            if child.tag == "edge":
                u = _require(child, "from")
                v = _require(child, "to")
                dag.add_edge(u, v)
        for child in handlers:
            target = _require(child, "for")
            inner = list(child)
            if len(inner) != 1:
                raise ProtocolError("<handler> must contain exactly one <dag>")
            dag.attach_handler(target, dag_from_element(inner[0]))
    except DAGError as exc:
        raise ProtocolError(str(exc)) from exc
    return dag


def _action_from_element(el: ET.Element) -> Action:
    name = _require(el, "name")
    scope = el.get("scope", ActionScope.GUEST.value)
    command = el.get("command", "")
    on_error = el.get("on-error", ErrorPolicy.FAIL.value)
    retries = int(el.get("retries", "0"))
    params: Dict[str, object] = {}
    outputs = []
    for child in el:
        if child.tag == "param":
            key = _require(child, "key")
            rep = _require(child, "value")
            try:
                params[key] = ast.literal_eval(rep)
            except (ValueError, SyntaxError):
                params[key] = rep
        elif child.tag == "output":
            outputs.append(_require(child, "name"))
        else:
            raise ProtocolError(
                f"unexpected element <{child.tag}> in <action>"
            )
    try:
        return Action(
            name=name,
            scope=ActionScope(scope),
            command=command,
            params=params,
            outputs=tuple(outputs),
            on_error=ErrorPolicy(on_error),
            retries=retries,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc


#: Public alias: the warehouse reuses the strict action parser.
action_from_element = _action_from_element


def _require(el: ET.Element, attr: str) -> str:
    value = el.get(attr)
    if value is None:
        raise ProtocolError(f"<{el.tag}> missing required attribute {attr!r}")
    return value


def dag_to_xml(dag: ConfigDAG) -> str:
    """DAG as an XML string."""
    return ET.tostring(dag_to_element(dag), encoding="unicode")


def dag_from_xml(text: str) -> ConfigDAG:
    """Parse a DAG from an XML string."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ProtocolError(f"malformed XML: {exc}") from exc
    return dag_from_element(root)


# ---------------------------------------------------------------------------
# CreateRequest <-> XML
# ---------------------------------------------------------------------------


def request_to_xml(request: CreateRequest) -> str:
    """Encode a Create-VM request as an XML string."""
    root = ET.Element(
        "vmplant-request",
        {"service": "create", "client": request.client_id},
    )
    if request.vm_type is not None:
        root.set("vm-type", request.vm_type)
    if request.requirements is not None:
        root.set("requirements", request.requirements)
    if request.lease_s is not None:
        root.set("lease-s", repr(request.lease_s))
    hw = request.hardware
    ET.SubElement(
        root,
        "hardware",
        {
            "isa": hw.isa,
            "memory-mb": str(hw.memory_mb),
            "disk-gb": repr(hw.disk_gb),
            "cpus": str(hw.cpus),
        },
    )
    net = request.network
    net_attrs = {"domain": net.domain}
    if net.proxy_host is not None:
        net_attrs["proxy-host"] = net.proxy_host
    if net.proxy_port is not None:
        net_attrs["proxy-port"] = str(net.proxy_port)
    if net.credentials:
        net_attrs["credentials"] = net.credentials
    ET.SubElement(root, "network", net_attrs)
    sw = ET.SubElement(root, "software", {"os": request.software.os})
    sw.append(dag_to_element(request.software.dag))
    return ET.tostring(root, encoding="unicode")


def request_from_xml(text: str) -> CreateRequest:
    """Parse a Create-VM request from an XML string (strict)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ProtocolError(f"malformed XML: {exc}") from exc
    if root.tag != "vmplant-request":
        raise ProtocolError(f"expected <vmplant-request>, got <{root.tag}>")
    if root.get("service") != "create":
        raise ProtocolError("only service=\"create\" requests carry a body")

    hw_el = root.find("hardware")
    if hw_el is None:
        raise ProtocolError("missing <hardware>")
    try:
        hardware = HardwareSpec(
            isa=hw_el.get("isa", "x86"),
            memory_mb=int(_require(hw_el, "memory-mb")),
            disk_gb=float(_require(hw_el, "disk-gb")),
            cpus=int(hw_el.get("cpus", "1")),
        )
    except ValueError as exc:
        raise ProtocolError(f"bad hardware spec: {exc}") from exc

    net_el = root.find("network")
    if net_el is not None:
        port = net_el.get("proxy-port")
        network = NetworkSpec(
            domain=net_el.get("domain", "local"),
            proxy_host=net_el.get("proxy-host"),
            proxy_port=int(port) if port is not None else None,
            credentials=net_el.get("credentials", ""),
        )
    else:
        network = NetworkSpec()

    sw_el = root.find("software")
    if sw_el is None:
        raise ProtocolError("missing <software>")
    dag_el = sw_el.find("dag")
    if dag_el is None:
        raise ProtocolError("missing <dag> inside <software>")
    software = SoftwareSpec(
        os=sw_el.get("os", "linux-mandrake-8.1"),
        dag=dag_from_element(dag_el),
    )

    return CreateRequest(
        hardware=hardware,
        software=software,
        network=network,
        client_id=root.get("client", "anonymous"),
        vm_type=root.get("vm-type"),
        requirements=root.get("requirements"),
        lease_s=(
            float(root.get("lease-s"))
            if root.get("lease-s") is not None
            else None
        ),
    )
