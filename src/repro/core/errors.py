"""Exception hierarchy for the VMPlants reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DAGError",
    "ClassAdError",
    "MatchError",
    "ConfigurationError",
    "ProtocolError",
    "WarehouseError",
    "StorageError",
    "PlantError",
    "ShopError",
    "DeadlineExceeded",
    "VNetError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class DAGError(ReproError):
    """Malformed configuration DAG (cycle, unknown node, duplicate)."""


class ClassAdError(ReproError):
    """Classad parse or evaluation failure."""


class MatchError(ReproError):
    """Golden-image matching could not be performed."""


class ConfigurationError(ReproError):
    """A configuration action failed during VM production.

    Carries the name of the failing action and any partial results so a
    caller (or an error-handling sub-graph) can react.
    """

    def __init__(self, action: str, message: str, results=None):
        super().__init__(f"action {action!r}: {message}")
        self.action = action
        self.results = list(results or [])


class ProtocolError(ReproError):
    """Malformed service request/response."""


class WarehouseError(ReproError):
    """VM Warehouse failure (missing image, publish conflict)."""


class StorageError(ReproError):
    """Warehouse storage-path failure (NFS outage, aborted transfer)."""


class PlantError(ReproError):
    """VMPlant-level failure (no capacity, unknown VM)."""


class ShopError(ReproError):
    """VMShop-level failure (no bids, unknown VMID)."""


class DeadlineExceeded(ShopError):
    """A shop-side recovery deadline expired before the work finished."""


class VNetError(ReproError):
    """Virtual-networking failure (host-only network exhaustion)."""
