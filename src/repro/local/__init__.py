"""Real-filesystem substrate: directory-backed VMs.

Where :mod:`repro.sim` *models* the hypervisor, this package does the
actual mechanics on disk so the full control path can be exercised for
real: golden images are directories of real files
(:mod:`repro.local.image`), cloning soft-links the base disk and
replicates small state exactly as the VMware production line does, and
configuration scripts run as genuine ``sh`` subprocesses inside the
clone's guest directory (:mod:`repro.local.localline`).
"""

from repro.local.image import LocalImageStore, materialize_image
from repro.local.localline import LocalProductionLine

__all__ = [
    "LocalImageStore",
    "LocalProductionLine",
    "materialize_image",
]
