"""A production line that does the real thing on the local filesystem.

``LocalProductionLine`` implements the exact clone-and-configure
mechanics of Section 4.1 against directories instead of a hypervisor:

* **clone** replicates the VM configuration file, memory-state file
  and base redo log into the clone's directory, and either soft-links
  (LINK) or byte-copies (COPY) the base virtual-disk chunks — so the
  "use links rather than file copies" optimization is literally
  observable with ``os.path.islink``;
* **execute_action** renders the action into a shell script, writes it
  into a virtual CD-ROM directory, and runs it with ``sh`` inside the
  clone's guest directory with the request context exported as
  ``VMPLANT_*`` environment variables; declared outputs are parsed
  from stdout;
* **collect** commits nothing and removes the clone directory (the
  non-persistent-disk discard path).

Operations charge zero simulation time (they take real wall time
instead), so the same PPP/shop code drives this line unchanged.
"""

from __future__ import annotations

import os
import shutil
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Generator, Optional

from repro.core.actions import Action, ActionResult, ActionScope, ActionStatus
from repro.core.errors import PlantError
from repro.core.spec import CreateRequest
from repro.local.image import LocalImageStore
from repro.plant.guest import build_iso, fabricate_outputs, parse_outputs
from repro.plant.production import CloneMode, ProductionLine, VirtualMachine
from repro.sim.kernel import Environment

__all__ = ["LocalBackend", "LocalProductionLine"]


@dataclass
class LocalBackend:
    """On-disk state of one local clone."""

    clone_dir: Path
    running: bool = False

    @property
    def guest_dir(self) -> Path:
        """The clone's guest filesystem root."""
        return self.clone_dir / "guest"

    @property
    def cdrom_dir(self) -> Path:
        """Where virtual CD-ROM images are 'connected'."""
        return self.clone_dir / "cdrom"


class LocalProductionLine(ProductionLine):
    """Directory-backed clone-and-configure."""

    def __init__(
        self,
        env: Environment,
        store: LocalImageStore,
        run_dir: Path,
        vm_type: str = "vmware",
        script_timeout_s: float = 30.0,
    ):
        self.env = env
        self.store = store
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.vm_type = vm_type
        self.script_timeout_s = script_timeout_s

    # -- cloning ------------------------------------------------------------
    def clone(
        self, vm: VirtualMachine, mode: CloneMode = CloneMode.LINK
    ) -> Generator:
        image = vm.image
        src = self.store.path_of(image.image_id)
        dst = self.run_dir / vm.vmid
        if dst.exists():
            raise PlantError(f"clone directory {dst} already exists")
        dst.mkdir(parents=True)
        try:
            shutil.copy2(src / "machine.cfg", dst / "machine.cfg")
            memory = src / "memory.vmss"
            if memory.exists():
                # The memory state must be copied (GSX restriction the
                # paper notes); it cannot be shared between clones.
                shutil.copy2(memory, dst / "memory.vmss")
            shutil.copy2(src / "redo-base.log", dst / "redo.log")
            disk_dir = dst / "disk"
            disk_dir.mkdir()
            for chunk in self.store.disk_chunks(image.image_id):
                target = disk_dir / chunk.name
                if mode is CloneMode.LINK:
                    os.symlink(chunk.resolve(), target)
                else:
                    shutil.copy2(chunk, target)
        except OSError as exc:
            shutil.rmtree(dst, ignore_errors=True)
            raise PlantError(f"clone of {vm.vmid} failed: {exc}") from exc

        backend = LocalBackend(clone_dir=dst, running=True)
        backend.guest_dir.mkdir()
        backend.cdrom_dir.mkdir()
        (dst / "status").write_text("running\n")
        vm.backend = backend
        yield self.env.timeout(0.0)

    # -- configuration ---------------------------------------------------------
    def execute_action(
        self,
        vm: VirtualMachine,
        action: Action,
        context: Dict[str, str],
    ) -> Generator:
        backend: LocalBackend = vm.backend
        if backend is None or not backend.running:
            raise PlantError(f"VM {vm.vmid} has no running backend")
        yield self.env.timeout(0.0)
        if action.scope is ActionScope.HOST:
            # Host-side operations are journalled on the clone.
            with open(backend.clone_dir / "host-ops.log", "a") as fh:
                fh.write(f"{action.name}: {action.rendered_command()}\n")
            return ActionResult(
                action=action.name,
                status=ActionStatus.OK,
                outputs=tuple(
                    sorted(fabricate_outputs(action, context).items())
                ),
            )

        # Guest path: write the ISO contents, mount, execute with sh.
        iso = build_iso(action, context)
        iso_dir = backend.cdrom_dir / iso.name
        iso_dir.mkdir(parents=True, exist_ok=True)
        script_path: Optional[Path] = None
        for rel, content in iso.files:
            path = iso_dir / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(content)
            if rel.endswith(".sh"):
                script_path = path
        assert script_path is not None
        env_vars = dict(os.environ)
        for key, value in context.items():
            env_vars[f"VMPLANT_{key.upper()}"] = str(value)
        try:
            proc = subprocess.run(
                ["sh", str(script_path)],
                cwd=backend.guest_dir,
                env=env_vars,
                capture_output=True,
                text=True,
                timeout=self.script_timeout_s,
            )
        except subprocess.TimeoutExpired:
            return ActionResult(
                action=action.name,
                status=ActionStatus.FAILED,
                message=f"script timed out after {self.script_timeout_s}s",
            )
        # Guest writes land in the redo log.
        with open(backend.clone_dir / "redo.log", "ab") as fh:
            fh.write(proc.stdout.encode("utf-8", "replace"))
        if proc.returncode != 0:
            return ActionResult(
                action=action.name,
                status=ActionStatus.FAILED,
                stdout=proc.stdout,
                message=(
                    f"exit status {proc.returncode}: "
                    f"{proc.stderr.strip()[:200]}"
                ),
            )
        outputs = fabricate_outputs(action, context)
        outputs.update(parse_outputs(proc.stdout, action))
        return ActionResult(
            action=action.name,
            status=ActionStatus.OK,
            outputs=tuple(sorted(outputs.items())),
            stdout=proc.stdout,
        )

    # -- collection -------------------------------------------------------------
    def collect(self, vm: VirtualMachine) -> Generator:
        backend: Optional[LocalBackend] = vm.backend
        yield self.env.timeout(0.0)
        if backend is None:
            return
        backend.running = False
        clone_dir = backend.clone_dir.resolve()
        run_dir = self.run_dir.resolve()
        # Never delete anything outside our run directory.
        if run_dir in clone_dir.parents and clone_dir.exists():
            shutil.rmtree(clone_dir)

    def can_host(self, request: CreateRequest) -> bool:
        return True

    # -- migration: the directory actually moves -----------------------------
    def supports_migration(self) -> bool:
        return True

    def suspend(self, vm: VirtualMachine) -> Generator:
        backend: LocalBackend = vm.backend
        if backend is None or not backend.running:
            raise PlantError(f"VM {vm.vmid} is not running on this line")
        (backend.clone_dir / "status").write_text("suspended\n")
        yield self.env.timeout(0.0)

    def migration_payload_mb(self, vm: VirtualMachine) -> float:
        backend: LocalBackend = vm.backend
        total = 0
        for root, _dirs, files in os.walk(backend.clone_dir):
            for name in files:
                path = Path(root) / name
                if not path.is_symlink():
                    total += path.stat().st_size
        return total / (1024.0 * 1024.0)

    def export_release(self, vm: VirtualMachine) -> Generator:
        backend: LocalBackend = vm.backend
        backend.running = False
        yield self.env.timeout(0.0)
        return {"clone_dir": str(backend.clone_dir)}

    def receive(self, vm: VirtualMachine, state: Dict) -> Generator:
        source_dir = Path(state["clone_dir"])
        target_dir = self.run_dir / vm.vmid
        if source_dir.resolve() != target_dir.resolve():
            if target_dir.exists():
                raise PlantError(
                    f"clone directory {target_dir} already exists"
                )
            shutil.move(str(source_dir), str(target_dir))
        backend = LocalBackend(clone_dir=target_dir, running=True)
        (target_dir / "status").write_text("running\n")
        vm.backend = backend
        yield self.env.timeout(0.0)
