"""On-disk golden images: the warehouse's file layout, for real.

Section 4.1: "Golden machines are stored as files in sub-directories
of the VM Warehouse; each golden machine is specified by a
configuration file, and virtual disk and memory files.  XML files are
used to describe such cached images."  This module materializes that
layout::

    <store>/<image-id>/
        descriptor.xml      # GoldenImage.to_xml()
        machine.cfg         # VM configuration file
        disk/chunk-00.vmdk  # base virtual disk, spanned across files
        ...
        memory.vmss         # suspended memory state (vmware images)
        redo-base.log       # base redo log replicated per clone

File *sizes* are scaled down by ``scale`` (default 1/1024: one byte
per KB of modelled state) so tests stay fast while copy/link
behaviour remains real.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

from repro.core.errors import WarehouseError
from repro.plant.warehouse import GoldenImage, VMWarehouse

__all__ = ["materialize_image", "LocalImageStore"]

#: Bytes written per modelled MB at the default scale.
DEFAULT_SCALE = 1024  # 1 KiB per modelled MB


def _write_sized(path: Path, size_bytes: int, fill: bytes = b"\0") -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        if size_bytes > 0:
            fh.write(fill * size_bytes)


def materialize_image(
    image: GoldenImage, store_dir: Path, scale: int = DEFAULT_SCALE
) -> Path:
    """Create the on-disk layout for ``image``; returns its directory."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    root = Path(store_dir) / image.image_id
    if root.exists():
        raise WarehouseError(
            f"image directory {root} already exists"
        )
    root.mkdir(parents=True)
    (root / "descriptor.xml").write_text(image.to_xml())
    _write_sized(root / "machine.cfg", max(64, int(image.config_mb * scale)))
    chunk_mb = image.disk_state_mb / image.disk_files
    for i in range(image.disk_files):
        _write_sized(
            root / "disk" / f"chunk-{i:02d}.vmdk",
            int(chunk_mb * scale),
        )
    if image.memory_state_mb > 0:
        _write_sized(
            root / "memory.vmss", int(image.memory_state_mb * scale)
        )
    _write_sized(root / "redo-base.log", int(image.base_redo_mb * scale))
    return root


class LocalImageStore:
    """A warehouse directory of materialized golden images."""

    def __init__(self, store_dir: Path, scale: int = DEFAULT_SCALE):
        self.store_dir = Path(store_dir)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.scale = scale

    def add(self, image: GoldenImage) -> Path:
        """Materialize ``image`` into the store."""
        return materialize_image(image, self.store_dir, self.scale)

    def path_of(self, image_id: str) -> Path:
        """Directory of a stored image."""
        root = self.store_dir / image_id
        if not root.is_dir():
            raise WarehouseError(f"no materialized image {image_id!r}")
        return root

    def load_descriptor(self, image_id: str) -> GoldenImage:
        """Re-read an image's XML descriptor from disk."""
        return GoldenImage.from_xml(
            (self.path_of(image_id) / "descriptor.xml").read_text()
        )

    def list_ids(self) -> List[str]:
        """All materialized image ids, sorted."""
        return sorted(
            p.name for p in self.store_dir.iterdir() if p.is_dir()
        )

    def to_warehouse(self) -> VMWarehouse:
        """Build an in-memory warehouse from the on-disk descriptors."""
        return VMWarehouse(
            self.load_descriptor(image_id) for image_id in self.list_ids()
        )

    def disk_chunks(self, image_id: str) -> List[Path]:
        """Paths of an image's base disk files."""
        return sorted((self.path_of(image_id) / "disk").glob("chunk-*.vmdk"))
