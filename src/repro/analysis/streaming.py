"""Mergeable constant-memory streaming summaries.

The million-request loadtest rung cannot keep a per-request latency
list in RAM — and with one kernel shard per federated site it cannot
even *see* all latencies in one process.  This module provides
summaries that are

* **streaming** — one sample at a time, O(1) state per sample;
* **constant-memory** — bounded by the sketch configuration, never by
  the stream length;
* **exactly mergeable** — ``merge`` is associative and commutative,
  and a merge of per-shard partial summaries is *bit-identical*
  (quantile outputs and serialized state) to one summary fed the
  whole stream, however the stream was split.

Exactness is the part that matters for the sharded runs: the
coordinator combines per-site summaries exactly like
:mod:`repro.sim.shard.tracemerge` combines traces, so the 1-shard and
N-shard runs of the same trace must produce the same numbers — the
determinism contract extended from trajectories to metrics.

Three building blocks:

:class:`QuantileSketch`
    A fixed-centroid (geometric-bin) histogram: bin edges are a pure
    function of the configuration, so a sample lands in the same bin
    on every shard and merging is integer addition.  Quantile reads
    carry a guaranteed relative error bound of ``rel_err`` inside the
    configured range.  (A P² sketch would adapt its markers to the
    stream — and two P² sketches cannot be merged exactly, which
    disqualifies it here.)

:class:`Moments`
    Streaming count/mean/variance over *exact* binary fixed-point
    accumulators (every float is a dyadic rational; integer sums of
    them are associative).  This is strictly stronger than Welford's
    online algorithm: where Welford bounds the rounding error of a
    float accumulator, these sums have no rounding error at all, so
    the Chan-style merge is exact rather than approximately so.

:class:`WorkloadSummary`
    Per-tenant latency summaries plus goodput / failure /
    deadline-miss counters, with the same merge contract.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ExactSum",
    "Moments",
    "QuantileSketch",
    "StreamSummary",
    "WorkloadSummary",
]


class ExactSum:
    """Exact sum of floats as a dyadic rational ``num * 2**-shift``.

    ``float.as_integer_ratio`` decomposes every finite float into an
    integer over a power of two; summing those with arbitrary-precision
    integers is exact, and therefore associative and commutative —
    any split of a stream sums to the same (``num``, ``shift``) pair.
    ``shift`` only ratchets up (to the max of all contributions), so
    even the *representation* is split-invariant, which is what lets
    serialized summary state compare equal across shard counts.
    """

    __slots__ = ("num", "shift")

    def __init__(self, num: int = 0, shift: int = 0):
        self.num = num
        self.shift = shift

    def _add_ratio(self, n: int, d: int) -> None:
        # d is a power of two for every finite float.
        k = d.bit_length() - 1
        if k > self.shift:
            self.num <<= k - self.shift
            self.shift = k
        self.num += n << (self.shift - k)

    def add(self, value: float) -> None:
        """Add one float exactly (rejects NaN/inf)."""
        self._add_ratio(*float(value).as_integer_ratio())

    def add_square(self, value: float) -> None:
        """Add the exact square of ``value`` (not the rounded float)."""
        n, d = float(value).as_integer_ratio()
        self._add_ratio(n * n, d * d)

    def merge(self, other: "ExactSum") -> None:
        self._add_ratio(other.num, 1 << other.shift)

    @property
    def value(self) -> float:
        """The sum, correctly rounded to the nearest float."""
        if self.shift == 0:
            return float(self.num)
        return self.num / (1 << self.shift)

    def as_pair(self) -> Tuple[int, int]:
        return (self.num, self.shift)

    @classmethod
    def from_pair(cls, pair: Iterable[int]) -> "ExactSum":
        num, shift = pair
        return cls(int(num), int(shift))


class Moments:
    """Streaming count / mean / variance with an exact merge.

    Accumulates the exact sum and sum of squares (see
    :class:`ExactSum`); mean and variance are computed from exact
    integer arithmetic and rounded only at the final division, so two
    half-stream summaries merged together report *identical* floats to
    one full-stream summary.
    """

    __slots__ = ("n", "_sum", "_sumsq", "_min", "_max")

    def __init__(self) -> None:
        self.n = 0
        self._sum = ExactSum()
        self._sumsq = ExactSum()
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError("samples must be finite")
        self.n += 1
        self._sum.add(value)
        self._sumsq.add_square(value)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def merge(self, other: "Moments") -> None:
        self.n += other.n
        self._sum.merge(other._sum)
        self._sumsq.merge(other._sumsq)
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    @property
    def mean(self) -> float:
        if self.n == 0:
            return math.nan
        # num / (n << shift): one correctly rounded integer division.
        return self._sum.num / (self.n << self._sum.shift)

    @property
    def variance(self) -> float:
        """Unbiased sample variance, exact up to the final rounding."""
        if self.n < 2:
            return 0.0 if self.n else math.nan
        # n*sumsq - sum^2 over a common power-of-two denominator.
        s, q = self._sum, self._sumsq
        shift = max(2 * s.shift, q.shift)
        numer = (self.n * q.num << (shift - q.shift)) - (
            s.num * s.num << (shift - 2 * s.shift)
        )
        denom = self.n * (self.n - 1) << shift
        return max(0.0, numer / denom)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self.n else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.n else math.nan

    def to_state(self) -> dict:
        return {
            "n": self.n,
            "sum": list(self._sum.as_pair()),
            "sumsq": list(self._sumsq.as_pair()),
            "min": self._min if self.n else None,
            "max": self._max if self.n else None,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Moments":
        m = cls()
        m.n = int(state["n"])
        m._sum = ExactSum.from_pair(state["sum"])
        m._sumsq = ExactSum.from_pair(state["sumsq"])
        m._min = math.inf if state["min"] is None else float(state["min"])
        m._max = -math.inf if state["max"] is None else float(state["max"])
        return m


class QuantileSketch:
    """Fixed-centroid quantile sketch with a relative error bound.

    Bins are geometric — edge *i* sits at ``lo * growth**i`` with
    ``growth = 1 + rel_err`` — so for any sample inside ``[lo, hi)``
    the reported quantile and the true quantile fall in the same bin,
    whose width bounds the relative error by ``rel_err``.  Bin
    placement is a pure function of the configuration, never of the
    data: two sketches over different slices of a stream hold integer
    counts in *identical* bins, and merging is elementwise addition —
    associative, commutative, and exactly equal to sketching the
    un-split stream.

    Values below ``lo`` (including 0) land in an underflow bin and
    values at or above ``hi`` in an overflow bin; both are tracked
    with exact ``min``/``max`` so extreme quantiles stay clamped to
    observed samples.  Negative samples are rejected — this is a
    latency sketch.
    """

    __slots__ = (
        "lo",
        "hi",
        "rel_err",
        "_log_growth",
        "_nbins",
        "count",
        "_bins",
        "_min",
        "_max",
    )

    #: Bin index of the underflow/overflow buckets.
    _UNDER = -1

    def __init__(
        self, lo: float = 1e-3, hi: float = 1e6, rel_err: float = 0.01
    ):
        if not 0 < lo < hi:
            raise ValueError("need 0 < lo < hi")
        if not 0 < rel_err < 1:
            raise ValueError("rel_err must be in (0, 1)")
        self.lo = float(lo)
        self.hi = float(hi)
        self.rel_err = float(rel_err)
        self._log_growth = math.log1p(rel_err)
        self._nbins = (
            int(math.ceil(math.log(hi / lo) / self._log_growth)) + 1
        )
        self.count = 0
        self._bins: Dict[int, int] = {}
        self._min = math.inf
        self._max = -math.inf

    def _index(self, value: float) -> int:
        if value < self.lo:
            return self._UNDER
        if value >= self.hi:
            return self._nbins
        # Same value -> same bin on every shard: the index is a pure
        # function of (value, config), float rounding included.
        i = int(math.log(value / self.lo) / self._log_growth)
        return min(max(i, 0), self._nbins - 1)

    def _edges(self, index: int) -> Tuple[float, float]:
        if index == self._UNDER:
            return (0.0, self.lo)
        if index >= self._nbins:
            return (self.hi, math.inf)
        lo = self.lo * math.exp(index * self._log_growth)
        return (lo, lo * (1.0 + self.rel_err))

    def add(self, value: float) -> None:
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ValueError("samples must be finite")
        if value < 0:
            raise ValueError("latency samples must be non-negative")
        self.count += 1
        idx = self._index(value)
        self._bins[idx] = self._bins.get(idx, 0) + 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def _config(self) -> Tuple[float, float, float]:
        return (self.lo, self.hi, self.rel_err)

    def merge(self, other: "QuantileSketch") -> None:
        if self._config() != other._config():
            raise ValueError(
                f"cannot merge sketches with different configs: "
                f"{self._config()} vs {other._config()}"
            )
        self.count += other.count
        for idx, c in other._bins.items():
            self._bins[idx] = self._bins.get(idx, 0) + c
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]), ``nan`` when empty.

        Uses the nearest-rank convention (rank ``ceil(q*n) - 1`` into
        the sorted stream); the result is clamped into the observed
        ``[min, max]`` and carries relative error ≤ ``rel_err`` for
        samples inside the configured range.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = max(0, math.ceil(q * self.count) - 1)
        seen = 0
        for idx in sorted(self._bins):
            c = self._bins[idx]
            if seen + c > rank:
                lo, hi = self._edges(idx)
                if idx == self._UNDER:
                    # Sub-range bin: midpoint, clamped below.
                    value = 0.5 * (lo + hi)
                elif idx >= self._nbins:
                    # Overflow: only the exact max is trustworthy.
                    value = self._max
                else:
                    # Geometric interpolation inside the bin keeps the
                    # result within the bin edges for any local rank.
                    frac = (rank - seen + 0.5) / c
                    value = lo * math.exp(frac * self._log_growth)
                return min(max(value, self._min), self._max)
            seen += c
        return self._max  # pragma: no cover - ranks always found

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def to_state(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "rel_err": self.rel_err,
            "count": self.count,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "bins": [
                [idx, self._bins[idx]] for idx in sorted(self._bins)
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "QuantileSketch":
        sk = cls(
            lo=float(state["lo"]),
            hi=float(state["hi"]),
            rel_err=float(state["rel_err"]),
        )
        sk.count = int(state["count"])
        sk._bins = {int(i): int(c) for i, c in state["bins"]}
        sk._min = math.inf if state["min"] is None else float(state["min"])
        sk._max = (
            -math.inf if state["max"] is None else float(state["max"])
        )
        return sk


class StreamSummary:
    """One latency stream: quantile sketch + exact moments."""

    __slots__ = ("sketch", "moments")

    def __init__(
        self,
        lo: float = 1e-3,
        hi: float = 1e6,
        rel_err: float = 0.01,
    ):
        self.sketch = QuantileSketch(lo=lo, hi=hi, rel_err=rel_err)
        self.moments = Moments()

    def add(self, value: float) -> None:
        self.sketch.add(value)
        self.moments.add(value)

    def merge(self, other: "StreamSummary") -> None:
        self.sketch.merge(other.sketch)
        self.moments.merge(other.moments)

    @property
    def count(self) -> int:
        return self.moments.n

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    @property
    def mean(self) -> float:
        return self.moments.mean

    def to_state(self) -> dict:
        return {
            "sketch": self.sketch.to_state(),
            "moments": self.moments.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamSummary":
        s = cls.__new__(cls)
        s.sketch = QuantileSketch.from_state(state["sketch"])
        s.moments = Moments.from_state(state["moments"])
        return s

    def state_signature(self) -> str:
        """Content hash of the serialized state (equality checks)."""
        payload = json.dumps(self.to_state(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


class WorkloadSummary:
    """Per-tenant workload metrics with the same exact-merge contract.

    Tracks, per tenant: completed requests (goodput), failures,
    deadline misses, and a latency :class:`StreamSummary`.  The
    overall summary is derived by merging the per-tenant ones in
    sorted tenant order, so it needs no separate (and potentially
    divergent) accumulator.
    """

    __slots__ = ("lo", "hi", "rel_err", "tenants", "counters")

    _COUNTERS = ("ok", "failed", "deadline_miss", "shed")

    def __init__(
        self,
        lo: float = 1e-3,
        hi: float = 1e6,
        rel_err: float = 0.01,
    ):
        self.lo = lo
        self.hi = hi
        self.rel_err = rel_err
        self.tenants: Dict[str, StreamSummary] = {}
        self.counters: Dict[str, Dict[str, int]] = {}

    def _tenant(self, tenant: str) -> StreamSummary:
        summary = self.tenants.get(tenant)
        if summary is None:
            summary = StreamSummary(
                lo=self.lo, hi=self.hi, rel_err=self.rel_err
            )
            self.tenants[tenant] = summary
            self.counters[tenant] = {k: 0 for k in self._COUNTERS}
        return summary

    def record_ok(
        self,
        tenant: str,
        latency_s: float,
        deadline_s: Optional[float] = None,
    ) -> None:
        """One completed request; counts a miss past its deadline."""
        self._tenant(tenant).add(latency_s)
        counters = self.counters[tenant]
        counters["ok"] += 1
        if deadline_s is not None and latency_s > deadline_s:
            counters["deadline_miss"] += 1

    def record_failed(self, tenant: str) -> None:
        self._tenant(tenant)
        self.counters[tenant]["failed"] += 1

    def record_shed(self, tenant: str) -> None:
        """One request turned away by admission control (not failed —
        the grid chose not to attempt it)."""
        self._tenant(tenant)
        self.counters[tenant]["shed"] += 1

    def merge(self, other: "WorkloadSummary") -> None:
        for tenant in sorted(other.tenants):
            self._tenant(tenant).merge(other.tenants[tenant])
            mine = self.counters[tenant]
            for key, v in other.counters[tenant].items():
                mine[key] = mine.get(key, 0) + v

    def overall(self) -> StreamSummary:
        """All tenants merged, in sorted tenant order."""
        total = StreamSummary(
            lo=self.lo, hi=self.hi, rel_err=self.rel_err
        )
        for tenant in sorted(self.tenants):
            total.merge(self.tenants[tenant])
        return total

    def total(self, counter: str) -> int:
        """Sum of one counter over tenants (any of ``_COUNTERS``)."""
        return sum(c.get(counter, 0) for c in self.counters.values())

    def to_state(self) -> dict:
        return {
            "lo": self.lo,
            "hi": self.hi,
            "rel_err": self.rel_err,
            "tenants": {
                t: {
                    "summary": self.tenants[t].to_state(),
                    "counters": dict(
                        sorted(self.counters[t].items())
                    ),
                }
                for t in sorted(self.tenants)
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "WorkloadSummary":
        w = cls(
            lo=float(state["lo"]),
            hi=float(state["hi"]),
            rel_err=float(state["rel_err"]),
        )
        for tenant, entry in state["tenants"].items():
            w.tenants[tenant] = StreamSummary.from_state(
                entry["summary"]
            )
            w.counters[tenant] = {
                k: int(v) for k, v in entry["counters"].items()
            }
        return w

    def state_signature(self) -> str:
        payload = json.dumps(self.to_state(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def tenant_rows(self) -> List[Tuple[str, int, int, int, float]]:
        """(tenant, ok, failed, misses, p95) rows, sorted by tenant."""
        rows = []
        for tenant in sorted(self.tenants):
            c = self.counters[tenant]
            rows.append(
                (
                    tenant,
                    c["ok"],
                    c["failed"],
                    c["deadline_miss"],
                    self.tenants[tenant].quantile(0.95),
                )
            )
        return rows
