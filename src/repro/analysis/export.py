"""CSV/JSON export of experiment results.

Experiments return structured result objects; this module flattens
the common ones into rows suitable for external plotting tools, and
writes CSV without any third-party dependency.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.analysis.histograms import Histogram
from repro.sim.hypervisor import CloneRecord

__all__ = [
    "rows_to_csv",
    "histograms_to_rows",
    "series_to_rows",
    "clone_records_to_rows",
    "summaries_to_json",
]


def rows_to_csv(
    rows: Iterable[Mapping[str, Any]], fieldnames: Sequence[str]
) -> str:
    """Render dict rows as CSV text (header included)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(fieldnames))
    writer.writeheader()
    for row in rows:
        writer.writerow({k: row.get(k, "") for k in fieldnames})
    return buffer.getvalue()


def histograms_to_rows(
    series: Mapping[str, Histogram],
) -> List[Dict[str, Any]]:
    """Figure 4/5-style histograms → long-format rows."""
    rows: List[Dict[str, Any]] = []
    for name, hist in series.items():
        for center, count, freq in hist.as_rows():
            rows.append(
                {
                    "series": name,
                    "bin_center": center,
                    "count": count,
                    "frequency": round(freq, 6),
                }
            )
    return rows


def series_to_rows(
    series: Mapping[str, Sequence[Tuple[int, float]]],
) -> List[Dict[str, Any]]:
    """Figure 6-style sequence series → long-format rows."""
    rows: List[Dict[str, Any]] = []
    for name, points in series.items():
        for x, y in points:
            rows.append({"series": name, "sequence": x, "value": y})
    return rows


def clone_records_to_rows(
    records: Iterable[CloneRecord],
) -> List[Dict[str, Any]]:
    """Raw clone records → rows (one per clone)."""
    return [
        {
            "vmid": r.vmid,
            "vm_type": r.vm_type,
            "memory_mb": r.memory_mb,
            "clone_mode": r.clone_mode,
            "started_at": r.started_at,
            "copy_time": r.copy_time,
            "resume_time": r.resume_time,
            "total_time": r.total_time,
            "pressure": r.pressure,
            "host_vms_before": r.host_vms_before,
        }
        for r in records
    ]


def summaries_to_json(summaries: Mapping[str, Any]) -> str:
    """Summary objects → a JSON document."""
    payload = {
        name: (s.as_dict() if hasattr(s, "as_dict") else s)
        for name, s in summaries.items()
    }
    return json.dumps(payload, indent=2, sort_keys=True)
