"""Summary statistics and sequence profiles (Figure 6 support)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Summary", "summarize", "sequence_series", "bucket_means"]


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def as_dict(self) -> dict:
        """Plain-dict form for table rendering."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p25": self.p25,
            "median": self.median,
            "p75": self.p75,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of ``values`` (NaNs rejected)."""
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    if np.isnan(data).any():
        raise ValueError("sample contains NaN")
    return Summary(
        count=int(data.size),
        mean=float(data.mean()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
        minimum=float(data.min()),
        p25=float(np.percentile(data, 25)),
        median=float(np.percentile(data, 50)),
        p75=float(np.percentile(data, 75)),
        maximum=float(data.max()),
    )


def sequence_series(
    values: Sequence[float],
) -> List[Tuple[int, float]]:
    """(1-based sequence number, value) pairs — Figure 6's x/y."""
    return [(i + 1, float(v)) for i, v in enumerate(values)]


def bucket_means(
    values: Sequence[float], bucket: int
) -> List[Tuple[int, float]]:
    """Mean per consecutive bucket of the sequence (trend smoothing).

    Returns (last sequence number of the bucket, bucket mean) pairs;
    a trailing partial bucket is included.
    """
    if bucket <= 0:
        raise ValueError("bucket must be positive")
    out: List[Tuple[int, float]] = []
    data = list(values)
    for start in range(0, len(data), bucket):
        chunk = data[start : start + bucket]
        out.append(
            (start + len(chunk), float(np.mean(chunk)))
        )
    return out
