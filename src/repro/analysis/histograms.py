"""Normalized frequency-of-occurrence distributions (Figures 4 and 5).

The paper plots creation/cloning latency distributions as normalized
occurrence counts over labelled bins.  Bins are specified by their
*centers* — Figure 4 uses 5, 15, …, 85 s; Figure 5 uses 5, 10, …, 60,
70 s (note the irregular final bin) — with bin edges at the midpoints
between consecutive centers.  Out-of-range values clamp into the first
or last bin, matching how the paper's end bins absorb the tails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "FIG4_BIN_CENTERS",
    "FIG5_BIN_CENTERS",
    "Histogram",
    "histogram",
]

#: Figure 4 (overall creation latency) bin centers, seconds.
FIG4_BIN_CENTERS: Tuple[float, ...] = tuple(range(5, 86, 10))
#: Figure 5 (cloning latency) bin centers, seconds.
FIG5_BIN_CENTERS: Tuple[float, ...] = tuple(range(5, 61, 5)) + (70.0,)


@dataclass(frozen=True)
class Histogram:
    """A binned distribution with normalized frequencies."""

    centers: Tuple[float, ...]
    counts: Tuple[int, ...]
    total: int

    @property
    def frequencies(self) -> Tuple[float, ...]:
        """Counts normalized by the sample total."""
        if self.total == 0:
            return tuple(0.0 for _ in self.counts)
        return tuple(c / self.total for c in self.counts)

    @property
    def mode_center(self) -> float:
        """Center of the most populated bin (first on ties)."""
        idx = max(range(len(self.counts)), key=lambda i: self.counts[i])
        return self.centers[idx]

    def mean_estimate(self) -> float:
        """Distribution mean estimated from bin centers."""
        if self.total == 0:
            return float("nan")
        return (
            sum(c * n for c, n in zip(self.centers, self.counts))
            / self.total
        )

    def as_rows(self) -> List[Tuple[float, int, float]]:
        """(center, count, normalized frequency) rows."""
        return [
            (center, count, freq)
            for center, count, freq in zip(
                self.centers, self.counts, self.frequencies
            )
        ]


def histogram(
    values: Sequence[float], centers: Sequence[float]
) -> Histogram:
    """Bin ``values`` into center-labelled bins.

    Edges sit midway between consecutive centers; values below the
    first edge land in the first bin, values above the last edge in
    the last bin.
    """
    centers = tuple(float(c) for c in centers)
    if len(centers) < 2:
        raise ValueError("need at least two bin centers")
    if any(b <= a for a, b in zip(centers, centers[1:])):
        raise ValueError("bin centers must be strictly increasing")
    edges = np.array(
        [(a + b) / 2.0 for a, b in zip(centers, centers[1:])]
    )
    data = np.asarray(list(values), dtype=float)
    counts = [0] * len(centers)
    if data.size:
        idx = np.searchsorted(edges, data, side="right")
        for i in idx:
            counts[int(i)] += 1
    return Histogram(
        centers=centers, counts=tuple(counts), total=int(data.size)
    )
