"""Analysis utilities for experiment results."""

from repro.analysis.export import (
    clone_records_to_rows,
    histograms_to_rows,
    rows_to_csv,
    series_to_rows,
    summaries_to_json,
)
from repro.analysis.histograms import (
    FIG4_BIN_CENTERS,
    FIG5_BIN_CENTERS,
    Histogram,
    histogram,
)
from repro.analysis.stats import Summary, sequence_series, summarize
from repro.analysis.streaming import (
    ExactSum,
    Moments,
    QuantileSketch,
    StreamSummary,
    WorkloadSummary,
)
from repro.analysis.tables import (
    render_histogram_table,
    render_series,
    render_summary_table,
)

__all__ = [
    "ExactSum",
    "Moments",
    "QuantileSketch",
    "StreamSummary",
    "WorkloadSummary",
    "clone_records_to_rows",
    "histograms_to_rows",
    "rows_to_csv",
    "series_to_rows",
    "summaries_to_json",
    "FIG4_BIN_CENTERS",
    "FIG5_BIN_CENTERS",
    "Histogram",
    "Summary",
    "histogram",
    "render_histogram_table",
    "render_series",
    "render_summary_table",
    "sequence_series",
    "summarize",
]
