"""Paper-style text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper reports —
one histogram column per golden-machine size for Figures 4 and 5, a
sequence series for Figure 6, and summary tables for the in-text
numbers.  Everything renders to plain monospaced text.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.histograms import Histogram
from repro.analysis.stats import Summary

__all__ = [
    "render_histogram_table",
    "render_summary_table",
    "render_series",
]


def _fmt(value, width: int = 9, digits: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.{digits}f}"
    return f"{value!s:>{width}}"


def render_histogram_table(
    title: str,
    series: Mapping[str, Histogram],
    x_label: str = "latency (s)",
) -> str:
    """Figure 4/5-style table: one frequency column per series."""
    names = list(series)
    if not names:
        raise ValueError("no series to render")
    centers = series[names[0]].centers
    for name in names[1:]:
        if series[name].centers != centers:
            raise ValueError("series use different bin centers")
    lines = [title, ""]
    header = f"{x_label:>14} " + " ".join(f"{n:>10}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, center in enumerate(centers):
        row = f"{center:>14.0f} " + " ".join(
            f"{series[n].frequencies[i]:>10.3f}" for n in names
        )
        lines.append(row)
    lines.append("-" * len(header))
    lines.append(
        f"{'n':>14} " + " ".join(f"{series[n].total:>10d}" for n in names)
    )
    lines.append(
        f"{'mean(est)':>14} "
        + " ".join(f"{series[n].mean_estimate():>10.1f}" for n in names)
    )
    return "\n".join(lines)


def render_summary_table(
    title: str, rows: Mapping[str, Summary]
) -> str:
    """One Summary per labelled row."""
    lines = [title, ""]
    header = (
        f"{'series':>14} {'n':>6} {'mean':>8} {'std':>8} "
        f"{'min':>8} {'median':>8} {'max':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, s in rows.items():
        lines.append(
            f"{name:>14} {s.count:>6d} {s.mean:>8.1f} {s.std:>8.1f} "
            f"{s.minimum:>8.1f} {s.median:>8.1f} {s.maximum:>8.1f}"
        )
    return "\n".join(lines)


def render_series(
    title: str,
    series: Mapping[str, Sequence[Tuple[int, float]]],
    x_label: str = "sequence",
    y_label: str = "value",
    max_rows: int = 0,
) -> str:
    """Figure 6-style table: per-series (x, y) points, row-aligned on x.

    ``max_rows`` > 0 subsamples evenly to at most that many rows.
    """
    xs = sorted({x for points in series.values() for x, _ in points})
    if max_rows and len(xs) > max_rows:
        step = max(1, len(xs) // max_rows)
        keep = set(xs[::step]) | {xs[-1]}
        xs = [x for x in xs if x in keep]
    maps: Dict[str, Dict[int, float]] = {
        name: dict(points) for name, points in series.items()
    }
    names = list(series)
    lines = [title, ""]
    header = f"{x_label:>10} " + " ".join(f"{n:>10}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        cells: List[str] = []
        for name in names:
            y = maps[name].get(x)
            cells.append(f"{y:>10.1f}" if y is not None else f"{'':>10}")
        lines.append(f"{x:>10d} " + " ".join(cells))
    return "\n".join(lines)
