"""Provisioning-throughput feature switches.

The paper's clone-time breakdown (Section 5, Tables 2-3) shows the
NFS transfer of the golden machine's suspended state dominating
creation time, and warm NFS caches cutting it dramatically.  Three
optional mechanisms model (and go beyond) that effect under heavy
concurrent traffic:

* **host-side golden-state cache** — each
  :class:`~repro.sim.host.PhysicalHost` keeps an LRU replica of
  recently cloned per-clone state on its local disk, bounded by
  ``host_cache_mb``; repeat clones of a cached image skip the shared
  NFS link and pay only local-copy latency (the warm-cache effect);
* **in-flight transfer coalescing** — concurrent clones of the same
  image onto the same host share one
  :class:`~repro.sim.network.FairShareLink` transfer instead of N
  contending flows;
* **adaptive speculative pools** — each plant pre-creates clones
  sized to its observed arrival rate and serves requests by extending
  a pooled VM, quoting a discounted bid when one is available (see
  :class:`~repro.plant.speculative.AdaptiveSpeculativePool`);
* **peer distribution trees** — golden-image delivery becomes a k-ary
  broadcast tree over per-host cluster uplinks instead of N pulls on
  the one warehouse link, optionally with popularity-driven proactive
  replica placement (see :mod:`repro.distribution`).

Everything defaults to **off**: a testbed built without an explicit
:class:`ProvisioningConfig` (or with the default one) reproduces the
seed golden trajectories bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ProvisioningConfig", "FULL_PROVISIONING"]


@dataclass(frozen=True)
class ProvisioningConfig:
    """Switches and tunables of the provisioning-throughput layer."""

    #: Host golden-state cache budget (MB); 0 disables the cache.
    host_cache_mb: float = 0.0
    #: Share in-flight warehouse transfers per (host, image)?
    coalesce_transfers: bool = False
    #: Attach an adaptive speculative pool manager to every plant?
    speculative_pools: bool = False

    # -- adaptive pool tunables -------------------------------------------
    #: Hit-rate the pool sizes itself toward.
    pool_target_hit_rate: float = 0.9
    pool_min_target: int = 0
    pool_max_target: int = 4
    #: Arrivals remembered per (image, domain) for rate estimation.
    pool_window: int = 8
    #: Assumed lead time (s) to fill one clone; scales pool depth.
    pool_lead_time_s: float = 45.0
    #: Bid multiplier quoted when a pooled VM can serve the request.
    pool_bid_discount: float = 0.25

    # -- peer distribution trees -------------------------------------------
    #: Deliver LINK clone state over peer broadcast trees?
    distribution_tree: bool = False
    #: Concurrent peer serves per source host (1 = chained, 2 = binary).
    tree_fanout: int = 2
    #: Floor for the host cache budget when the tree layer is on (the
    #: peer store serves from the host cache, so it must exist).
    peer_store_mb: float = 1024.0
    #: Per-host serving uplink bandwidth (MB/s) — the paper's gigabit
    #: inter-node switch, minus protocol overhead.
    peer_bandwidth_mbps: float = 110.0
    #: Run the popularity-driven replica placement daemon?
    replica_placement: bool = False
    #: Placement sweep period (s).
    placement_period_s: float = 120.0
    #: Hottest images pre-pushed per sweep.
    placement_top_k: int = 2
    #: Seed hosts (tree roots) per site, spread over the host list.
    placement_seed_hosts: int = 2

    def __post_init__(self) -> None:
        if self.host_cache_mb < 0:
            raise ValueError("host_cache_mb must be non-negative")
        if not 0.0 < self.pool_target_hit_rate <= 1.0:
            raise ValueError("pool_target_hit_rate must be in (0, 1]")
        if self.pool_min_target < 0 or self.pool_max_target < 0:
            raise ValueError("pool targets must be non-negative")
        if self.pool_min_target > self.pool_max_target:
            raise ValueError("pool_min_target exceeds pool_max_target")
        if self.pool_window < 2:
            raise ValueError("pool_window must be at least 2")
        if self.pool_lead_time_s <= 0:
            raise ValueError("pool_lead_time_s must be positive")
        if not 0.0 < self.pool_bid_discount <= 1.0:
            raise ValueError("pool_bid_discount must be in (0, 1]")
        if self.tree_fanout < 1:
            raise ValueError("tree_fanout must be at least 1")
        if self.peer_store_mb <= 0:
            raise ValueError("peer_store_mb must be positive")
        if self.peer_bandwidth_mbps <= 0:
            raise ValueError("peer_bandwidth_mbps must be positive")
        if self.placement_period_s <= 0:
            raise ValueError("placement_period_s must be positive")
        if self.placement_top_k < 1:
            raise ValueError("placement_top_k must be at least 1")
        if self.placement_seed_hosts < 1:
            raise ValueError("placement_seed_hosts must be at least 1")
        if self.replica_placement and not self.distribution_tree:
            raise ValueError(
                "replica_placement requires distribution_tree (the "
                "placer pushes state through the tree planner)"
            )

    @property
    def enabled(self) -> bool:
        """True when any provisioning feature is switched on."""
        return (
            self.host_cache_mb > 0
            or self.coalesce_transfers
            or self.speculative_pools
            or self.distribution_tree
        )

    def without_pools(self) -> "ProvisioningConfig":
        """The same configuration with speculative pools disabled."""
        return replace(self, speculative_pools=False)


#: Everything on, with a cache budget that comfortably holds the
#: paper warehouse's per-clone state (three images, ≤ 272 MB each).
FULL_PROVISIONING = ProvisioningConfig(
    host_cache_mb=1024.0,
    coalesce_transfers=True,
    speculative_pools=True,
    distribution_tree=True,
    replica_placement=True,
)
