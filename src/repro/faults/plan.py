"""Deterministic fault schedules.

A :class:`FaultPlan` is an explicit, fully materialized list of
:class:`FaultEvent` — every fault and its recovery time is fixed
*before* the simulation starts, so a plan is trivially replayable:
record it (``to_records``), ship the JSON anywhere, and re-run the
same schedule against any policy (``from_records``).

Plans come from two places:

* hand-written schedules (tests, targeted repros);
* :meth:`FaultPlan.exponential`, a seeded MTBF/MTTR renewal process
  drawn from dedicated ``fault/...`` streams of the simulation's
  :class:`~repro.sim.rng.RngHub` — independent of every workload
  stream by construction, so enabling faults never perturbs arrival
  or service draws.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.sim.rng import RngHub

__all__ = [
    "HOST_CRASH",
    "WAREHOUSE_OUTAGE",
    "LINK_DEGRADE",
    "GUEST_HANG",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
]

#: A plant's host dies: resident VMs are killed, memory released,
#: caches and pools invalidated, bids decline until recovery.
HOST_CRASH = "host-crash"
#: The warehouse/NFS path goes away: in-flight transfers abort
#: (``mode="abort"``) or freeze (``mode="stall"``) for the window.
WAREHOUSE_OUTAGE = "warehouse-outage"
#: A shared link runs at ``severity`` × nominal bandwidth for the
#: window (severity 0 = full partition: flows freeze).
LINK_DEGRADE = "link-degrade"
#: The guest configuration daemon hangs: actions stall until the
#: window passes.
GUEST_HANG = "guest-hang"

FAULT_KINDS = frozenset(
    {HOST_CRASH, WAREHOUSE_OUTAGE, LINK_DEGRADE, GUEST_HANG}
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: inject at ``at``, recover ``duration`` later."""

    at: float
    kind: str
    #: What the fault hits: a plant name (host-crash, guest-hang),
    #: ``"warehouse"``, or a link name (``"nfs"`` / ``"internode"``).
    target: str
    duration: float
    #: Link-degrade residual bandwidth fraction (0 = partition).
    severity: float = 0.0
    #: Warehouse-outage semantics: ``"abort"`` or ``"stall"``.
    mode: str = "stall"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if not 0.0 <= self.severity < 1.0:
            raise ValueError("severity must be in [0, 1)")
        if self.mode not in ("abort", "stall"):
            raise ValueError(f"unknown outage mode {self.mode!r}")

    @property
    def recover_at(self) -> float:
        """Absolute simulated time the fault heals."""
        return self.at + self.duration


class FaultPlan:
    """An ordered, replayable schedule of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.at, e.kind, e.target)
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- recording / replay --------------------------------------------------
    def to_records(self) -> List[dict]:
        """JSON-ready records (``from_records`` round-trips them)."""
        return [
            {
                "at": e.at,
                "kind": e.kind,
                "target": e.target,
                "duration": e.duration,
                "severity": e.severity,
                "mode": e.mode,
            }
            for e in self.events
        ]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "FaultPlan":
        """Rebuild a recorded plan (replay path)."""
        return cls(FaultEvent(**record) for record in records)

    def signature(self) -> str:
        """Content hash of the schedule (replay verification)."""
        payload = json.dumps(self.to_records(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- generation ----------------------------------------------------------
    @classmethod
    def exponential(
        cls,
        hub: RngHub,
        horizon_s: float,
        *,
        crash_targets: Sequence[str] = (),
        mtbf_s: float = 600.0,
        mttr_s: float = 120.0,
        warehouse: bool = False,
        warehouse_mode: str = "stall",
        degrade_links: Sequence[str] = (),
        degrade_severity: float = 0.25,
        hang_targets: Sequence[str] = (),
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """Seeded MTBF/MTTR renewal schedule over ``[0, horizon_s)``.

        Each target gets its own ``fault/<kind>/<target>`` stream, so
        the schedule for one target is independent of every other —
        and of the workload.  Repairs are drawn with mean ``mttr_s``
        (floored at one second so every fault has a recovery).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        events: List[FaultEvent] = []

        def renewal(stream: str, duration_mean: float):
            """Yield (at, duration) pairs of one renewal process."""
            t = hub.expovariate(stream, 1.0 / mtbf_s)
            while t < horizon_s:
                duration = max(
                    1.0, hub.expovariate(stream, 1.0 / duration_mean)
                )
                yield t, duration
                t += duration + hub.expovariate(stream, 1.0 / mtbf_s)

        for target in crash_targets:
            for at, duration in renewal(
                f"fault/{HOST_CRASH}/{target}", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=HOST_CRASH,
                        target=target,
                        duration=duration,
                    )
                )
        if warehouse:
            for at, duration in renewal(
                f"fault/{WAREHOUSE_OUTAGE}/warehouse", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=WAREHOUSE_OUTAGE,
                        target="warehouse",
                        duration=duration,
                        mode=warehouse_mode,
                    )
                )
        for target in degrade_links:
            for at, duration in renewal(
                f"fault/{LINK_DEGRADE}/{target}", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=LINK_DEGRADE,
                        target=target,
                        duration=duration,
                        severity=degrade_severity,
                    )
                )
        for target in hang_targets:
            for at, duration in renewal(
                f"fault/{GUEST_HANG}/{target}", hang_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=GUEST_HANG,
                        target=target,
                        duration=duration,
                    )
                )
        return cls(events)

    def __repr__(self) -> str:
        return f"<FaultPlan events={len(self.events)}>"
