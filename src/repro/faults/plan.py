"""Deterministic fault schedules.

A :class:`FaultPlan` is an explicit, fully materialized list of
:class:`FaultEvent` — every fault and its recovery time is fixed
*before* the simulation starts, so a plan is trivially replayable:
record it (``to_records``), ship the JSON anywhere, and re-run the
same schedule against any policy (``from_records``).

Plans come from three places:

* hand-written schedules (tests, targeted repros);
* :meth:`FaultPlan.exponential`, a seeded MTBF/MTTR renewal process
  drawn from dedicated ``fault/...`` streams of the simulation's
  :class:`~repro.sim.rng.RngHub` — independent of every workload
  stream by construction, so enabling faults never perturbs arrival
  or service draws;
* :func:`grid_fault_plan`, the federation-scale generator: one seed
  produces a single grid-wide schedule whose events are tagged with
  the site that applies them, and :meth:`FaultPlan.for_site` slices
  out each site's sub-plan.  Because the full plan is a pure function
  of ``(seed, sites, knobs)`` and the slicing is by tag, injection is
  bit-identical whether the sites run in 1 or N kernel shards.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sim.rng import RngHub

__all__ = [
    "HOST_CRASH",
    "WAREHOUSE_OUTAGE",
    "LINK_DEGRADE",
    "GUEST_HANG",
    "SITE_BLACKOUT",
    "WAN_PARTITION",
    "WAN_DEGRADE",
    "GATEWAY_HANG",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "grid_fault_plan",
]

#: A plant's host dies: resident VMs are killed, memory released,
#: caches and pools invalidated, bids decline until recovery.
HOST_CRASH = "host-crash"
#: The warehouse/NFS path goes away: in-flight transfers abort
#: (``mode="abort"``) or freeze (``mode="stall"``) for the window.
WAREHOUSE_OUTAGE = "warehouse-outage"
#: A shared link runs at ``severity`` × nominal bandwidth for the
#: window (severity 0 = full partition: flows freeze).
LINK_DEGRADE = "link-degrade"
#: The guest configuration daemon hangs: actions stall until the
#: window passes.
GUEST_HANG = "guest-hang"
#: A whole site goes dark: every plant crashes, the warehouse path
#: drops, and the site gateway stops answering until recovery.
SITE_BLACKOUT = "site-blackout"
#: A WAN boundary link partitions: staged cross-site messages freeze
#: until the link heals (conservative promises stay valid — delivery
#: time is stamped at stage time, after the pause ends).
WAN_PARTITION = "wan-partition"
#: A WAN boundary link runs at ``severity`` × nominal bandwidth.
WAN_DEGRADE = "wan-degrade"
#: A site gateway hangs: inbound spill-over creates stall until the
#: window passes (the WAN itself stays up).
GATEWAY_HANG = "gateway-hang"

FAULT_KINDS = frozenset(
    {
        HOST_CRASH,
        WAREHOUSE_OUTAGE,
        LINK_DEGRADE,
        GUEST_HANG,
        SITE_BLACKOUT,
        WAN_PARTITION,
        WAN_DEGRADE,
        GATEWAY_HANG,
    }
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: inject at ``at``, recover ``duration`` later."""

    at: float
    kind: str
    #: What the fault hits: a plant name (host-crash, guest-hang),
    #: ``"warehouse"``, a link name (``"nfs"`` / ``"internode"`` or a
    #: WAN boundary-link name), ``"site<k>"`` (site-blackout) or a
    #: gateway name (gateway-hang).
    target: str
    duration: float
    #: Link-degrade residual bandwidth fraction (0 = partition).
    severity: float = 0.0
    #: Warehouse-outage semantics: ``"abort"`` or ``"stall"``.
    mode: str = "stall"
    #: Grid plans tag each event with the site that applies it;
    #: ``None`` (the classic single-testbed plans) applies everywhere.
    site: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("fault time must be non-negative")
        if self.duration <= 0:
            raise ValueError("fault duration must be positive")
        if not 0.0 <= self.severity < 1.0:
            raise ValueError("severity must be in [0, 1)")
        if self.mode not in ("abort", "stall"):
            raise ValueError(f"unknown outage mode {self.mode!r}")
        if self.kind == WAN_DEGRADE and self.severity <= 0.0:
            raise ValueError(
                "wan-degrade needs severity > 0; use wan-partition "
                "for a full cut"
            )

    @property
    def recover_at(self) -> float:
        """Absolute simulated time the fault heals."""
        return self.at + self.duration


class FaultPlan:
    """An ordered, replayable schedule of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = ()):
        self.events: List[FaultEvent] = sorted(
            events,
            key=lambda e: (
                e.at,
                e.kind,
                e.target,
                -1 if e.site is None else e.site,
            ),
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # -- recording / replay --------------------------------------------------
    def to_records(self) -> List[dict]:
        """JSON-ready records (``from_records`` round-trips them)."""
        records = []
        for e in self.events:
            record = {
                "at": e.at,
                "kind": e.kind,
                "target": e.target,
                "duration": e.duration,
                "severity": e.severity,
                "mode": e.mode,
            }
            if e.site is not None:
                record["site"] = e.site
            records.append(record)
        return records

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "FaultPlan":
        """Rebuild a recorded plan (replay path)."""
        return cls(FaultEvent(**record) for record in records)

    def signature(self) -> str:
        """Content hash of the schedule (replay verification)."""
        payload = json.dumps(self.to_records(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def for_site(self, site: int) -> "FaultPlan":
        """Slice out one site's sub-plan from a grid-wide schedule.

        Untagged events (``site is None``) apply everywhere, so they
        appear in every site's slice — matching how a classic
        single-testbed plan behaves when replayed against a shard.
        """
        return FaultPlan(
            e for e in self.events if e.site is None or e.site == site
        )

    # -- generation ----------------------------------------------------------
    @classmethod
    def exponential(
        cls,
        hub: RngHub,
        horizon_s: float,
        *,
        crash_targets: Sequence[str] = (),
        mtbf_s: float = 600.0,
        mttr_s: float = 120.0,
        warehouse: bool = False,
        warehouse_mode: str = "stall",
        degrade_links: Sequence[str] = (),
        degrade_severity: float = 0.25,
        hang_targets: Sequence[str] = (),
        hang_s: float = 30.0,
    ) -> "FaultPlan":
        """Seeded MTBF/MTTR renewal schedule over ``[0, horizon_s)``.

        Each target gets its own ``fault/<kind>/<target>`` stream, so
        the schedule for one target is independent of every other —
        and of the workload.  Repairs are drawn with mean ``mttr_s``
        (floored at one second so every fault has a recovery).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if mtbf_s <= 0 or mttr_s <= 0:
            raise ValueError("mtbf_s and mttr_s must be positive")
        events: List[FaultEvent] = []

        def renewal(stream: str, duration_mean: float):
            """Yield (at, duration) pairs of one renewal process."""
            t = hub.expovariate(stream, 1.0 / mtbf_s)
            while t < horizon_s:
                duration = max(
                    1.0, hub.expovariate(stream, 1.0 / duration_mean)
                )
                yield t, duration
                t += duration + hub.expovariate(stream, 1.0 / mtbf_s)

        for target in crash_targets:
            for at, duration in renewal(
                f"fault/{HOST_CRASH}/{target}", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=HOST_CRASH,
                        target=target,
                        duration=duration,
                    )
                )
        if warehouse:
            for at, duration in renewal(
                f"fault/{WAREHOUSE_OUTAGE}/warehouse", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=WAREHOUSE_OUTAGE,
                        target="warehouse",
                        duration=duration,
                        mode=warehouse_mode,
                    )
                )
        for target in degrade_links:
            for at, duration in renewal(
                f"fault/{LINK_DEGRADE}/{target}", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=LINK_DEGRADE,
                        target=target,
                        duration=duration,
                        severity=degrade_severity,
                    )
                )
        for target in hang_targets:
            for at, duration in renewal(
                f"fault/{GUEST_HANG}/{target}", hang_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=GUEST_HANG,
                        target=target,
                        duration=duration,
                    )
                )
        return cls(events)

    def __repr__(self) -> str:
        return f"<FaultPlan events={len(self.events)}>"


def grid_fault_plan(
    seed: int,
    sites: int,
    horizon_s: float,
    *,
    plants_per_site: int = 8,
    crash_plants_per_site: int = 0,
    mtbf_s: float = 600.0,
    mttr_s: float = 120.0,
    blackout_sites: Sequence[int] = (),
    blackout_at: Optional[float] = None,
    blackout_s: float = 120.0,
    blackout_mode: str = "stall",
    gateway_hang_sites: Sequence[int] = (),
    hang_s: float = 30.0,
    wan_links: Sequence[Tuple[str, int]] = (),
    wan_severity: float = 0.0,
    wan_at: Optional[float] = None,
    wan_s: float = 60.0,
) -> FaultPlan:
    """One deterministic grid-wide fault schedule, tagged by site.

    The whole plan is a pure function of ``(seed, sites, knobs)``:
    every target gets its own ``fault/<kind>/<target>`` stream of a
    single :class:`~repro.sim.rng.RngHub`, with targets named by site
    (``site<k>-plant<i>``, ``site<k>``, ``site<k>-gateway``).  Because
    streams are keyed by name — never by draw order — the schedule
    does not depend on how many shards later run it; each shard slices
    its events with :meth:`FaultPlan.for_site`.

    ``blackout_at`` / ``wan_at`` pin a single fixed-time event per
    target (the graceful-degradation experiments want one controlled
    blackout, not a renewal storm); when ``None``, those kinds run the
    same MTBF/MTTR renewal process as host crashes.

    ``wan_links`` is a sequence of ``(link_name, owner_site)`` pairs:
    the named :class:`~repro.sim.shard.BoundaryLink` is paused
    (``wan_severity == 0``) or throttled by the shard that owns its
    sending side.
    """
    if sites <= 0:
        raise ValueError("sites must be positive")
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if crash_plants_per_site > plants_per_site:
        raise ValueError("crash_plants_per_site exceeds plants_per_site")
    for k in tuple(blackout_sites) + tuple(gateway_hang_sites):
        if not 0 <= k < sites:
            raise ValueError(f"site index {k} out of range for {sites} sites")
    for _, owner in wan_links:
        if not 0 <= owner < sites:
            raise ValueError(
                f"wan link owner site {owner} out of range for {sites} sites"
            )

    hub = RngHub(seed)
    events: List[FaultEvent] = []

    def renewal(stream: str, duration_mean: float):
        """(at, duration) pairs; same shape as FaultPlan.exponential."""
        t = hub.expovariate(stream, 1.0 / mtbf_s)
        while t < horizon_s:
            duration = max(
                1.0, hub.expovariate(stream, 1.0 / duration_mean)
            )
            yield t, duration
            t += duration + hub.expovariate(stream, 1.0 / mtbf_s)

    for k in range(sites):
        for i in range(crash_plants_per_site):
            target = f"site{k}-plant{i}"
            for at, duration in renewal(
                f"fault/{HOST_CRASH}/{target}", mttr_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=HOST_CRASH,
                        target=target,
                        duration=duration,
                        site=k,
                    )
                )
    for k in blackout_sites:
        target = f"site{k}"
        if blackout_at is not None:
            events.append(
                FaultEvent(
                    at=blackout_at,
                    kind=SITE_BLACKOUT,
                    target=target,
                    duration=blackout_s,
                    mode=blackout_mode,
                    site=k,
                )
            )
        else:
            for at, duration in renewal(
                f"fault/{SITE_BLACKOUT}/{target}", blackout_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=SITE_BLACKOUT,
                        target=target,
                        duration=duration,
                        mode=blackout_mode,
                        site=k,
                    )
                )
    for k in gateway_hang_sites:
        target = f"site{k}-gateway"
        for at, duration in renewal(
            f"fault/{GATEWAY_HANG}/{target}", hang_s
        ):
            events.append(
                FaultEvent(
                    at=at,
                    kind=GATEWAY_HANG,
                    target=target,
                    duration=duration,
                    site=k,
                )
            )
    wan_kind = WAN_PARTITION if wan_severity <= 0.0 else WAN_DEGRADE
    wan_sev = 0.0 if wan_severity <= 0.0 else wan_severity
    for link_name, owner in wan_links:
        if wan_at is not None:
            events.append(
                FaultEvent(
                    at=wan_at,
                    kind=wan_kind,
                    target=link_name,
                    duration=wan_s,
                    severity=wan_sev,
                    site=owner,
                )
            )
        else:
            for at, duration in renewal(
                f"fault/{wan_kind}/{link_name}", wan_s
            ):
                events.append(
                    FaultEvent(
                        at=at,
                        kind=wan_kind,
                        target=link_name,
                        duration=duration,
                        severity=wan_sev,
                        site=owner,
                    )
                )
    return FaultPlan(events)
