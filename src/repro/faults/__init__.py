"""Deterministic fault injection and recovery (`repro.faults`).

The fault model the paper's resilience argument (Section 3.1)
implies but never tests: host crashes, warehouse/NFS outages, link
degradation and guest-daemon hangs, all scheduled deterministically
from seeded streams and replayable from a recorded plan — plus the
shop-side recovery ladder (deadlines, backoff re-bid, plant
quarantine) that survives them.  See ``experiments/chaos.py`` for
the policy-ladder sweep.
"""

from repro.faults.health import BreakerState, PlantHealth
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    GUEST_HANG,
    HOST_CRASH,
    LINK_DEGRADE,
    WAREHOUSE_OUTAGE,
    FaultEvent,
    FaultPlan,
)
from repro.faults.recovery import (
    CIRCUIT_BREAKER,
    DEADLINE_BACKOFF,
    RecoveryPolicy,
)

__all__ = [
    "BreakerState",
    "PlantHealth",
    "FaultInjector",
    "FaultEvent",
    "FaultPlan",
    "FAULT_KINDS",
    "HOST_CRASH",
    "WAREHOUSE_OUTAGE",
    "LINK_DEGRADE",
    "GUEST_HANG",
    "RecoveryPolicy",
    "DEADLINE_BACKOFF",
    "CIRCUIT_BREAKER",
]
