"""Deterministic fault injection and recovery (`repro.faults`).

The fault model the paper's resilience argument (Section 3.1)
implies but never tests: host crashes, warehouse/NFS outages, link
degradation and guest-daemon hangs, all scheduled deterministically
from seeded streams and replayable from a recorded plan — plus the
shop-side recovery ladder (deadlines, backoff re-bid, plant
quarantine) that survives them.  See ``experiments/chaos.py`` for
the policy-ladder sweep.
"""

from repro.faults.audit import leak_report, leak_stats
from repro.faults.health import BreakerState, PlantHealth
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FAULT_KINDS,
    GATEWAY_HANG,
    GUEST_HANG,
    HOST_CRASH,
    LINK_DEGRADE,
    SITE_BLACKOUT,
    WAN_DEGRADE,
    WAN_PARTITION,
    WAREHOUSE_OUTAGE,
    FaultEvent,
    FaultPlan,
    grid_fault_plan,
)
from repro.faults.recovery import (
    CIRCUIT_BREAKER,
    DEADLINE_BACKOFF,
    RecoveryPolicy,
)

__all__ = [
    "BreakerState",
    "PlantHealth",
    "FaultInjector",
    "FaultEvent",
    "FaultPlan",
    "FAULT_KINDS",
    "HOST_CRASH",
    "WAREHOUSE_OUTAGE",
    "LINK_DEGRADE",
    "GUEST_HANG",
    "SITE_BLACKOUT",
    "WAN_PARTITION",
    "WAN_DEGRADE",
    "GATEWAY_HANG",
    "grid_fault_plan",
    "leak_report",
    "leak_stats",
    "RecoveryPolicy",
    "DEADLINE_BACKOFF",
    "CIRCUIT_BREAKER",
]
