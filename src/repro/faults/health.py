"""Per-plant health tracking: the shop's circuit breaker.

Standard three-state breaker driven by creation outcomes:

* **CLOSED** — healthy; every bid request reaches the plant.
* **OPEN** — quarantined after ``threshold`` consecutive failures;
  the plant is excluded from bidding for ``quarantine_s`` seconds.
* **HALF_OPEN** — quarantine elapsed; the plant re-enters bidding as
  a probe.  A success closes the breaker, another failure re-opens it
  immediately (with a fresh quarantine window).

The breaker is pure bookkeeping — no simulation events, no RNG — so
an idle breaker cannot perturb golden trajectories.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["BreakerState", "PlantHealth"]


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class PlantHealth:
    """Circuit breaker for one plant, keyed by creation outcomes."""

    __slots__ = (
        "name",
        "threshold",
        "quarantine_s",
        "state",
        "consecutive_failures",
        "opened_at",
        "failures",
        "successes",
        "times_opened",
        "probes",
    )

    def __init__(self, name: str, threshold: int, quarantine_s: float):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if quarantine_s <= 0:
            raise ValueError("quarantine_s must be positive")
        self.name = name
        self.threshold = threshold
        self.quarantine_s = quarantine_s
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.failures = 0
        self.successes = 0
        self.times_opened = 0
        self.probes = 0

    def allows(self, now: float) -> bool:
        """May this plant receive a bid request at ``now``?

        Mutates OPEN → HALF_OPEN once the quarantine window has
        elapsed (the half-open probe admission).
        """
        if self.threshold <= 0 or self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.quarantine_s:
                self.state = BreakerState.HALF_OPEN
                self.probes += 1
                return True
            return False
        return True  # HALF_OPEN: keep admitting until an outcome lands

    def record_success(self, now: float) -> bool:
        """Record a successful creation; returns True when the
        breaker closed from a non-closed state."""
        self.successes += 1
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            return True
        return False

    def record_failure(self, now: float) -> bool:
        """Record a failed creation; returns True when the breaker
        (re)opened — the caller traces the quarantine."""
        self.failures += 1
        self.consecutive_failures += 1
        if self.threshold <= 0:
            return False
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.times_opened += 1
            return True
        return False

    def __repr__(self) -> str:
        return (
            f"<PlantHealth {self.name} {self.state.value}"
            f" fails={self.consecutive_failures}/{self.threshold}>"
        )
