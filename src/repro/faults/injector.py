"""Drive a :class:`~repro.faults.plan.FaultPlan` against a testbed.

One kernel process per scheduled fault: sleep until the fault time,
apply the fault, sleep the fault duration, apply the recovery.  All
state changes are synchronous method calls on the testbed's existing
components (plants, storage, links, gateway), so the injector itself
draws no randomness — replaying a recorded plan reproduces the exact
same injections at the exact same times.

Every event's target is validated when the injector is attached: an
unknown plant, link, site, or gateway raises
:class:`~repro.core.errors.ReproError` naming the target *before* the
simulation starts, instead of silently no-op'ing mid-run.

Overlapping faults on one target are skipped (counted in
``skipped``), so every applied fault has exactly one recovery.

Grid-scale kinds (see :mod:`repro.faults.plan`) need federation
context: pass ``links`` (boundary-link name → link) for
``wan-partition``/``wan-degrade`` and ``gateway``/``site`` for
``site-blackout``/``gateway-hang``.  Gateway hang/blackout state is a
pair of *absolute-time* attributes (``hang_until``/``down_until``)
that heal by clock comparison, so only the blackout needs an explicit
recovery action (reviving the crashed plants and warehouse).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core.errors import ReproError
from repro.faults.plan import (
    GATEWAY_HANG,
    GUEST_HANG,
    HOST_CRASH,
    LINK_DEGRADE,
    SITE_BLACKOUT,
    WAN_DEGRADE,
    WAN_PARTITION,
    WAREHOUSE_OUTAGE,
    FaultEvent,
    FaultPlan,
)
from repro.sim.trace import trace

__all__ = ["FaultInjector"]

#: Kinds whose target is one of the testbed's shared links.
_SHARED_LINKS = ("internode", "nfs")


class FaultInjector:
    """Applies a fault plan to a built testbed."""

    def __init__(
        self,
        bed,
        plan: FaultPlan,
        *,
        links: Optional[Dict[str, Any]] = None,
        gateway: Optional[Any] = None,
        site: Optional[int] = None,
    ):
        self.bed = bed
        self.plan = plan
        self.env = bed.env
        self._plants = {p.name: p for p in bed.plants}
        #: WAN boundary links this shard owns, by name.
        self._links = dict(links or {})
        #: This site's federation gateway (grid kinds only).
        self._gateway = gateway
        self._site = site if site is not None else getattr(
            gateway, "site", None
        )
        #: Applied transitions: (time, phase, kind, target) with
        #: phase ``"inject"`` or ``"recover"`` — the chaos report's
        #: MTTR comes from pairing these.
        self.applied: List[Tuple[float, str, str, str]] = []
        self.skipped = 0
        #: Degraded link target → saved nominal bandwidths (None for
        #: a full partition, restored via resume()).
        self._nominal_bw: Dict[str, Optional[List[float]]] = {}
        #: Plants a live site-blackout crashed (revived on recovery),
        #: plus whether the blackout owns a warehouse outage.
        self._blackout_plants: List[Any] = []
        self._blackout_outage = False
        self._blackout_active = False
        self._started = False
        for event in self.plan:
            self._validate(event)

    def start(self) -> int:
        """Launch one driver process per scheduled fault."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for event in self.plan:
            self.env.process(self._drive(event))
        return len(self.plan)

    # -- internals -----------------------------------------------------------
    def _validate(self, event: FaultEvent) -> None:
        """Attach-time target check: fail fast, name the target."""
        kind, target = event.kind, event.target
        if kind in (HOST_CRASH, GUEST_HANG):
            if target not in self._plants:
                raise ReproError(
                    f"fault plan targets unknown plant {target!r} "
                    f"({kind}); testbed has {sorted(self._plants)}"
                )
        elif kind == WAREHOUSE_OUTAGE:
            if target != "warehouse":
                raise ReproError(
                    f"fault plan targets unknown warehouse {target!r}; "
                    f"only 'warehouse' exists"
                )
        elif kind == LINK_DEGRADE:
            if target not in _SHARED_LINKS:
                raise ReproError(
                    f"fault plan targets unknown link {target!r} "
                    f"({kind}); shared links are {list(_SHARED_LINKS)}"
                )
        elif kind in (WAN_PARTITION, WAN_DEGRADE):
            if target not in self._links:
                raise ReproError(
                    f"fault plan targets unknown boundary link "
                    f"{target!r} ({kind}); this shard owns "
                    f"{sorted(self._links)}"
                )
        elif kind == SITE_BLACKOUT:
            if self._gateway is None or self._site is None:
                raise ReproError(
                    f"fault plan schedules {kind} for {target!r} but "
                    f"the injector has no federation gateway attached"
                )
            if target != f"site{self._site}":
                raise ReproError(
                    f"fault plan targets unknown site {target!r} "
                    f"({kind}); this shard is 'site{self._site}'"
                )
        elif kind == GATEWAY_HANG:
            if self._gateway is None:
                raise ReproError(
                    f"fault plan schedules {kind} for {target!r} but "
                    f"the injector has no federation gateway attached"
                )
            if target != self._gateway.name:
                raise ReproError(
                    f"fault plan targets unknown gateway {target!r} "
                    f"({kind}); this shard's gateway is "
                    f"{self._gateway.name!r}"
                )

    def _links_for(self, target: str) -> list:
        if target == "internode":
            return [self.bed.internode]
        nfs = self.bed.nfs
        replicas = getattr(nfs, "replicas", None)
        if replicas is not None:
            return [r.link for r in replicas]
        return [nfs.link]

    def _drive(self, event: FaultEvent) -> Generator:
        if event.at > self.env.now:
            yield self.env.timeout(event.at - self.env.now)
        if not self._inject(event):
            self.skipped += 1
            return
        self.applied.append(
            (self.env.now, "inject", event.kind, event.target)
        )
        trace(
            self.env, "fault", "inject",
            kind=event.kind, target=event.target,
            duration=round(event.duration, 3),
        )
        yield self.env.timeout(event.duration)
        self._recover(event)
        self.applied.append(
            (self.env.now, "recover", event.kind, event.target)
        )
        trace(
            self.env, "fault", "recover",
            kind=event.kind, target=event.target,
        )

    def _inject(self, event: FaultEvent) -> bool:
        """Apply a fault; False = skipped (target busy/overlapping)."""
        if event.kind == HOST_CRASH:
            plant = self._plants[event.target]
            if plant.down:
                return False
            plant.fail()
            return True
        if event.kind == WAREHOUSE_OUTAGE:
            return self.bed.nfs.begin_outage(event.mode)
        if event.kind in (LINK_DEGRADE, WAN_PARTITION, WAN_DEGRADE):
            if event.target in self._nominal_bw:
                return False
            if event.kind == LINK_DEGRADE:
                links = self._links_for(event.target)
            else:
                links = [self._links[event.target]]
            if event.severity <= 0:
                for link in links:
                    link.pause()
                self._nominal_bw[event.target] = None
            else:
                self._nominal_bw[event.target] = [
                    link.bandwidth_mbps for link in links
                ]
                for link in links:
                    link.set_bandwidth(
                        link.bandwidth_mbps * event.severity
                    )
            return True
        if event.kind == GUEST_HANG:
            plant = self._plants[event.target]
            if plant.down:
                return False
            for line in plant.lines.values():
                line.hang_until = max(line.hang_until, event.recover_at)
            return True
        if event.kind == SITE_BLACKOUT:
            if self._blackout_active:
                return False
            self._blackout_active = True
            self._blackout_plants = [
                p for p in self.bed.plants if not p.down
            ]
            for plant in self._blackout_plants:
                plant.fail()
            self._blackout_outage = self.bed.nfs.begin_outage(event.mode)
            self._gateway.down_until = max(
                self._gateway.down_until, event.recover_at
            )
            return True
        if event.kind == GATEWAY_HANG:
            if self._gateway.down_until > self.env.now:
                return False  # the whole site is dark already
            self._gateway.hang_until = max(
                self._gateway.hang_until, event.recover_at
            )
            return True
        return False  # pragma: no cover - plan validates kinds

    def _recover(self, event: FaultEvent) -> None:
        if event.kind == HOST_CRASH:
            self._plants[event.target].recover()
        elif event.kind == WAREHOUSE_OUTAGE:
            self.bed.nfs.end_outage()
        elif event.kind in (LINK_DEGRADE, WAN_PARTITION, WAN_DEGRADE):
            if event.kind == LINK_DEGRADE:
                links = self._links_for(event.target)
            else:
                links = [self._links[event.target]]
            saved = self._nominal_bw.pop(event.target)
            if saved is None:
                for link in links:
                    link.resume()
            else:
                for link, mbps in zip(links, saved):
                    link.set_bandwidth(mbps)
        elif event.kind == SITE_BLACKOUT:
            for plant in self._blackout_plants:
                if plant.down:
                    plant.recover()
            self._blackout_plants = []
            if self._blackout_outage:
                self.bed.nfs.end_outage()
                self._blackout_outage = False
            self._blackout_active = False
            # gateway.down_until heals by clock comparison.
        # GUEST_HANG / GATEWAY_HANG heal once hang_until passes.

    def mean_time_to_recover(self) -> Optional[float]:
        """Mean applied fault window (None when nothing was applied)."""
        opened: Dict[Tuple[str, str], float] = {}
        windows: List[float] = []
        for at, phase, kind, target in self.applied:
            if phase == "inject":
                opened[(kind, target)] = at
            else:
                start = opened.pop((kind, target), None)
                if start is not None:
                    windows.append(at - start)
        if not windows:
            return None
        return sum(windows) / len(windows)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector events={len(self.plan)}"
            f" applied={len(self.applied)} skipped={self.skipped}>"
        )
