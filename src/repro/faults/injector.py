"""Drive a :class:`~repro.faults.plan.FaultPlan` against a testbed.

One kernel process per scheduled fault: sleep until the fault time,
apply the fault, sleep the fault duration, apply the recovery.  All
state changes are synchronous method calls on the testbed's existing
components (plants, storage, links), so the injector itself draws no
randomness — replaying a recorded plan reproduces the exact same
injections at the exact same times.

Overlapping faults on one target are skipped (counted in
``skipped``), so every applied fault has exactly one recovery.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.faults.plan import (
    GUEST_HANG,
    HOST_CRASH,
    LINK_DEGRADE,
    WAREHOUSE_OUTAGE,
    FaultEvent,
    FaultPlan,
)
from repro.sim.trace import trace

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault plan to a built testbed."""

    def __init__(self, bed, plan: FaultPlan):
        self.bed = bed
        self.plan = plan
        self.env = bed.env
        self._plants = {p.name: p for p in bed.plants}
        #: Applied transitions: (time, phase, kind, target) with
        #: phase ``"inject"`` or ``"recover"`` — the chaos report's
        #: MTTR comes from pairing these.
        self.applied: List[Tuple[float, str, str, str]] = []
        self.skipped = 0
        #: Degraded link target → saved nominal bandwidths (None for
        #: a full partition, restored via resume()).
        self._nominal_bw: Dict[str, Optional[List[float]]] = {}
        self._started = False

    def start(self) -> int:
        """Launch one driver process per scheduled fault."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for event in self.plan:
            self.env.process(self._drive(event))
        return len(self.plan)

    # -- internals -----------------------------------------------------------
    def _links_for(self, target: str) -> list:
        if target == "internode":
            return [self.bed.internode]
        nfs = self.bed.nfs
        replicas = getattr(nfs, "replicas", None)
        if replicas is not None:
            return [r.link for r in replicas]
        return [nfs.link]

    def _drive(self, event: FaultEvent) -> Generator:
        if event.at > self.env.now:
            yield self.env.timeout(event.at - self.env.now)
        if not self._inject(event):
            self.skipped += 1
            return
        self.applied.append(
            (self.env.now, "inject", event.kind, event.target)
        )
        trace(
            self.env, "fault", "inject",
            kind=event.kind, target=event.target,
            duration=round(event.duration, 3),
        )
        yield self.env.timeout(event.duration)
        self._recover(event)
        self.applied.append(
            (self.env.now, "recover", event.kind, event.target)
        )
        trace(
            self.env, "fault", "recover",
            kind=event.kind, target=event.target,
        )

    def _inject(self, event: FaultEvent) -> bool:
        """Apply a fault; False = skipped (target busy/unknown)."""
        if event.kind == HOST_CRASH:
            plant = self._plants.get(event.target)
            if plant is None or plant.down:
                return False
            plant.fail()
            return True
        if event.kind == WAREHOUSE_OUTAGE:
            return self.bed.nfs.begin_outage(event.mode)
        if event.kind == LINK_DEGRADE:
            if event.target in self._nominal_bw:
                return False
            links = self._links_for(event.target)
            if event.severity <= 0:
                for link in links:
                    link.pause()
                self._nominal_bw[event.target] = None
            else:
                self._nominal_bw[event.target] = [
                    link.bandwidth_mbps for link in links
                ]
                for link in links:
                    link.set_bandwidth(
                        link.bandwidth_mbps * event.severity
                    )
            return True
        if event.kind == GUEST_HANG:
            plant = self._plants.get(event.target)
            if plant is None or plant.down:
                return False
            for line in plant.lines.values():
                line.hang_until = max(line.hang_until, event.recover_at)
            return True
        return False  # pragma: no cover - plan validates kinds

    def _recover(self, event: FaultEvent) -> None:
        if event.kind == HOST_CRASH:
            self._plants[event.target].recover()
        elif event.kind == WAREHOUSE_OUTAGE:
            self.bed.nfs.end_outage()
        elif event.kind == LINK_DEGRADE:
            links = self._links_for(event.target)
            saved = self._nominal_bw.pop(event.target)
            if saved is None:
                for link in links:
                    link.resume()
            else:
                for link, mbps in zip(links, saved):
                    link.set_bandwidth(mbps)
        # GUEST_HANG heals by itself once hang_until passes.

    def mean_time_to_recover(self) -> Optional[float]:
        """Mean applied fault window (None when nothing was applied)."""
        opened: Dict[Tuple[str, str], float] = {}
        windows: List[float] = []
        for at, phase, kind, target in self.applied:
            if phase == "inject":
                opened[(kind, target)] = at
            else:
                start = opened.pop((kind, target), None)
                if start is not None:
                    windows.append(at - start)
        if not windows:
            return None
        return sum(windows) / len(windows)

    def __repr__(self) -> str:
        return (
            f"<FaultInjector events={len(self.plan)}"
            f" applied={len(self.applied)} skipped={self.skipped}>"
        )
