"""Shop-side recovery policy knobs.

All defaults are *off*: a :class:`RecoveryPolicy()` shop behaves
bit-identically to the seed trajectories (single attempt, no
deadlines, no quarantine).  The chaos experiment's policy ladder
(surface → retry → deadline+backoff → circuit-breaker) is built by
progressively enabling these knobs; see ``experiments/chaos.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["RecoveryPolicy", "DEADLINE_BACKOFF", "CIRCUIT_BREAKER"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Per-shop fault-recovery configuration (all-off by default)."""

    #: Abort a dispatched plant create after this many simulated
    #: seconds and treat it as failed (None = wait forever).
    create_deadline_s: Optional[float] = None
    #: Total creation attempts per request; each attempt re-bids with
    #: a *fresh* vmid (1 = seed behaviour, no re-bid).
    max_attempts: int = 1
    #: First re-bid delay in seconds (0 = retry immediately).
    backoff_base_s: float = 0.0
    #: Multiplier applied to the delay on each further attempt.
    backoff_factor: float = 2.0
    #: Give up on bidders that have not answered an estimate after
    #: this many seconds; their late bids are dropped (None = wait
    #: for every bidder, the seed behaviour).
    bid_deadline_s: Optional[float] = None
    #: Quarantine a plant after this many *consecutive* creation
    #: failures (0 = circuit breaker disabled).
    quarantine_threshold: int = 0
    #: Seconds a quarantined plant sits out before a half-open probe.
    quarantine_s: float = 300.0
    #: Federation: a site spills a request to a remote site when its
    #: best *local* bid exceeds this cost (None = spill only when the
    #: local site declines outright).  Read by the federation gateway,
    #: never by the shop itself.
    spill_threshold: Optional[float] = None
    #: Federation: give up on a cross-site spill-over bid after this
    #: many simulated seconds (None = wait for the remote answer).
    spill_deadline_s: Optional[float] = None
    #: Federation: spill rounds per request — after every ranked
    #: remote has been tried and failed, re-collect bids and walk the
    #: ladder again (1 = single round, the seed behaviour).
    spill_attempts: int = 1
    #: Federation: first delay before a spill retry round; doubles
    #: per ``backoff_factor`` on each further round (0 = immediate).
    spill_backoff_s: float = 0.0
    #: Federation: quarantine a remote gateway after this many
    #: *consecutive* spill-create failures (0 = breaker disabled).
    remote_quarantine_threshold: int = 0
    #: Seconds a quarantined remote sits out before a half-open probe.
    remote_quarantine_s: float = 300.0

    def __post_init__(self) -> None:
        if self.create_deadline_s is not None and self.create_deadline_s <= 0:
            raise ValueError("create_deadline_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.bid_deadline_s is not None and self.bid_deadline_s <= 0:
            raise ValueError("bid_deadline_s must be positive")
        if self.quarantine_threshold < 0:
            raise ValueError("quarantine_threshold must be non-negative")
        if self.quarantine_s <= 0:
            raise ValueError("quarantine_s must be positive")
        if self.spill_threshold is not None and self.spill_threshold < 0:
            raise ValueError("spill_threshold must be non-negative")
        if self.spill_deadline_s is not None and self.spill_deadline_s <= 0:
            raise ValueError("spill_deadline_s must be positive")
        if self.spill_attempts < 1:
            raise ValueError("spill_attempts must be >= 1")
        if self.spill_backoff_s < 0:
            raise ValueError("spill_backoff_s must be non-negative")
        if self.remote_quarantine_threshold < 0:
            raise ValueError("remote_quarantine_threshold must be non-negative")
        if self.remote_quarantine_s <= 0:
            raise ValueError("remote_quarantine_s must be positive")

    @property
    def enabled(self) -> bool:
        """True when any knob deviates from the all-off defaults."""
        return (
            self.create_deadline_s is not None
            or self.max_attempts > 1
            or self.backoff_base_s > 0
            or self.bid_deadline_s is not None
            or self.quarantine_threshold > 0
        )

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before ``attempt`` (1-based; 0 for the first)."""
        if attempt <= 1 or self.backoff_base_s <= 0:
            return 0.0
        return self.backoff_base_s * self.backoff_factor ** (attempt - 2)

    def spill_backoff_delay(self, round_no: int) -> float:
        """Seconds before spill round ``round_no`` (1-based; 0 first)."""
        if round_no <= 1 or self.spill_backoff_s <= 0:
            return 0.0
        return self.spill_backoff_s * self.backoff_factor ** (round_no - 2)


#: Deadline + bounded exponential-backoff re-bid (no quarantine).
DEADLINE_BACKOFF = RecoveryPolicy(
    create_deadline_s=240.0,
    max_attempts=4,
    backoff_base_s=10.0,
    backoff_factor=2.0,
    bid_deadline_s=10.0,
)

#: The full ladder: deadline/backoff plus plant quarantine.
CIRCUIT_BREAKER = replace(
    DEADLINE_BACKOFF,
    quarantine_threshold=2,
    quarantine_s=240.0,
)
