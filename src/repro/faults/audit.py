"""Six-dimension resource-leak audit over a drained testbed.

Every chaos-style experiment ends with this check: after the workload
drains, no host memory, admitted line capacity, information-system
entry, network lease, or pooled clone may remain.  The audit is pure
inspection — it never mutates the testbed — so scenario workers can
ship its numbers in their ``collect()`` stats, where the runner's
numeric summation turns per-site reports into a *grid-scope* audit
(a leak on any shard shows up in the combined totals).
"""

from __future__ import annotations

from typing import Dict

__all__ = ["leak_report", "leak_stats"]

#: The audited dimensions, in report order.
LEAK_DIMENSIONS = (
    "host_memory_mb",
    "host_vms",
    "admitted_mb",
    "infosys_vms",
    "network_leases",
    "pool_slots",
)


def leak_report(bed) -> Dict[str, float]:
    """Residual resources after the workload drained (want all-zero)."""
    admitted = 0.0
    for line_list in bed.lines.values():
        for line in line_list:
            admitted += sum(
                getattr(line, "_admitted", {}).values()
            )
    return {
        "host_memory_mb": float(
            sum(h.committed_guest_mb for h in bed.hosts)
        ),
        "host_vms": float(sum(h.vm_count for h in bed.hosts)),
        "admitted_mb": float(admitted),
        "infosys_vms": float(sum(len(p.infosys) for p in bed.plants)),
        "network_leases": float(
            sum(p.network_pool.attached_count() for p in bed.plants)
        ),
        "pool_slots": float(sum(p.pooled_vms for p in bed.pools)),
    }


def leak_stats(bed) -> Dict[str, float]:
    """``leak_report`` keyed for scenario stats (``leak_`` prefix).

    Shipped in a shard's ``collect()`` dict; the runner sums numeric
    stats across shards, so the combined ``leak_*`` totals are the
    grid-scope audit.
    """
    return {f"leak_{k}": v for k, v in leak_report(bed).items()}
