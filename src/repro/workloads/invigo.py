"""The In-VIGO virtual-workspace configuration DAG (Figure 3).

The paper's running example: a virtual workspace is a VM giving a user
a full X11 session via VNC plus a Web file manager, configured with
the user's identity and a mount of their distributed home directory.
Figure 3 labels the actions A–I; :func:`invigo_workspace_dag` builds
the client-specified DAG and :func:`invigo_cached_prefix` the
warehouse's cached description (the S–A–B–C prefix of step 2).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.actions import Action, ActionScope, ErrorPolicy
from repro.core.dag import ConfigDAG

__all__ = [
    "INVIGO_ACTIONS",
    "invigo_workspace_dag",
    "invigo_cached_prefix",
]


def _actions(username: str) -> Dict[str, Action]:
    """The nine Figure 3 actions, parameterized by the user."""
    return {
        "A": Action(
            "install-redhat-8.0",
            scope=ActionScope.HOST,
            command="install-os {distro}",
            params={"distro": "redhat-8.0"},
        ),
        "B": Action(
            "install-vnc-server",
            command="rpm -i {pkg}",
            params={"pkg": "vnc-server-3.3.rpm"},
            on_error=ErrorPolicy.RETRY,
            retries=2,
        ),
        "C": Action(
            "install-web-file-manager",
            command="rpm -i {pkg}",
            params={"pkg": "wfm-1.2.rpm"},
            on_error=ErrorPolicy.RETRY,
            retries=2,
        ),
        "D": Action(
            "configure-mac-ip",
            command="ifconfig eth0 {ip}",
            params={"ip": "$VMPLANT_IP"},
            outputs=("ip",),
        ),
        "E": Action(
            "create-user",
            command="useradd {user}",
            params={"user": username},
            outputs=("user_home",),
        ),
        "F": Action(
            "mount-home-directory",
            command="mount -t dvfs home://{user} /home/{user}",
            params={"user": username},
        ),
        "G": Action(
            "configure-vnc-server",
            command="vncconfig --user {user}",
            params={"user": username},
            outputs=("vnc_display",),
        ),
        "H": Action(
            "start-vnc-server",
            command="vncserver :1",
            outputs=("vnc_port",),
        ),
        "I": Action(
            "start-file-manager",
            command="wfm --daemon",
            on_error=ErrorPolicy.IGNORE,
        ),
    }


#: Label → action-name mapping for tests referencing Figure 3 letters.
INVIGO_ACTIONS: Dict[str, str] = {
    label: action.name for label, action in _actions("user").items()
}

#: Figure 3 edges (by label): the A–F chain, then F fans out to the
#: VNC configuration (G before H) and the file manager start (I).
_EDGES: Tuple[Tuple[str, str], ...] = (
    ("A", "B"),
    ("B", "C"),
    ("C", "D"),
    ("D", "E"),
    ("E", "F"),
    ("F", "G"),
    ("G", "H"),
    ("F", "I"),
)


def invigo_workspace_dag(username: str = "arijit") -> ConfigDAG:
    """The client-specified virtual-workspace DAG of Figure 3 (step 1)."""
    actions = _actions(username)
    dag = ConfigDAG()
    for label in "ABCDEFGHI":
        dag.add_action(actions[label])
    for before, after in _EDGES:
        dag.add_edge(actions[before].name, actions[after].name)
    dag.validate()
    return dag


def invigo_cached_prefix(username: str = "arijit") -> List[Action]:
    """The warehouse's cached description (Figure 3, step 2): the
    golden workspace image has RedHat, the VNC server and the Web file
    manager installed (S–A–B–C)."""
    actions = _actions(username)
    return [actions["A"], actions["B"], actions["C"]]
