"""The ``megaload`` shard scenario: trace-driven federated sites.

One federated site per kernel shard — the same topology, spill ring
and gateway policy as the ``federation`` scenario — but driven by the
lazy multi-tenant arrival streams of :mod:`repro.workloads.traces`
instead of a materialized Poisson list, and measured by the exactly
mergeable summaries of :mod:`repro.analysis.streaming` instead of a
per-request latency list.  That combination is what makes the
million-request rung feasible: per site, the arrival stream costs a
few generator frames and the metrics cost one fixed-size sketch, so
memory is bounded regardless of how many requests flow through.

Each site's tenant mix (derived from the params) layers

* ``interactive`` — diurnal sinusoid-modulated Poisson users with a
  soft completion deadline (deadline misses are counted per tenant);
* ``batch`` — CMS-style production campaigns: bursts of ``size`` jobs
  with exponential inter-campaign gaps;
* ``crowd`` — one flash crowd partway into the run.

Per-tenant draws come from the site hub's ``trace/<tenant>`` streams,
so the trace is a pure function of ``(seed, site, params)`` and a
recorded JSONL trace replays bit-identically (``trace_dir`` points
site *i* at ``<trace_dir>/site<i>.jsonl``).  Each site hashes the
stream it actually consumed (:func:`~repro.workloads.traces`'s
canonical line encoding) and ships the signature with its stats, so
generated-vs-replayed runs can be compared without storing a trace.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Callable, Dict

from repro.analysis.streaming import WorkloadSummary
from repro.federation.scenario import (
    FederationScenario,
    _FederationHandle,
)
from repro.federation.site import FederatedSite
from repro.sim.kernel import Environment
from repro.sim.rng import RngHub
from repro.sim.shard.scenarios import register, site_seed
from repro.sim.trace import trace
from repro.workloads.traces import (
    Arrival,
    TenantSpec,
    TraceSpec,
    _canonical_line,
    write_jsonl,
)

__all__ = [
    "MegaLoadScenario",
    "megaload_trace_spec",
    "record_site_traces",
    "merge_site_summaries",
    "sites_trace_signature",
]


def megaload_trace_spec(params: Dict[str, Any]) -> TraceSpec:
    """The per-site tenant mix implied by the scenario params.

    Request counts are split ``interactive_fraction`` /
    ``batch_fraction`` / remainder (flash crowd) of ``requests``; the
    same spec drives every site — what differs per site is only the
    RNG hub it draws from.
    """
    total = int(params["requests"])
    n_inter = int(round(total * float(params["interactive_fraction"])))
    n_batch = int(round(total * float(params["batch_fraction"])))
    n_inter = min(n_inter, total)
    n_batch = min(n_batch, total - n_inter)
    n_flash = total - n_inter - n_batch
    rate = float(params["rate_per_s"])
    tenants = []
    if n_inter:
        tenants.append(
            TenantSpec(
                name="interactive",
                process="diurnal",
                count=n_inter,
                memory_mb=int(params["memory_mb"]),
                deadline_s=float(params["deadline_s"]),
                params={
                    "rate_per_s": rate
                    * float(params["interactive_fraction"]),
                    "amplitude": float(params["diurnal_amplitude"]),
                    "period_s": float(params["diurnal_period_s"]),
                },
            )
        )
    if n_batch:
        tenants.append(
            TenantSpec(
                name="batch",
                process="campaign",
                count=n_batch,
                memory_mb=int(params["memory_mb"]),
                params={
                    "gap_s": float(params["campaign_gap_s"]),
                    "size": float(params["campaign_size"]),
                    "spacing_s": float(params["campaign_spacing_s"]),
                },
            )
        )
    if n_flash:
        tenants.append(
            TenantSpec(
                name="crowd",
                process="flash",
                count=n_flash,
                memory_mb=int(params["memory_mb"]),
                params={
                    "at_s": float(params["flash_at_s"]),
                    "duration_s": float(params["flash_duration_s"]),
                },
            )
        )
    return TraceSpec(tenants=tuple(tenants))


def record_site_traces(
    seed: int,
    sites: int,
    params: Dict[str, Any],
    out_dir: str,
) -> Dict[int, str]:
    """Record every site's trace to ``<out_dir>/site<i>.jsonl``.

    Uses the same per-site hubs a live run would
    (``RngHub(site_seed(seed, site))``), so a run with
    ``trace_dir=out_dir`` replays the recorded streams bit-identically.
    Returns ``site -> streaming signature``.
    """
    scenario = MegaLoadScenario()
    prm = scenario.resolve(dict(params))
    spec = megaload_trace_spec(prm)
    os.makedirs(out_dir, exist_ok=True)
    sigs: Dict[int, str] = {}
    for site in range(sites):
        hub = RngHub(site_seed(seed, site))
        path = os.path.join(out_dir, f"site{site}.jsonl")
        sigs[site] = write_jsonl(spec.arrivals(hub), path)
    return sigs


class _MegaLoadHandle(_FederationHandle):
    __slots__ = (
        "stream",
        "summary",
        "trace_hash",
        "trace_count",
        "admission",
        "preempted",
    )

    def __init__(self, fsite: FederatedSite, sites: int, params):
        super().__init__(fsite, sites, params, times=[], routes=[])
        #: Lazy arrival iterator (generated or replayed) — never a list.
        self.stream = None
        self.summary: WorkloadSummary = None
        #: Incremental hash of the stream actually consumed.
        self.trace_hash = hashlib.sha256()
        self.trace_count = 0
        #: Gateway admission controller (disabled by default).
        self.admission = None
        #: Speculative/pooled clones reclaimed under pressure.
        self.preempted = 0


class MegaLoadScenario(FederationScenario):
    """Federated sites under lazy multi-tenant trace-driven load."""

    name = "megaload"

    def defaults(self) -> Dict[str, Any]:
        prm = dict(super().defaults())
        prm.update(
            {
                "requests": 500,
                # Tenant mix.
                "interactive_fraction": 0.5,
                "batch_fraction": 0.4,
                "deadline_s": 300.0,
                "diurnal_amplitude": 0.6,
                "diurnal_period_s": 1800.0,
                "campaign_gap_s": 90.0,
                "campaign_size": 32.0,
                "campaign_spacing_s": 1.0,
                "flash_at_s": 120.0,
                "flash_duration_s": 30.0,
                # Streaming-summary sketch configuration.
                "sketch_lo": 1e-3,
                "sketch_hi": 1e6,
                "sketch_rel_err": 0.01,
                #: Replay: site i reads <trace_dir>/site<i>.jsonl
                #: instead of generating its stream (None = generate).
                "trace_dir": None,
                # Overload admission control (all off by default; see
                # repro.federation.admission).
                #: Shed a tenant once in-flight depth reaches
                #: shed_depth // (tier + 1)  (None = no shedding).
                "shed_depth": None,
                #: Shed non-tier-0 tenants above this offered rate.
                "shed_rate_per_s": None,
                "rate_window_s": 30.0,
                #: Reclaim idle pooled clones at this depth.
                "preempt_depth": None,
                #: Tenant -> priority tier (lower = higher priority).
                "priorities": None,
                #: Build sites with adaptive speculative pools (gives
                #: preemption something to reclaim).
                "speculative_pools": False,
            }
        )
        return prm

    def build_site(
        self,
        env: Environment,
        site: int,
        sites: int,
        seed: int,
        params: Dict[str, Any],
    ) -> _MegaLoadHandle:
        from repro.faults.recovery import RecoveryPolicy
        from repro.federation.addressing import HierarchicalAddressPlan
        from repro.federation.admission import AdmissionController
        from repro.federation.site import build_federated_site
        from repro.workloads.traces import read_jsonl

        policy = RecoveryPolicy(
            spill_threshold=params["spill_threshold"],
            spill_deadline_s=params["spill_deadline_s"],
            spill_attempts=params["spill_attempts"],
            spill_backoff_s=params["spill_backoff_s"],
        )
        testbed_kw = {}
        if params["speculative_pools"]:
            from repro.provisioning import ProvisioningConfig

            testbed_kw["provisioning"] = ProvisioningConfig(
                speculative_pools=True
            )
        fsite = build_federated_site(
            site,
            sites,
            seed=seed,
            n_plants=params["plants"],
            rack_size=params["rack_size"],
            networks_per_plant=params["networks_per_plant"],
            plan=HierarchicalAddressPlan(sites),
            recovery=policy,
            env=env,
            **testbed_kw,
        )
        handle = _MegaLoadHandle(fsite, sites, params)
        handle.admission = AdmissionController(
            shed_depth=params["shed_depth"],
            shed_rate_per_s=params["shed_rate_per_s"],
            rate_window_s=params["rate_window_s"],
            preempt_depth=params["preempt_depth"],
            priorities=params["priorities"],
        )
        if params["trace_dir"] is not None:
            path = os.path.join(
                str(params["trace_dir"]), f"site{site}.jsonl"
            )
            handle.stream = read_jsonl(path)
        else:
            handle.stream = megaload_trace_spec(params).arrivals(
                fsite.bed.rng
            )
        handle.summary = WorkloadSummary(
            lo=params["sketch_lo"],
            hi=params["sketch_hi"],
            rel_err=params["sketch_rel_err"],
        )
        return handle

    # -- processes ------------------------------------------------------
    def _arrivals(self, handle: _MegaLoadHandle):
        env = handle.env
        params = handle.params
        cross = float(params["cross_fraction"])
        procs = []
        for idx, arrival in enumerate(handle.stream):
            handle.trace_hash.update(_canonical_line(arrival).encode())
            handle.trace_hash.update(b"\n")
            handle.trace_count += 1
            if arrival.time > env.now:
                yield env.timeout(arrival.time - env.now)
            # Route draw here, in stream order, so the trajectory is
            # independent of how request processes interleave later.
            is_cross = (
                handle.fsite.bed.rng.uniform("megaload/route", 0.0, 1.0)
                < cross
            )
            procs.append(
                env.process(
                    self._one_arrival(handle, idx, arrival, is_cross)
                )
            )
        if handle.fsite.bed.pools:
            # Shut the speculative pools down once the workload has
            # fully drained, so idle prefilled clones are handed back
            # and the end-of-run leak audit measures true leaks (this
            # is shutdown, not pressure — ``preempted`` not touched).
            yield env.all_of(procs)
            for pool in handle.fsite.bed.pools:
                yield from pool.shutdown()

    def _one_arrival(
        self,
        handle: _MegaLoadHandle,
        idx: int,
        arrival: Arrival,
        is_cross: bool,
    ):
        env = handle.env
        gateway = handle.fsite.gateway
        summary = handle.summary
        adm = handle.admission
        dark = gateway.down_until > env.now
        if dark and not (
            handle.params["reroute_on_blackout"]
            and handle.spill_link is not None
        ):
            # Site blackout: arrivals at a dark site fail fast.
            handle.failed += 1
            summary.record_failed(arrival.tenant)
            return
        adm_on = adm is not None and adm.enabled
        if adm_on:
            if not adm.admit(arrival.tenant, env.now):
                summary.record_shed(arrival.tenant)
                return
            if adm.maybe_preempt():
                env.process(self._preempt_pools(handle))
            adm.begin()
        try:
            yield from self._serve_arrival(
                handle, idx, arrival, is_cross or dark
            )
        finally:
            if adm_on:
                adm.done()

    def _serve_arrival(
        self,
        handle: _MegaLoadHandle,
        idx: int,
        arrival: Arrival,
        is_cross: bool,
    ):
        from repro.core.errors import ReproError
        from repro.workloads.requests import experiment_request

        env = handle.env
        params = handle.params
        gateway = handle.fsite.gateway
        summary = handle.summary
        start = env.now
        request = experiment_request(
            arrival.memory_mb,
            domain=f"site{handle.site}.grid",
            client_id=f"s{handle.site}-{arrival.tenant}-{arrival.seq}",
        )
        spill = is_cross and handle.spill_link is not None
        if not spill:
            local_bids = yield from handle.shop.estimate(request)
            if gateway.should_spill(local_bids) and (
                handle.spill_link is not None
            ):
                spill = True
                if local_bids:
                    handle.spill_saturated += 1
                else:
                    handle.spill_declined += 1
            elif not local_bids:
                handle.failed += 1
                summary.record_failed(arrival.tenant)
                return
            else:
                try:
                    ad = yield from handle.shop.create(request)
                except ReproError:
                    handle.failed += 1
                    summary.record_failed(arrival.tenant)
                    return
                handle.created += 1
                summary.record_ok(
                    arrival.tenant,
                    env.now - start,
                    deadline_s=arrival.deadline_s,
                )
                trace(env, "megaload", "created-local", req=idx)
                yield env.timeout(params["hold_s"])
                try:
                    yield from handle.shop.destroy(str(ad["vmid"]))
                except ReproError:
                    pass  # crash-killed underneath us mid-hold
                handle.destroyed += 1
                return
        outcome = yield from self._spill_with_retries(
            handle, idx, arrival.memory_mb
        )
        if outcome != "ok" and params["local_fallback"]:
            ok = yield from self._local_fallback(handle, request)
            if ok:
                outcome = "ok"
        if outcome == "ok":
            summary.record_ok(
                arrival.tenant,
                env.now - start,
                deadline_s=arrival.deadline_s,
            )
        else:
            handle.failed += 1
            summary.record_failed(arrival.tenant)

    def _preempt_pools(self, handle: _MegaLoadHandle):
        """Reclaim every idle speculative clone on this site."""
        reclaimed = 0
        for pool in handle.fsite.bed.pools:
            count = yield from pool.drain()
            reclaimed += count
        handle.preempted += reclaimed
        if reclaimed:
            trace(
                handle.env, "megaload", "preempted", count=reclaimed
            )

    def collect(self, handle: _MegaLoadHandle) -> Dict[str, Any]:
        shop = handle.shop
        summary = handle.summary
        stats = {
            "created": handle.created,
            "destroyed": handle.destroyed,
            "failed": handle.failed,
            "spills_sent": handle.spills_sent,
            "spills_recv": handle.spills_recv,
            "spilled_ok": handle.spilled_ok,
            "spill_declined": handle.spill_declined,
            "spill_saturated": handle.spill_saturated,
            "spill_failed": handle.spill_failed,
            "spill_timeout": handle.spill_timeout,
            "acks_sent": handle.acks_sent,
            "bid_rounds": shop.collector.collections,
            "bids_collected": shop.collector.bids_collected,
            "transport_calls": shop.transport.calls,
            "arrivals": handle.trace_count,
            "ok": summary.total("ok"),
            "deadline_miss": summary.total("deadline_miss"),
            "shed": summary.total("shed"),
            "preempted": handle.preempted,
            "preempt_signals": (
                handle.admission.preempt_signals
                if handle.admission is not None
                else 0
            ),
            # Strings/dicts ride per-site only (combined_stats sums
            # numeric fields and skips these).
            "trace_signature": handle.trace_hash.hexdigest(),
            "summary_state": summary.to_state(),
        }
        stats.update(self._chaos_stats(handle))
        return stats


def merge_site_summaries(
    site_results,
    group_of: Callable[[int], int] = lambda site: 0,
) -> WorkloadSummary:
    """Merge per-site summary states, partials first.

    Sites are first merged within their ``group_of(site)`` group (in
    site order), then the group partials are merged in group order —
    the exact shape of a coordinator combining per-shard partial
    summaries.  Because the summaries merge exactly, the result is
    bit-identical for *every* grouping, which the megaload experiment
    asserts by comparing state signatures across shard counts.
    """
    groups: Dict[int, WorkloadSummary] = {}
    for r in sorted(site_results, key=lambda r: r["site"]):
        state = r["stats"]["summary_state"]
        partial = WorkloadSummary.from_state(state)
        g = group_of(r["site"])
        if g in groups:
            groups[g].merge(partial)
        else:
            groups[g] = partial
    merged: WorkloadSummary = None
    for g in sorted(groups):
        if merged is None:
            merged = groups[g]
        else:
            merged.merge(groups[g])
    if merged is None:
        raise ValueError("no site summaries to merge")
    return merged


def sites_trace_signature(site_results) -> str:
    """One hash over the per-site consumed-trace signatures."""
    payload = json.dumps(
        {
            str(r["site"]): r["stats"]["trace_signature"]
            for r in site_results
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


register(MegaLoadScenario())
