"""Request streams and golden images for the SC'04 experiments.

Section 4.2: golden machines are Mandrake 8.1 workstations with 32, 64
and 256 MB of memory, checkpointed post-boot; each creation configures
the VM's network interface and a user identity inside the guest.  The
experiments issue requests *in sequence* — 128 for the 32/64 MB
machines, 40 for 256 MB.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.actions import Action, ActionScope
from repro.core.dag import ConfigDAG
from repro.core.spec import (
    CreateRequest,
    HardwareSpec,
    NetworkSpec,
    SoftwareSpec,
)
from repro.plant.warehouse import GoldenImage

__all__ = [
    "MANDRAKE_OS",
    "install_os_action",
    "experiment_dag",
    "golden_image",
    "experiment_request",
    "poisson_arrivals",
    "request_stream",
]

#: Operating system of the paper's golden machines.
MANDRAKE_OS = "linux-mandrake-8.1"


def install_os_action(os: str = MANDRAKE_OS) -> Action:
    """The base install step every image has performed."""
    return Action(
        "install-os",
        scope=ActionScope.HOST,
        command="install-os {distro}",
        params={"distro": os},
    )


def configure_network_action() -> Action:
    """Guest-side setup of the VM's network interface."""
    return Action(
        "configure-network",
        command="ifconfig eth0 $VMPLANT_IP netmask 255.255.255.0",
        outputs=("ip",),
    )


def setup_user_action(username: str = "griduser") -> Action:
    """Guest-side creation of the user identity."""
    return Action(
        "setup-user",
        command="useradd -m {user} && echo {user}:x | chpasswd -e",
        params={"user": username},
        outputs=("user_home",),
    )


def experiment_dag(
    os: str = MANDRAKE_OS, username: str = "griduser"
) -> ConfigDAG:
    """Configuration DAG of the Section 4.2 creation experiments:
    install-os (cached) → configure-network → setup-user."""
    return ConfigDAG.from_sequence(
        [
            install_os_action(os),
            configure_network_action(),
            setup_user_action(username),
        ]
    )


def golden_image(
    memory_mb: int,
    vm_type: str = "vmware",
    os: str = MANDRAKE_OS,
    image_id: Optional[str] = None,
    disk_gb: float = 4.0,
    checkpointed: Optional[bool] = None,
) -> GoldenImage:
    """A post-boot golden machine matching the paper's warehouse.

    VMware images are suspended (memory state ≈ guest memory); UML
    images by default boot from the CoW file system and carry no
    memory state — pass ``checkpointed=True`` for an SBUML-style
    snapshot that clones resume from without a full reboot (the
    "on-going experimental studies" of Section 4.3).  The virtual
    disk occupies 2 GB across 16 files.
    """
    if checkpointed is None:
        checkpointed = vm_type == "vmware"
    suffix = "-sbuml" if (checkpointed and vm_type == "uml") else ""
    return GoldenImage(
        image_id=image_id or f"{vm_type}-mandrake81-{memory_mb}mb{suffix}",
        vm_type=vm_type,
        os=os,
        hardware=HardwareSpec(memory_mb=memory_mb, disk_gb=disk_gb),
        performed=(install_os_action(os),),
        disk_state_mb=2048.0,
        disk_files=16,
        memory_state_mb=float(memory_mb) if checkpointed else 0.0,
        base_redo_mb=16.0,
        config_mb=0.1,
    )


def experiment_request(
    memory_mb: int,
    vm_type: Optional[str] = "vmware",
    os: str = MANDRAKE_OS,
    domain: str = "acis.ufl.edu",
    client_id: str = "invigo",
    username: str = "griduser",
) -> CreateRequest:
    """One Section 4.2 creation request."""
    return CreateRequest(
        hardware=HardwareSpec(memory_mb=memory_mb),
        software=SoftwareSpec(os=os, dag=experiment_dag(os, username)),
        network=NetworkSpec(domain=domain),
        client_id=client_id,
        vm_type=vm_type,
    )


def request_stream(
    memory_mb: int,
    count: int,
    vm_type: Optional[str] = "vmware",
    domains: Sequence[str] = ("acis.ufl.edu",),
    os: str = MANDRAKE_OS,
) -> List[CreateRequest]:
    """A sequential request stream, round-robining client domains."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [
        experiment_request(
            memory_mb,
            vm_type=vm_type,
            os=os,
            domain=domains[i % len(domains)],
            client_id=f"client-{domains[i % len(domains)]}",
        )
        for i in range(count)
    ]


def poisson_arrivals(
    rng,
    rate_per_s: float,
    count: int,
    stream: str = "arrivals",
) -> List[float]:
    """Absolute arrival times of a Poisson process.

    ``rng`` is an :class:`~repro.sim.rng.RngHub`; draws come from the
    named stream so arrival patterns are reproducible and independent
    of other randomness.  Open-loop experiments pair this with
    :func:`request_stream`::

        times = poisson_arrivals(bed.rng, rate_per_s=0.1, count=24)
        for t, request in zip(times, request_stream(64, 24)):
            env.process(arrive_at(t, request))
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    times: List[float] = []
    now = 0.0
    for _ in range(count):
        now += rng.expovariate(stream, rate_per_s)
        times.append(now)
    return times
