"""Workload builders: request streams, canonical DAGs, and lazy
trace-driven arrival processes (:mod:`repro.workloads.traces`).

The ``megaload`` shard scenario lives in
:mod:`repro.workloads.megaload` and is *not* imported here — it pulls
in the federation package, and the scenario registry resolves it
lazily by name.
"""

from repro.workloads.invigo import (
    invigo_cached_prefix,
    invigo_workspace_dag,
)
from repro.workloads.requests import (
    experiment_dag,
    experiment_request,
    golden_image,
    request_stream,
)
from repro.workloads.traces import (
    PROCESS_KINDS,
    Arrival,
    TenantSpec,
    TraceSpec,
    merge_arrivals,
    read_jsonl,
    trace_signature,
    write_jsonl,
)

__all__ = [
    "PROCESS_KINDS",
    "Arrival",
    "TenantSpec",
    "TraceSpec",
    "experiment_dag",
    "experiment_request",
    "golden_image",
    "invigo_cached_prefix",
    "invigo_workspace_dag",
    "merge_arrivals",
    "read_jsonl",
    "request_stream",
    "trace_signature",
    "write_jsonl",
]
