"""Workload builders: request streams and canonical DAGs."""

from repro.workloads.invigo import (
    invigo_cached_prefix,
    invigo_workspace_dag,
)
from repro.workloads.requests import (
    experiment_dag,
    experiment_request,
    golden_image,
    request_stream,
)

__all__ = [
    "experiment_dag",
    "experiment_request",
    "golden_image",
    "invigo_cached_prefix",
    "invigo_workspace_dag",
    "request_stream",
]
