"""Lazy, composable, replayable trace-driven arrival processes.

The paper's experiments issue at most 128 sequential requests; real
grid load is bursty, diurnal and multi-tenant — interactive users on
a day/night cycle, CMS-style batch production campaigns, flash
crowds.  This module generates such load as *lazy streams*: each
tenant is a :class:`TenantSpec` (pure data), its arrivals come from a
dedicated per-tenant RNG stream of the simulation's
:class:`~repro.sim.rng.RngHub`, and the tenants are heap-merged into
one deterministic time-ordered stream that is **never materialized**
— a million-request trace costs a few generator frames, not a list.

Determinism and replay mirror :class:`~repro.faults.plan.FaultPlan`'s
contract:

* generation is a pure function of ``(hub seed, spec)`` — per-tenant
  streams are independent by stream naming, so adding a tenant never
  perturbs another tenant's draws;
* a stream can be recorded to JSONL (:func:`write_jsonl`) and
  replayed from the file (:func:`read_jsonl`) with bit-identical
  events, and :func:`trace_signature` hashes a stream incrementally
  (SHA-256 over the canonical JSONL lines) so recorded and
  regenerated traces can be compared without holding either in
  memory.

Four arrival processes ship (see :data:`PROCESS_KINDS`):

``poisson``
    Homogeneous Poisson arrivals at ``rate_per_s``.
``diurnal``
    Sinusoid-modulated Poisson via Lewis thinning: candidates are
    drawn at the peak rate and accepted with probability
    ``rate(t)/peak`` where ``rate(t) = rate_per_s * (1 + amplitude *
    sin(2*pi*(t - phase_s)/period_s))`` — interactive users with a
    day/night cycle.
``flash``
    A flash crowd: ``count`` arrivals in an exponential burst at
    ``at_s`` with mean spacing ``duration_s / count``.
``campaign``
    Batch production campaigns (the CMS Virtual Data pattern): each
    campaign submits ``size`` jobs spaced ``spacing_s`` apart, and the
    next campaign opens an exponential gap of mean ``gap_s`` after the
    previous one drains (keeping the tenant's stream time-ordered).
"""

from __future__ import annotations

import hashlib
import heapq
import json
from dataclasses import dataclass
from typing import (
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.sim.rng import RngHub

__all__ = [
    "PROCESS_KINDS",
    "Arrival",
    "TenantSpec",
    "TraceSpec",
    "merge_arrivals",
    "trace_signature",
    "write_jsonl",
    "read_jsonl",
]

#: Supported ``TenantSpec.process`` kinds.
PROCESS_KINDS = ("poisson", "diurnal", "flash", "campaign")


@dataclass(frozen=True, slots=True)
class Arrival:
    """One request arrival in a workload trace."""

    time: float
    tenant: str
    #: Tenant class (the generating process kind).
    kind: str
    #: Per-tenant sequence number, 0-based.
    seq: int
    memory_mb: int
    #: Soft completion deadline (simulated s); None = best-effort.
    deadline_s: Optional[float] = None

    def sort_key(self) -> Tuple[float, str, int]:
        """Total order of the merged stream: (time, tenant, seq)."""
        return (self.time, self.tenant, self.seq)

    def to_record(self) -> dict:
        record = {
            "time": self.time,
            "tenant": self.tenant,
            "kind": self.kind,
            "seq": self.seq,
            "memory_mb": self.memory_mb,
        }
        if self.deadline_s is not None:
            record["deadline_s"] = self.deadline_s
        return record

    @classmethod
    def from_record(cls, record: dict) -> "Arrival":
        return cls(
            time=float(record["time"]),
            tenant=str(record["tenant"]),
            kind=str(record["kind"]),
            seq=int(record["seq"]),
            memory_mb=int(record["memory_mb"]),
            deadline_s=(
                float(record["deadline_s"])
                if "deadline_s" in record
                else None
            ),
        )


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class: pure data describing an arrival process.

    ``params`` holds the process-specific knobs (see the module
    docstring); unknown keys are rejected at generation time so specs
    stay replayable across versions.  Draws come from the tenant's own
    ``trace/<name>`` stream of the hub.
    """

    name: str
    process: str
    count: int
    memory_mb: int = 32
    deadline_s: Optional[float] = None
    start_s: float = 0.0
    params: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.process not in PROCESS_KINDS:
            raise ValueError(
                f"unknown arrival process {self.process!r}; "
                f"known: {PROCESS_KINDS}"
            )
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if isinstance(self.params, dict):
            object.__setattr__(
                self, "params", tuple(sorted(self.params.items()))
            )

    def param(self, key: str, default: float) -> float:
        for k, v in self.params:
            if k == key:
                return float(v)
        return float(default)

    def _known_params(self) -> Tuple[str, ...]:
        return {
            "poisson": ("rate_per_s",),
            "diurnal": (
                "rate_per_s",
                "amplitude",
                "period_s",
                "phase_s",
            ),
            "flash": ("at_s", "duration_s"),
            "campaign": ("gap_s", "size", "spacing_s"),
        }[self.process]

    def arrivals(self, hub: RngHub) -> Iterator[Arrival]:
        """Lazy arrival stream for this tenant (strictly ordered)."""
        unknown = {k for k, _ in self.params} - set(
            self._known_params()
        )
        if unknown:
            raise ValueError(
                f"unknown {self.process} params for tenant "
                f"{self.name!r}: {sorted(unknown)}"
            )
        times = {
            "poisson": self._poisson,
            "diurnal": self._diurnal,
            "flash": self._flash,
            "campaign": self._campaign,
        }[self.process](hub.stream(f"trace/{self.name}"))
        for seq, t in enumerate(times):
            yield Arrival(
                time=t,
                tenant=self.name,
                kind=self.process,
                seq=seq,
                memory_mb=self.memory_mb,
                deadline_s=self.deadline_s,
            )

    # -- per-process inter-arrival generators ---------------------------
    def _poisson(self, rng) -> Iterator[float]:
        rate = self.param("rate_per_s", 1.0)
        if rate <= 0:
            raise ValueError("rate_per_s must be positive")
        t = self.start_s
        for _ in range(self.count):
            t += rng.expovariate(rate)
            yield t

    def _diurnal(self, rng) -> Iterator[float]:
        import math

        rate = self.param("rate_per_s", 1.0)
        amplitude = self.param("amplitude", 0.8)
        period = self.param("period_s", 86400.0)
        phase = self.param("phase_s", 0.0)
        if rate <= 0 or period <= 0:
            raise ValueError("rate_per_s and period_s must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        peak = rate * (1.0 + amplitude)
        t = self.start_s
        emitted = 0
        while emitted < self.count:
            # Lewis thinning: candidate at the peak rate, then one
            # accept draw — both from the tenant stream, in a fixed
            # order, so the trace is a pure function of the seed.
            t += rng.expovariate(peak)
            accept = rng.random()
            current = rate * (
                1.0
                + amplitude
                * math.sin(2.0 * math.pi * (t - phase) / period)
            )
            if accept * peak < current:
                emitted += 1
                yield t

    def _flash(self, rng) -> Iterator[float]:
        at = self.param("at_s", self.start_s)
        duration = self.param("duration_s", 60.0)
        if duration <= 0:
            raise ValueError("duration_s must be positive")
        burst_rate = max(self.count, 1) / duration
        t = at
        for _ in range(self.count):
            t += rng.expovariate(burst_rate)
            yield t

    def _campaign(self, rng) -> Iterator[float]:
        gap = self.param("gap_s", 3600.0)
        size = int(self.param("size", 32))
        spacing = self.param("spacing_s", 5.0)
        if gap <= 0 or size <= 0 or spacing < 0:
            raise ValueError(
                "gap_s and size must be positive, spacing_s >= 0"
            )
        emitted = 0
        t = self.start_s
        while emitted < self.count:
            # Next campaign opens an exponential gap after the previous
            # one drains — keeps the per-tenant stream non-decreasing
            # (the merge contract) while staying bursty.
            start = t + rng.expovariate(1.0 / gap)
            jobs = min(size, self.count - emitted)
            for j in range(jobs):
                t = start + j * spacing
                yield t
                emitted += 1

    # -- record / replay ------------------------------------------------
    def to_record(self) -> dict:
        record = {
            "name": self.name,
            "process": self.process,
            "count": self.count,
            "memory_mb": self.memory_mb,
            "start_s": self.start_s,
            "params": [list(p) for p in self.params],
        }
        if self.deadline_s is not None:
            record["deadline_s"] = self.deadline_s
        return record

    @classmethod
    def from_record(cls, record: dict) -> "TenantSpec":
        return cls(
            name=str(record["name"]),
            process=str(record["process"]),
            count=int(record["count"]),
            memory_mb=int(record["memory_mb"]),
            deadline_s=(
                float(record["deadline_s"])
                if "deadline_s" in record
                else None
            ),
            start_s=float(record.get("start_s", 0.0)),
            params=tuple(
                (str(k), float(v)) for k, v in record.get("params", ())
            ),
        )


def merge_arrivals(
    streams: Iterable[Iterator[Arrival]],
) -> Iterator[Arrival]:
    """Heap-merge lazy per-tenant streams into one ordered stream.

    Each input must be non-decreasing in time (every shipped process
    is); the merge is total-ordered by ``(time, tenant, seq)`` so
    simultaneous arrivals across tenants have one canonical order —
    the same property :func:`repro.sim.shard.tracemerge.merge_traces`
    gives shard-tagged kernel traces.
    """
    return heapq.merge(*streams, key=Arrival.sort_key)


@dataclass(frozen=True)
class TraceSpec:
    """A multi-tenant workload: tenants merged into one lazy stream.

    Pure data, like :class:`~repro.faults.plan.FaultPlan`:
    ``to_records``/``from_records`` round-trip it through JSON, and
    :meth:`signature` hashes the *spec*; :func:`trace_signature`
    hashes a generated *stream*.  Tenant names must be unique — they
    key the RNG streams and the merge order.
    """

    tenants: Tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")

    @property
    def total_requests(self) -> int:
        return sum(t.count for t in self.tenants)

    def arrivals(self, hub: RngHub) -> Iterator[Arrival]:
        """The merged lazy stream (never materialized)."""
        return merge_arrivals(t.arrivals(hub) for t in self.tenants)

    def to_records(self) -> List[dict]:
        return [t.to_record() for t in self.tenants]

    @classmethod
    def from_records(cls, records: Iterable[dict]) -> "TraceSpec":
        return cls(
            tenants=tuple(
                TenantSpec.from_record(r) for r in records
            )
        )

    def signature(self) -> str:
        """Content hash of the spec (not of any generated stream)."""
        payload = json.dumps(self.to_records(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()


def _canonical_line(arrival: Arrival) -> str:
    return json.dumps(
        arrival.to_record(), sort_keys=True, separators=(",", ":")
    )


def trace_signature(arrivals: Iterable[Arrival]) -> str:
    """Streaming SHA-256 over the canonical JSONL encoding.

    Constant memory: consumes the stream one event at a time.  The
    same events always hash to the same signature, whether they came
    from a generator or from :func:`read_jsonl`.
    """
    h = hashlib.sha256()
    for arrival in arrivals:
        h.update(_canonical_line(arrival).encode())
        h.update(b"\n")
    return h.hexdigest()


def write_jsonl(
    arrivals: Iterable[Arrival], fh_or_path: Union[str, IO[str]]
) -> str:
    """Record a stream to JSONL; returns its streaming signature.

    One canonical JSON object per line — re-reading the file yields
    bit-identical events and the identical signature, the replay
    contract the deterministic-replay tests pin.
    """
    h = hashlib.sha256()

    def pump(fh: IO[str]) -> None:
        for arrival in arrivals:
            line = _canonical_line(arrival)
            fh.write(line)
            fh.write("\n")
            h.update(line.encode())
            h.update(b"\n")

    if isinstance(fh_or_path, str):
        with open(fh_or_path, "w") as fh:
            pump(fh)
    else:
        pump(fh_or_path)
    return h.hexdigest()


def read_jsonl(
    fh_or_path: Union[str, IO[str]],
) -> Iterator[Arrival]:
    """Lazily replay a recorded trace (one event per line)."""

    def pump(fh: IO[str]) -> Iterator[Arrival]:
        for line in fh:
            line = line.strip()
            if line:
                yield Arrival.from_record(json.loads(line))

    if isinstance(fh_or_path, str):

        def opened() -> Iterator[Arrival]:
            with open(fh_or_path) as fh:
                yield from pump(fh)

        return opened()
    return pump(fh_or_path)
