"""Site-local-first placement with cross-site spill-over bids.

The federation's placement rule (§3.1's broker tree, stretched over
sites): a request entering a site is first bid out *inside* that site
only.  Cross-site traffic happens in exactly two cases —

* the local site **declines** outright (no rack broker bids: every
  plant is full or down), or
* the local site is **saturated**: its best local bid exceeds the
  ``spill_threshold`` of the site's
  :class:`~repro.faults.recovery.RecoveryPolicy` (creation-cost bids
  grow with queue depth, so a high bid *is* the saturation signal).

Only then does the gateway collect bids from remote site gateways,
bounded by ``spill_deadline_s`` so one slow WAN peer cannot stall the
round, and dispatches the create to the cheapest remote.  Keeping
discovery site-local first is what makes the control plane shard: the
common-case request never leaves its site's kernel shard, and only
spill-overs cross :class:`~repro.sim.network.BoundaryLink`\\ s.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence

from repro.core.errors import ShopError
from repro.core.spec import CreateRequest
from repro.faults.recovery import RecoveryPolicy
from repro.shop.bidding import Bid
from repro.shop.vmshop import VMShop

__all__ = ["FederationGateway"]


class FederationGateway:
    """One site's entry point into the federated grid."""

    def __init__(
        self,
        site: int,
        shop: VMShop,
        policy: Optional[RecoveryPolicy] = None,
    ):
        self.site = site
        self.shop = shop
        self.policy = policy or shop.recovery
        #: Remote peers, in site order: anything exposing ``name``,
        #: ``estimate(request)`` and ``create(request, vmid, ...)`` —
        #: in grid mode the other sites' gateways themselves.
        self.remotes: List[Any] = []
        #: The gateway bids into the federation under this name.
        self.name = f"site{site}-gateway"
        # Spill accounting for the experiments/bench.
        self.local_creates = 0
        self.spill_creates = 0
        self.spills_declined = 0
        self.spills_saturated = 0
        self.spill_failures = 0

    def add_remote(self, gateway: Any) -> None:
        if gateway is self:
            raise ShopError("a site cannot be its own spill-over remote")
        self.remotes.append(gateway)

    # -- federation-facing bidder protocol ----------------------------------
    def estimate(self, request: CreateRequest) -> Generator:
        """This site's best local bid (None = site declines)."""
        bids = yield from self.shop.estimate(request)
        if not bids:
            return None
        return min(bid.cost for bid in bids)

    def create(
        self,
        request: CreateRequest,
        vmid: Optional[str] = None,
        clone_mode: Optional[Any] = None,
    ) -> Generator:
        """Create strictly inside this site (a remote's spill target).

        ``vmid`` is accepted for bidder-protocol compatibility but the
        VM is always named by the owning site's shop — VMIDs stay
        site-unique and routable.
        """
        ad = yield from self.shop.create(request, clone_mode)
        return ad

    # -- spill decision ------------------------------------------------------
    def should_spill(self, local_bids: Sequence[Bid]) -> bool:
        """Spill when the site declines or its best bid is saturated."""
        if not local_bids:
            return True
        if self.policy.spill_threshold is None:
            return False
        return min(bid.cost for bid in local_bids) > self.policy.spill_threshold

    # -- placement ----------------------------------------------------------
    def place(
        self,
        request: CreateRequest,
        clone_mode: Optional[Any] = None,
    ) -> Generator:
        """Place a request: local site first, spill-over second.

        Returns ``(classad, site)`` — the classad of the created VM
        and the site that hosts it.  Raises :class:`ShopError` when
        the local site declines/saturates and no remote bids either.
        """
        local_bids = yield from self.shop.estimate(request)
        if not self.should_spill(local_bids):
            ad = yield from self.shop.create(request, clone_mode)
            self.local_creates += 1
            return ad, self.site
        if local_bids:
            self.spills_saturated += 1
        else:
            self.spills_declined += 1

        remote_bids = yield from self.shop.collector.collect(
            self.remotes, request, deadline_s=self.policy.spill_deadline_s
        )
        if remote_bids:
            winner = self.shop.collector.select(remote_bids)
            try:
                ad = yield from self.shop.transport.call(
                    lambda: winner.bidder.create(request, None, clone_mode)
                )
            except ShopError:
                # The remote filled up between bid and create; fall
                # back on whatever the local site can still do.
                self.spill_failures += 1
            else:
                self.spill_creates += 1
                return ad, getattr(winner.bidder, "site", -1)
        if local_bids:
            # Saturated is still better than failed.
            ad = yield from self.shop.create(request, clone_mode)
            self.local_creates += 1
            return ad, self.site
        raise ShopError(
            f"site {self.site}: no local or remote plant bid for the request"
        )

    def __repr__(self) -> str:
        return (
            f"<FederationGateway site={self.site} "
            f"local={self.local_creates} spilled={self.spill_creates} "
            f"remotes={len(self.remotes)}>"
        )
