"""Site-local-first placement with cross-site spill-over bids.

The federation's placement rule (§3.1's broker tree, stretched over
sites): a request entering a site is first bid out *inside* that site
only.  Cross-site traffic happens in exactly two cases —

* the local site **declines** outright (no rack broker bids: every
  plant is full or down), or
* the local site is **saturated**: its best local bid exceeds the
  ``spill_threshold`` of the site's
  :class:`~repro.faults.recovery.RecoveryPolicy` (creation-cost bids
  grow with queue depth, so a high bid *is* the saturation signal).

Only then does the gateway collect bids from remote site gateways,
bounded by ``spill_deadline_s`` so one slow WAN peer cannot stall the
round, and walks the ranked remote bids as a **failover ladder**: a
remote whose create fails (it filled up between bid and create, or
its site went dark) costs one rung, not the whole round.  Exhausting
the ladder starts a fresh spill round after
``RecoveryPolicy.spill_backoff_s`` (up to ``spill_attempts`` rounds),
and repeatedly-failing remotes are quarantined by per-remote
:class:`~repro.faults.health.PlantHealth` circuit breakers
(``remote_quarantine_threshold``).  Keeping discovery site-local
first is what makes the control plane shard: the common-case request
never leaves its site's kernel shard, and only spill-overs cross
:class:`~repro.sim.network.BoundaryLink`\\ s.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Sequence

from repro.core.errors import ShopError
from repro.core.spec import CreateRequest
from repro.faults.health import PlantHealth
from repro.faults.recovery import RecoveryPolicy
from repro.shop.bidding import Bid
from repro.shop.vmshop import VMShop

__all__ = ["FederationGateway"]


class FederationGateway:
    """One site's entry point into the federated grid."""

    def __init__(
        self,
        site: int,
        shop: VMShop,
        policy: Optional[RecoveryPolicy] = None,
    ):
        self.site = site
        self.shop = shop
        self.policy = policy or shop.recovery
        #: Remote peers, in site order: anything exposing ``name``,
        #: ``estimate(request)`` and ``create(request, vmid, ...)`` —
        #: in grid mode the other sites' gateways themselves.
        self.remotes: List[Any] = []
        #: The gateway bids into the federation under this name.
        self.name = f"site{site}-gateway"
        #: Absolute simulated times this gateway is unavailable:
        #: ``down_until`` (site blackout — estimates decline, creates
        #: fail fast) and ``hang_until`` (gateway hang — inbound
        #: creates stall).  Both heal by clock comparison; the fault
        #: injector only ever raises them.
        self.down_until = 0.0
        self.hang_until = 0.0
        #: Per-remote circuit breakers (active when the policy's
        #: ``remote_quarantine_threshold`` > 0).
        self.remote_health: Dict[str, PlantHealth] = {}
        # Spill accounting for the experiments/bench.
        self.local_creates = 0
        self.spill_creates = 0
        self.spills_declined = 0
        self.spills_saturated = 0
        self.spill_failures = 0
        self.spill_retries = 0

    def add_remote(self, gateway: Any) -> None:
        if gateway is self:
            raise ShopError("a site cannot be its own spill-over remote")
        self.remotes.append(gateway)

    # -- federation-facing bidder protocol ----------------------------------
    def estimate(self, request: CreateRequest) -> Generator:
        """This site's best local bid (None = site declines)."""
        if self.down_until > self.shop.env.now:
            return None  # site dark: decline without touching plants
        bids = yield from self.shop.estimate(request)
        if not bids:
            return None
        return min(bid.cost for bid in bids)

    def create(
        self,
        request: CreateRequest,
        vmid: Optional[str] = None,
        clone_mode: Optional[Any] = None,
    ) -> Generator:
        """Create strictly inside this site (a remote's spill target).

        ``vmid`` is accepted for bidder-protocol compatibility but the
        VM is always named by the owning site's shop — VMIDs stay
        site-unique and routable.  A dark site fails fast; a hung
        gateway stalls the caller until the hang window passes.
        """
        if self.down_until > self.shop.env.now:
            raise ShopError(
                f"{self.name}: site dark until t={self.down_until:.1f}"
            )
        if self.hang_until > self.shop.env.now:
            yield self.shop.env.timeout(
                self.hang_until - self.shop.env.now
            )
            if self.down_until > self.shop.env.now:
                raise ShopError(
                    f"{self.name}: site went dark during gateway hang"
                )
        ad = yield from self.shop.create(request, clone_mode)
        return ad

    # -- spill decision ------------------------------------------------------
    def should_spill(self, local_bids: Sequence[Bid]) -> bool:
        """Spill when the site declines or its best bid is saturated."""
        if not local_bids:
            return True
        if self.policy.spill_threshold is None:
            return False
        return min(bid.cost for bid in local_bids) > self.policy.spill_threshold

    # -- remote circuit breakers --------------------------------------------
    def _breaker(self, remote: Any) -> Optional[PlantHealth]:
        if self.policy.remote_quarantine_threshold <= 0:
            return None
        name = getattr(remote, "name", str(remote))
        health = self.remote_health.get(name)
        if health is None:
            health = PlantHealth(
                name,
                self.policy.remote_quarantine_threshold,
                self.policy.remote_quarantine_s,
            )
            self.remote_health[name] = health
        return health

    def _open_remotes(self) -> List[Any]:
        """Remotes admitted by their breakers (all, when disabled)."""
        now = self.shop.env.now
        admitted = []
        for remote in self.remotes:
            health = self._breaker(remote)
            if health is None or health.allows(now):
                admitted.append(remote)
        return admitted

    def _record_remote(self, remote: Any, ok: bool) -> None:
        health = self._breaker(remote)
        if health is not None:
            now = self.shop.env.now
            if ok:
                health.record_success(now)
            else:
                health.record_failure(now)

    # -- placement ----------------------------------------------------------
    def _spill(
        self,
        request: CreateRequest,
        clone_mode: Optional[Any],
    ) -> Generator:
        """Walk the spill failover ladder; returns ``(ad, site)`` or
        ``None`` when every remote rung failed.

        Each round collects fresh bids from breaker-admitted remotes
        and tries them best-first; a failed create costs one rung and
        feeds that remote's breaker.  Further rounds wait
        ``spill_backoff_delay`` first.  Every create attempt beyond
        the first is counted in ``spill_retries``.
        """
        rounds = max(1, self.policy.spill_attempts)
        tried = 0
        for round_no in range(1, rounds + 1):
            if round_no > 1:
                delay = self.policy.spill_backoff_delay(round_no)
                if delay > 0:
                    yield self.shop.env.timeout(delay)
            remote_bids = yield from self.shop.collector.collect(
                self._open_remotes(),
                request,
                deadline_s=self.policy.spill_deadline_s,
            )
            if not remote_bids:
                continue
            for bid in self.shop.collector.rank(remote_bids):
                if tried:
                    self.spill_retries += 1
                tried += 1
                try:
                    ad = yield from self.shop.transport.call(
                        lambda b=bid: b.bidder.create(
                            request, None, clone_mode
                        )
                    )
                except ShopError:
                    # The remote filled up (or went dark) between bid
                    # and create; fail over to the next rung.
                    self.spill_failures += 1
                    self._record_remote(bid.bidder, ok=False)
                else:
                    self.spill_creates += 1
                    self._record_remote(bid.bidder, ok=True)
                    return ad, getattr(bid.bidder, "site", -1)
        return None

    def place(
        self,
        request: CreateRequest,
        clone_mode: Optional[Any] = None,
    ) -> Generator:
        """Place a request: local site first, spill-over second.

        Returns ``(classad, site)`` — the classad of the created VM
        and the site that hosts it.  Raises :class:`ShopError` when
        the local site declines/saturates and no remote bids either.
        """
        local_bids = yield from self.shop.estimate(request)
        if not self.should_spill(local_bids):
            ad = yield from self.shop.create(request, clone_mode)
            self.local_creates += 1
            return ad, self.site
        if local_bids:
            self.spills_saturated += 1
        else:
            self.spills_declined += 1

        placed = yield from self._spill(request, clone_mode)
        if placed is not None:
            return placed
        if local_bids:
            # Saturated is still better than failed.
            ad = yield from self.shop.create(request, clone_mode)
            self.local_creates += 1
            return ad, self.site
        raise ShopError(
            f"site {self.site}: no local or remote plant bid for the request"
        )

    def __repr__(self) -> str:
        return (
            f"<FederationGateway site={self.site} "
            f"local={self.local_creates} spilled={self.spill_creates} "
            f"remotes={len(self.remotes)}>"
        )
