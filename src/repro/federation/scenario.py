"""The ``federation`` shard scenario: one site per kernel shard.

Site *i* is a full :func:`~repro.federation.site.build_federated_site`
testbed (rack brokers, site subnet block, spill gateway) living in its
own :class:`~repro.sim.kernel.Environment`.  An open-loop Poisson
request stream hits each site; a request leaves its site in exactly
two cases —

* it was drawn as **cross-site traffic** (probability
  ``cross_fraction``, from the deterministic ``federation/route``
  stream), modelling clients whose work is pinned elsewhere, or
* the local site **declines or saturates**
  (:meth:`~repro.federation.gateway.FederationGateway.should_spill`
  over the local rack-broker bids).

A spilled request rides the ``spill`` boundary link to the ring
neighbour, which provisions the VM in *its* shop and answers over the
reverse ``ack`` link; the source waits on the ack bounded by the
policy's ``spill_deadline_s``.  Both links carry ≤4-float payloads
and their latencies are the conservative-sync lookahead, so the
cross-site path is exactly as parallel as the PR 6 kernel allows.

Determinism: site builds, arrival times and route draws are pure
functions of ``(seed, site, params)``, and boundary deliveries follow
the runner's canonical order — merged-trace fingerprints are
identical for every shard count (the contract the federation tests
and the bench's determinism recheck pin).

Chaos composes in: ``fault_plan`` (recorded
:func:`~repro.faults.plan.grid_fault_plan` events) attaches a
:class:`~repro.faults.injector.FaultInjector` to every site worker —
each site slices its own sub-plan by tag, so injection is the same
schedule at any shard count.  Spill resilience rides the same params:
``spill_attempts``/``spill_backoff_s`` retry a failed or timed-out
spill over the ring (each retry uses a fresh wire sequence number so
stale acks cannot collide), and ``local_fallback`` tries the home
site one last time after the ring gives up.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryPolicy
from repro.federation.addressing import HierarchicalAddressPlan
from repro.federation.site import FederatedSite, build_federated_site
from repro.sim.kernel import Environment
from repro.sim.shard.plan import LinkSpec
from repro.sim.shard.scenarios import ShardScenario, register
from repro.sim.trace import trace

__all__ = ["FederationScenario"]


class _FederationHandle:
    __slots__ = (
        "fsite",
        "site",
        "sites",
        "params",
        "times",
        "routes",
        "spill_link",
        "ack_link",
        "pending",
        "created",
        "destroyed",
        "failed",
        "spills_sent",
        "spills_recv",
        "spilled_ok",
        "spill_declined",
        "spill_saturated",
        "spill_failed",
        "spill_timeout",
        "spill_retries",
        "spills_dropped",
        "local_fallbacks",
        "acks_sent",
        "latencies",
        "injector",
    )

    def __init__(
        self,
        fsite: FederatedSite,
        sites: int,
        params: Dict[str, Any],
        times: List[float],
        routes: List[bool],
    ):
        self.fsite = fsite
        self.site = fsite.site
        self.sites = sites
        self.params = params
        self.times = times
        #: Per-request cross-site draw (consumed in arrival order).
        self.routes = routes
        self.spill_link = None
        self.ack_link = None
        #: seq -> ack Event for spills in flight.
        self.pending: Dict[int, Any] = {}
        self.created = 0
        self.destroyed = 0
        self.failed = 0
        self.spills_sent = 0
        self.spills_recv = 0
        self.spilled_ok = 0
        self.spill_declined = 0
        self.spill_saturated = 0
        self.spill_failed = 0
        self.spill_timeout = 0
        self.spill_retries = 0
        self.spills_dropped = 0
        self.local_fallbacks = 0
        self.acks_sent = 0
        #: Request completion latencies (simulated s), local + spilled.
        self.latencies: List[float] = []
        #: Attached fault injector (None when ``fault_plan`` is off).
        self.injector = None

    @property
    def env(self) -> Environment:
        return self.fsite.bed.env

    @property
    def shop(self):
        return self.fsite.bed.shop


class FederationScenario(ShardScenario):
    """Federated grid under load: site-local first, spill-over second."""

    name = "federation"

    def defaults(self) -> Dict[str, Any]:
        return {
            "plants": 8,
            "rack_size": 8,
            "networks_per_plant": 4,
            "memory_mb": 32,
            "rate_per_s": 2.0,
            "requests": 160,
            "hold_s": 40.0,
            #: Fraction of requests pinned to the ring neighbour.
            "cross_fraction": 0.1,
            #: Saturation spill: best local bid above this cost spills
            #: (None = spill only when the site declines outright).
            "spill_threshold": None,
            # A local create runs ~75-120 simulated s; a spill adds two
            # WAN hops, so the default deadline only catches genuinely
            # stuck remotes, not ordinary cross-site provisioning.
            "spill_deadline_s": 400.0,
            "spill_hold_s": 30.0,
            "spill_mb": 4.0,
            "ack_mb": 0.5,
            "link_latency_s": 8.0,
            "link_bandwidth_mbps": 25.0,
            #: Recorded grid fault-plan events (grid_fault_plan(...)
            #: .to_records()); each site slices its sub-plan by tag.
            "fault_plan": None,
            #: Spill rounds per request over the ring (1 = no retry).
            "spill_attempts": 1,
            #: First retry delay; doubles per further round.
            "spill_backoff_s": 0.0,
            #: Try the home site once more after the ring gives up.
            "local_fallback": False,
            #: Blackout failover: arrivals at a dark site ride the
            #: spill ring to the neighbour instead of failing fast
            #: (off = a dark site's own clients are dark too).
            "reroute_on_blackout": False,
        }

    def link_specs(
        self, sites: int, params: Dict[str, Any]
    ) -> List[LinkSpec]:
        if sites < 2:
            return []
        specs = []
        for i in range(sites):
            specs.append(
                LinkSpec(
                    name=f"spill{i}",
                    src=i,
                    dst=(i + 1) % sites,
                    endpoint="spill",
                    bandwidth_mbps=params["link_bandwidth_mbps"],
                    latency_s=params["link_latency_s"],
                )
            )
            specs.append(
                LinkSpec(
                    name=f"ack{i}",
                    src=i,
                    dst=(i - 1 + sites) % sites,
                    endpoint="ack",
                    bandwidth_mbps=params["link_bandwidth_mbps"],
                    latency_s=params["link_latency_s"],
                )
            )
        return specs

    def build_site(
        self,
        env: Environment,
        site: int,
        sites: int,
        seed: int,
        params: Dict[str, Any],
    ) -> _FederationHandle:
        from repro.workloads.requests import poisson_arrivals

        policy = RecoveryPolicy(
            spill_threshold=params["spill_threshold"],
            spill_deadline_s=params["spill_deadline_s"],
            spill_attempts=params["spill_attempts"],
            spill_backoff_s=params["spill_backoff_s"],
        )
        fsite = build_federated_site(
            site,
            sites,
            seed=seed,
            n_plants=params["plants"],
            rack_size=params["rack_size"],
            networks_per_plant=params["networks_per_plant"],
            plan=HierarchicalAddressPlan(sites),
            recovery=policy,
            env=env,
        )
        times = poisson_arrivals(
            fsite.bed.rng,
            params["rate_per_s"],
            params["requests"],
            stream="federation/arrivals",
        )
        routes = [
            fsite.bed.rng.uniform("federation/route", 0.0, 1.0)
            < params["cross_fraction"]
            for _ in range(params["requests"])
        ]
        return _FederationHandle(fsite, sites, params, times, routes)

    def endpoints(
        self, handle: _FederationHandle
    ) -> Dict[str, Callable[[tuple], None]]:
        def spill(payload: tuple) -> None:
            handle.spills_recv += 1
            trace(
                handle.env,
                "federation",
                "spill-recv",
                src_site=int(payload[0]),
                seq=int(payload[1]),
            )
            handle.env.process(self._remote_create(handle, payload))

        def ack(payload: tuple) -> None:
            seq = int(payload[1])
            trace(
                handle.env,
                "federation",
                "ack-recv",
                remote_site=int(payload[0]),
                seq=seq,
                ok=int(payload[2]),
            )
            evt = handle.pending.pop(seq, None)
            if evt is not None and not evt.triggered:
                evt.succeed(int(payload[2]))

        return {"spill": spill, "ack": ack}

    def start(
        self, handle: _FederationHandle, links: Dict[str, Any]
    ) -> None:
        handle.spill_link = links.get(f"spill{handle.site}")
        handle.ack_link = links.get(f"ack{handle.site}")
        self._attach_faults(handle, links)
        handle.env.process(self._arrivals(handle))

    def _attach_faults(
        self, handle: _FederationHandle, links: Dict[str, Any]
    ) -> None:
        """Attach this site's slice of the grid fault plan (if any)."""
        records = handle.params["fault_plan"]
        if not records:
            return
        plan = FaultPlan.from_records(records).for_site(handle.site)
        handle.injector = FaultInjector(
            handle.fsite.bed,
            plan,
            links=dict(links),
            gateway=handle.fsite.gateway,
            site=handle.site,
        )
        handle.injector.start()

    def _chaos_stats(self, handle: _FederationHandle) -> Dict[str, Any]:
        """Fault/resilience counters + the grid-scope leak audit."""
        from repro.faults.audit import leak_stats

        injector = handle.injector
        stats = {
            "spill_retries": handle.spill_retries,
            "spills_dropped": handle.spills_dropped,
            "local_fallbacks": handle.local_fallbacks,
            "faults_applied": (
                sum(
                    1
                    for _, phase, _, _ in injector.applied
                    if phase == "inject"
                )
                if injector is not None
                else 0
            ),
            "faults_skipped": (
                injector.skipped if injector is not None else 0
            ),
            "final_time": handle.env.now,
        }
        stats.update(leak_stats(handle.fsite.bed))
        return stats

    def collect(self, handle: _FederationHandle) -> Dict[str, Any]:
        shop = handle.shop
        stats = {
            "created": handle.created,
            "destroyed": handle.destroyed,
            "failed": handle.failed,
            "spills_sent": handle.spills_sent,
            "spills_recv": handle.spills_recv,
            "spilled_ok": handle.spilled_ok,
            "spill_declined": handle.spill_declined,
            "spill_saturated": handle.spill_saturated,
            "spill_failed": handle.spill_failed,
            "spill_timeout": handle.spill_timeout,
            "acks_sent": handle.acks_sent,
            "bid_rounds": shop.collector.collections,
            "bids_collected": shop.collector.bids_collected,
            "transport_calls": shop.transport.calls,
            # Lists ride per-site (combined_stats sums numerics only).
            "latencies": list(handle.latencies),
        }
        stats.update(self._chaos_stats(handle))
        return stats

    # -- processes ------------------------------------------------------
    def _arrivals(self, handle: _FederationHandle):
        env = handle.env
        for i, at in enumerate(handle.times):
            if at > env.now:
                yield env.timeout(at - env.now)
            env.process(self._one_request(handle, i))

    def _one_request(self, handle: _FederationHandle, i: int):
        from repro.core.errors import ReproError
        from repro.workloads.requests import experiment_request

        env = handle.env
        params = handle.params
        gateway = handle.fsite.gateway
        dark = gateway.down_until > env.now
        if dark and not (
            params["reroute_on_blackout"]
            and handle.spill_link is not None
        ):
            # Site blackout: arrivals at a dark site fail fast.
            handle.failed += 1
            return
        start = env.now
        request = experiment_request(
            params["memory_mb"],
            domain=f"site{handle.site}.grid",
            client_id=f"s{handle.site}-r{i}",
        )
        spill = dark or (
            handle.routes[i] and handle.spill_link is not None
        )
        if not spill:
            # Site-local discovery first: bid only inside the site.
            local_bids = yield from handle.shop.estimate(request)
            if gateway.should_spill(local_bids) and (
                handle.spill_link is not None
            ):
                spill = True
                if local_bids:
                    handle.spill_saturated += 1
                else:
                    handle.spill_declined += 1
            elif not local_bids:
                handle.failed += 1
                return
            else:
                try:
                    ad = yield from handle.shop.create(request)
                except ReproError:
                    handle.failed += 1
                    return
                handle.created += 1
                handle.latencies.append(env.now - start)
                trace(env, "federation", "created-local", req=i)
                yield env.timeout(params["hold_s"])
                try:
                    yield from handle.shop.destroy(str(ad["vmid"]))
                except ReproError:
                    pass  # crash-killed underneath us mid-hold
                handle.destroyed += 1
                return
        # Cross-site: one spill message out, one bounded ack wait.
        outcome = yield from self._spill_with_retries(
            handle, i, params["memory_mb"]
        )
        if outcome == "ok":
            handle.latencies.append(env.now - start)
        elif params["local_fallback"]:
            ok = yield from self._local_fallback(handle, request)
            if ok:
                handle.latencies.append(env.now - start)

    def _spill_with_retries(
        self, handle: _FederationHandle, idx: int, memory_mb: int
    ):
        """The ring-side failover ladder: retry a failed or timed-out
        spill up to ``spill_attempts`` rounds with doubling backoff.

        Each attempt ships a *fresh* wire sequence number
        (``idx * attempts + attempt``) so a stale ack from a slow
        earlier attempt can never satisfy a later one.  With the
        default single attempt the wire seq is exactly ``idx`` — the
        pinned default trajectories see identical payloads.
        """
        params = handle.params
        env = handle.env
        attempts = max(1, int(params["spill_attempts"]))
        outcome = "failed"
        for attempt in range(attempts):
            if attempt:
                delay = float(params["spill_backoff_s"]) * (
                    2.0 ** (attempt - 1)
                )
                if delay > 0:
                    yield env.timeout(delay)
                handle.spill_retries += 1
            wire_seq = idx if attempts == 1 else idx * attempts + attempt
            outcome = yield from self._spill_and_wait(
                handle, wire_seq, memory_mb
            )
            if outcome == "ok":
                return outcome
        return outcome

    def _local_fallback(self, handle: _FederationHandle, request):
        """Last-resort local create after the spill ring gave up."""
        from repro.core.errors import ReproError

        try:
            ad = yield from handle.shop.create(request)
        except ReproError:
            return False
        handle.local_fallbacks += 1
        handle.created += 1
        yield handle.env.timeout(handle.params["hold_s"])
        try:
            yield from handle.shop.destroy(str(ad["vmid"]))
        except ReproError:
            pass  # crash-killed underneath us mid-hold
        handle.destroyed += 1
        return True

    def _spill_and_wait(
        self, handle: _FederationHandle, seq: int, memory_mb: int
    ):
        """Ship one request over the spill ring; wait bounded for the
        ack.  Returns ``"ok"``, ``"failed"`` or ``"timeout"`` and
        maintains the spill ledger — reused by the ``megaload``
        scenario, which records outcomes into streaming summaries
        instead of latency lists.
        """
        env = handle.env
        params = handle.params
        evt = env.event()
        handle.pending[seq] = evt
        handle.spills_sent += 1
        trace(env, "federation", "spill-sent", req=seq)
        handle.spill_link.send(
            payload=(handle.site, seq, memory_mb, 0.0),
            size_mb=params["spill_mb"],
        )
        yield env.any_of(
            [evt, env.timeout(params["spill_deadline_s"])]
        )
        if not evt.triggered:
            handle.pending.pop(seq, None)
            handle.spill_timeout += 1
            return "timeout"
        if evt.value:
            handle.spilled_ok += 1
            return "ok"
        handle.spill_failed += 1
        return "failed"

    def _remote_create(self, handle: _FederationHandle, payload: tuple):
        from repro.core.errors import ReproError
        from repro.workloads.requests import experiment_request

        env = handle.env
        params = handle.params
        gateway = handle.fsite.gateway
        if gateway.down_until > env.now:
            # Site dark: the spill vanishes (no ack), the source's
            # bounded wait times out — exactly a dead WAN peer.
            handle.spills_dropped += 1
            return
        if gateway.hang_until > env.now:
            yield env.timeout(gateway.hang_until - env.now)
            if gateway.down_until > env.now:
                handle.spills_dropped += 1
                return
        src, seq = int(payload[0]), int(payload[1])
        request = experiment_request(
            int(payload[2]),
            domain=f"fed{src}.grid",
            client_id=f"fed-{src}-{seq}",
        )
        ok = 1
        ad = None
        try:
            ad = yield from handle.shop.create(request)
        except ReproError:
            ok = 0
        if handle.ack_link is not None:
            handle.acks_sent += 1
            handle.ack_link.send(
                payload=(handle.site, seq, ok, 0.0),
                size_mb=params["ack_mb"],
            )
        if ad is not None:
            handle.created += 1
            yield env.timeout(params["spill_hold_s"])
            try:
                yield from handle.shop.destroy(str(ad["vmid"]))
            except ReproError:
                pass  # crash-killed underneath us mid-hold
            handle.destroyed += 1


register(FederationScenario())
