"""Hierarchical vnet address allocation: site → subnet block → host.

The single-site pool hands every plant the same flat
``192.168.{100+i}`` subnets: addresses are only unique *within* one
plant's host-only switch, and the whole flat ``/16`` tops out at 256
subnets — a hard ceiling of ~64 plants (4 nets each) and ~10k guest
addresses once VM density is realistic, the same IP-space wall that
caps vm5k-style Grid'5000 deployments.  Federation needs globally
unique guest addresses, so the space is split hierarchically:

* the **plan** owns one private ``/8`` (``base_octet``, default 10)
  holding 65536 ``/24`` subnets;
* each **site** gets a contiguous :class:`SubnetBlock` of
  ``subnets_per_site`` subnets (site prefix);
* each plant pool draws its switch subnets from its site's block
  (subnet block), and :class:`~repro.vnet.hostonly.IPAllocator`
  assigns the host range within each subnet as before.

Sixteen sites therefore get 4096 subnets (≈1M guest addresses) each
— past the 10k-plant / 100k-VM rung — while any two sites' address
spaces stay provably disjoint.  Block allocation mirrors the
IP-allocator discipline: sequential first, O(1) FIFO reuse of
released subnets, and a double-release guard.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set

from repro.core.errors import VNetError

__all__ = ["SubnetBlock", "HierarchicalAddressPlan"]

#: ``/24`` subnets in one ``/8`` plan (256 * 256 second/third octets).
_TOTAL_SUBNETS = 256 * 256
#: Usable guest addresses per ``/24`` (hosts .2 — .254).
ADDRESSES_PER_SUBNET = 253


class SubnetBlock:
    """One site's contiguous range of ``/24`` subnets."""

    __slots__ = (
        "site",
        "base_octet",
        "start",
        "end",
        "_next",
        "_released",
        "_released_set",
    )

    def __init__(self, site: int, base_octet: int, start: int, count: int):
        if count <= 0:
            raise ValueError("subnet block must hold at least one subnet")
        if start < 0 or start + count > _TOTAL_SUBNETS:
            raise ValueError(
                f"subnet block [{start}, {start + count}) outside the "
                f"{_TOTAL_SUBNETS}-subnet plan"
            )
        self.site = site
        self.base_octet = base_octet
        self.start = start
        self.end = start + count
        self._next = start
        self._released: "deque[int]" = deque()
        self._released_set: Set[int] = set()

    def _subnet(self, index: int) -> str:
        return f"{self.base_octet}.{index >> 8}.{index & 0xFF}"

    def _index(self, subnet: str) -> int:
        parts = subnet.split(".")
        if len(parts) != 3 or parts[0] != str(self.base_octet):
            raise VNetError(
                f"subnet {subnet!r} not of this plan "
                f"(expected {self.base_octet}.x.y)"
            )
        try:
            second, third = int(parts[1]), int(parts[2])
        except ValueError:
            raise VNetError(f"malformed subnet {subnet!r}") from None
        if not (0 <= second <= 255 and 0 <= third <= 255):
            raise VNetError(f"malformed subnet {subnet!r}")
        return (second << 8) | third

    @property
    def size(self) -> int:
        """Subnets this block spans."""
        return self.end - self.start

    @property
    def allocated(self) -> int:
        """Subnets currently handed out."""
        return (self._next - self.start) - len(self._released)

    @property
    def remaining(self) -> int:
        """Subnets still allocatable."""
        return self.size - self.allocated

    @property
    def capacity(self) -> int:
        """Guest addresses this block can ever serve."""
        return self.size * ADDRESSES_PER_SUBNET

    def allocate(self) -> str:
        """Next free subnet in the block (``"base.x.y"``).

        Released subnets are reused FIFO before the sequential cursor
        moves; exhaustion raises :class:`VNetError`.
        """
        if self._released:
            index = self._released.popleft()
            self._released_set.discard(index)
        elif self._next < self.end:
            index = self._next
            self._next += 1
        else:
            raise VNetError(
                f"site {self.site} subnet block exhausted "
                f"({self.size} subnets)"
            )
        return self._subnet(index)

    def allocate_many(self, count: int) -> List[str]:
        """Allocate ``count`` subnets (e.g. one plant pool's worth)."""
        return [self.allocate() for _ in range(count)]

    def release(self, subnet: str) -> None:
        """Return a subnet to the block.

        Raises :class:`VNetError` for subnets outside the block, never
        allocated, or already released.
        """
        index = self._index(subnet)
        if not self.start <= index < self.end:
            raise VNetError(
                f"subnet {subnet} belongs to another site's block "
                f"(site {self.site} owns [{self._subnet(self.start)}, "
                f"{self._subnet(self.end - 1)}])"
            )
        if index >= self._next:
            raise VNetError(f"subnet {subnet} was never allocated")
        if index in self._released_set:
            raise VNetError(f"subnet {subnet} released twice")
        self._released.append(index)
        self._released_set.add(index)

    def __contains__(self, subnet: str) -> bool:
        try:
            index = self._index(subnet)
        except VNetError:
            return False
        return self.start <= index < self.end

    def __repr__(self) -> str:
        return (
            f"<SubnetBlock site={self.site} "
            f"{self._subnet(self.start)}..{self._subnet(self.end - 1)} "
            f"allocated={self.allocated}/{self.size}>"
        )


class HierarchicalAddressPlan:
    """The grid-wide address hierarchy: one block per site.

    The plan is a pure function of ``(sites, base_octet,
    subnets_per_site)`` — every worker process rebuilding its own site
    derives the *same* disjoint block for it, so no allocation state
    ever crosses a process boundary.
    """

    def __init__(
        self,
        sites: int,
        base_octet: int = 10,
        subnets_per_site: int = 0,
    ):
        if sites <= 0:
            raise ValueError("sites must be positive")
        if not 0 < base_octet <= 255:
            raise ValueError("base_octet must be in [1, 255]")
        if subnets_per_site <= 0:
            subnets_per_site = _TOTAL_SUBNETS // sites
        if sites * subnets_per_site > _TOTAL_SUBNETS:
            raise ValueError(
                f"{sites} sites x {subnets_per_site} subnets exceed the "
                f"{_TOTAL_SUBNETS}-subnet plan"
            )
        if subnets_per_site <= 0:
            raise ValueError(
                f"{sites} sites leave no subnets per site"
            )
        self.sites = sites
        self.base_octet = base_octet
        self.subnets_per_site = subnets_per_site
        self._blocks: dict = {}

    def block(self, site: int) -> SubnetBlock:
        """The (cached) subnet block of ``site``."""
        if not 0 <= site < self.sites:
            raise ValueError(
                f"site {site} outside [0, {self.sites})"
            )
        blk = self._blocks.get(site)
        if blk is None:
            blk = SubnetBlock(
                site,
                self.base_octet,
                site * self.subnets_per_site,
                self.subnets_per_site,
            )
            self._blocks[site] = blk
        return blk

    def site_of(self, address: str) -> int:
        """Reverse lookup: which site's block holds this subnet/IP?"""
        parts = address.split(".")
        if len(parts) == 4:
            parts = parts[:3]
        index = SubnetBlock(0, self.base_octet, 0, 1)._index(
            ".".join(parts)
        )
        site = index // self.subnets_per_site
        if site >= self.sites:
            raise VNetError(
                f"{address} outside every site block of this plan"
            )
        return site

    @property
    def site_capacity(self) -> int:
        """Guest addresses one site's block can serve."""
        return self.subnets_per_site * ADDRESSES_PER_SUBNET

    @property
    def total_capacity(self) -> int:
        """Guest addresses across all site blocks."""
        return self.sites * self.site_capacity

    def __repr__(self) -> str:
        return (
            f"<HierarchicalAddressPlan {self.base_octet}.0.0/8 "
            f"sites={self.sites} subnets/site={self.subnets_per_site} "
            f"capacity={self.total_capacity}>"
        )
